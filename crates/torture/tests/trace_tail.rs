//! Failure reports carry a flight-recorder tail: the last trace events
//! each thread recorded before the injected crash step, frozen by the
//! fault clock at the same tick as the crash image.
//!
//! This lives in its own test binary because the event rings are
//! process-global: a concurrent test resetting them between the failing
//! replay and the assertion would make the tail nondeterministic.

use crafty_torture::{injected_violation_is_caught, TortureConfig, TAIL_EVENTS};

#[test]
fn failure_reports_carry_the_event_ring_tail() {
    let failure = injected_violation_is_caught(&TortureConfig::quick(11))
        .expect("the auditor self-test must catch the injected violation");

    assert!(
        !failure.trace_tail.is_empty(),
        "no flight-recorder tail attached to the failure"
    );
    let tail = failure.trace_tail.join("\n");
    // The bank replay is single-threaded on tid 0 under full event
    // tracing, so the tail shows engine lifecycle events, not just a
    // header line.
    assert!(tail.contains("[tid 0]"), "missing tid header:\n{tail}");
    assert!(
        tail.contains("undo-append") || tail.contains("htm-commit"),
        "tail shows no engine lifecycle events:\n{tail}"
    );
    // The window is capped at TAIL_EVENTS events for the one thread.
    let events = failure
        .trace_tail
        .iter()
        .filter(|l| l.trim_start().starts_with('['))
        .count();
    assert!(
        events > 0 && events <= TAIL_EVENTS,
        "expected 1..={TAIL_EVENTS} tail events, got {events}:\n{tail}"
    );
    // Display renders the tail under the failure line, indented.
    let rendered = failure.to_string();
    assert!(
        rendered.contains("\n    trace tail [tid 0]"),
        "Display does not render the tail:\n{rendered}"
    );
}
