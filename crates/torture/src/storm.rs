//! Abort-storm torture: sustained doomed-transaction bursts.
//!
//! [`crafty_htm::HtmConfig::with_abort_storm`] dooms long consecutive runs
//! of hardware transactions. Under a burst longer than the engine's whole
//! retry budget, a transaction can only complete through the SGL fallback
//! (Section 4's `max_phase_restarts` path), which uses no hardware
//! transactions — so the suite asserts three things: every transaction
//! completes (liveness), at least one completed through the SGL path (the
//! storm actually bit), and the final counter survives a quiesce + crash +
//! recovery (durability is not weakened by the fallback).

use std::sync::Arc;

use crafty_common::trace;
use crafty_common::{CompletionPath, PersistentTm};
use crafty_core::{recover, Crafty, CraftyConfig};
use crafty_htm::HtmConfig;
use crafty_pmem::{CrashModel, LatencyModel, MemorySpace, PmemConfig};

use crate::{EventTraceArm, TortureConfig, TortureFailure, TortureReport};

/// Consecutive doomed hardware transactions per storm cycle: far beyond
/// the engine's retry budget (`max_phase_restarts × htm_retries_per_phase`
/// in the small test configuration), so a transaction starting inside a
/// burst must fall back to the SGL.
const BURST: u32 = 96;
/// Storm cycle length: leaves a clean window after each burst so the
/// engine's bounded internal hardware-transaction loops stay live.
const PERIOD: u32 = 128;

/// Runs the abort-storm suite. `cfg.txns` counter increments are executed
/// under storms; crash-point fields are unused (storms exercise the HTM
/// layer, not the fault clock).
pub fn run_storm_torture(cfg: &TortureConfig) -> TortureReport {
    let _trace = EventTraceArm::arm();
    trace::reset_rings();
    let mut failures = Vec::new();
    let mem = Arc::new(MemorySpace::new(PmemConfig {
        persistent_words: 1 << 15,
        volatile_words: 1 << 13,
        max_threads: 3,
        latency: LatencyModel::instant(),
        crash: CrashModel::strict(),
        ..PmemConfig::small_for_tests()
    }));
    let engine = Crafty::with_htm_config(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests().with_max_threads(1),
        HtmConfig::skylake().with_abort_storm(BURST, PERIOD, cfg.seed),
    );
    // The storm dooms a transaction 1–24 operations after it begins; a
    // body shorter than that fuse would often commit before its doom
    // fires. Touching a few dozen words guarantees every doomed
    // hardware transaction actually aborts.
    let cells = mem.reserve_persistent(32);
    let mut thread = engine.register_thread(0);
    for _ in 0..cfg.txns {
        thread.execute(&mut |ops| {
            for i in 0..32 {
                let a = cells.add(i);
                let v = ops.read(a)?;
                ops.write(a, v + 1)?;
            }
            Ok(())
        });
    }
    drop(thread);
    // No fault clock here: the tail is the live flight-recorder state at
    // the end of the stormed run.
    let tail = trace::ring_snapshot_all();

    let breakdown = engine.breakdown();
    if breakdown.total_persistent() != cfg.txns {
        failures.push(TortureFailure::capture(
            cfg.seed,
            0,
            format!(
                "liveness violated: {} of {} transactions completed under storms",
                breakdown.total_persistent(),
                cfg.txns
            ),
            &tail,
        ));
    }
    if breakdown.completions(CompletionPath::Sgl) == 0 {
        failures.push(TortureFailure::capture(
            cfg.seed,
            0,
            format!(
                "storm too weak: no transaction fell back to the SGL \
                 (burst {BURST}, period {PERIOD})"
            ),
            &tail,
        ));
    }

    engine.quiesce();
    let mut image = mem.crash();
    match recover(&mut image, engine.directory_addr()) {
        Err(e) => failures.push(TortureFailure::capture(
            cfg.seed,
            0,
            format!("recovery failed after the storm run: {e}"),
            &tail,
        )),
        Ok(_) => {
            let recovered = image.read(cells);
            if recovered != cfg.txns {
                failures.push(TortureFailure::capture(
                    cfg.seed,
                    0,
                    format!(
                        "durability violated: counter {recovered} after quiesce + crash, \
                         expected {}",
                        cfg.txns
                    ),
                    &tail,
                ));
            }
        }
    }

    TortureReport {
        suite: "storm",
        seed: cfg.seed,
        setup_steps: 0,
        total_steps: 0,
        crash_points_tested: 0,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storms_force_the_sgl_and_stay_durable() {
        let report = run_storm_torture(&TortureConfig::quick(5));
        assert!(report.ok(), "{:?}", report.failures);
    }
}
