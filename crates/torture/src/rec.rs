//! Crash-during-recovery torture: recovery must converge when it is
//! itself interrupted.
//!
//! For a handful of stratified crash points of the bank workload, the
//! suite takes the trapped image, runs one uninterrupted recovery to get
//! the reference image, then re-runs
//! [`crafty_core::recover_interrupted`] at *every* write budget from 0 to
//! the full write count, follows each interrupted pass with a normal
//! recovery, and requires byte-for-byte convergence to the reference —
//! recovery is idempotent and restartable at any point of its own write
//! stream (an interrupt during rollback leaves the logs intact so the
//! re-run re-derives the same plan; an interrupt during log zeroing is
//! detected via the directory's persistent phase word and the re-run only
//! finishes the zeroing — see [`crafty_core::recover_interrupted`]).

use crafty_common::trace::ThreadTrace;
use crafty_core::{logs_are_clean, recover, recover_interrupted};
use crafty_pmem::{CrashModel, FaultPlan};

use crate::bank::{draw_picks, prefix_check, run_once};
use crate::{crash_points, EventTraceArm, TortureConfig, TortureFailure, TortureReport};

/// Trap points per run: each spawns a full budget sweep, so a few spread
/// over the run suffice (`crash_step` still pins an exact one for
/// reproduction).
const TRAP_POINTS: u64 = 6;

/// Runs the crash-during-recovery suite over the bank workload.
pub fn run_recovery_torture(cfg: &TortureConfig) -> TortureReport {
    let _trace = EventTraceArm::arm();
    let picks = draw_picks(cfg.seed, cfg.txns);
    let count = run_once(&picks, FaultPlan::count_only());
    let max_points = if cfg.max_crash_points == 0 {
        TRAP_POINTS
    } else {
        cfg.max_crash_points.min(TRAP_POINTS * 4)
    };
    let points = crash_points(
        cfg.seed,
        count.setup_steps,
        count.total_steps,
        max_points,
        cfg.crash_step,
    );
    let mut failures = Vec::new();
    let mut fail = |step: u64, detail: String, trace: &[ThreadTrace]| {
        failures.push(TortureFailure::capture(cfg.seed, step, detail, trace))
    };
    for &step in &points {
        let run = run_once(
            &picks,
            FaultPlan::crash_at(step, CrashModel::adversarial(cfg.seed ^ step)),
        );
        let Some(pristine) = run.image else {
            fail(step, "no crash image captured".to_string(), &run.trace);
            continue;
        };
        // Reference: one uninterrupted recovery.
        let mut reference = pristine.clone();
        let full = match recover_interrupted(&mut reference, run.dir_addr, u64::MAX) {
            Ok(r) => r,
            Err(e) => {
                fail(step, format!("reference recovery failed: {e}"), &run.trace);
                continue;
            }
        };
        if let Err(detail) = prefix_check(&reference, run.base, &picks) {
            fail(step, detail, &run.trace);
            continue;
        }
        for budget in 0..=full.writes_applied {
            let mut image = pristine.clone();
            let partial = match recover_interrupted(&mut image, run.dir_addr, budget) {
                Ok(r) => r,
                Err(e) => {
                    fail(
                        step,
                        format!("budget {budget}: interrupted pass failed: {e}"),
                        &run.trace,
                    );
                    continue;
                }
            };
            let rerun = match recover(&mut image, run.dir_addr) {
                Ok(r) => r,
                Err(e) => {
                    fail(
                        step,
                        format!("budget {budget}: re-recovery failed: {e}"),
                        &run.trace,
                    );
                    continue;
                }
            };
            if image != reference {
                fail(
                    step,
                    format!(
                        "budget {budget}: re-recovery did not converge to the reference \
                         image ({} writes were applied before the interrupt)",
                        partial.writes_applied
                    ),
                    &run.trace,
                );
                continue;
            }
            // The second pass's cut may only move up: nothing that
            // survived the first cut is ever rolled back later.
            if let (Some(second), Some(first)) = (rerun.cutoff_ts, full.report.cutoff_ts) {
                if second < first {
                    fail(
                        step,
                        format!(
                            "budget {budget}: timestamp cut regressed ({second:?} < {first:?})"
                        ),
                        &run.trace,
                    );
                }
            }
            if !logs_are_clean(&image, run.dir_addr) {
                fail(
                    step,
                    format!("budget {budget}: logs dirty after convergence"),
                    &run.trace,
                );
            }
        }
    }
    TortureReport {
        suite: "recovery",
        seed: cfg.seed,
        setup_steps: count.setup_steps,
        total_steps: count.total_steps,
        crash_points_tested: points.len() as u64,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_converges_under_every_interrupt_budget() {
        let report = run_recovery_torture(&TortureConfig::quick(2));
        assert!(report.ok(), "{:?}", report.failures);
        assert!(report.crash_points_tested > 0);
    }
}
