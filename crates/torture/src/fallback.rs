//! Exhaustive crash-point torture of the per-line fallback path.
//!
//! Structurally the twin of [`crate::bank`], but the engine is built with
//! [`crafty_core::CraftyConfig::with_force_fallback`], so every transfer
//! transaction runs through the per-line software fallback instead of the
//! hardware phases. The fallback ticks the fault clock at every lock-word
//! transition (acquire, validate, release — see
//! [`crafty_pmem::MemorySpace::fault_event`]), so the enumerated crash
//! points land *inside* lock-hold windows: after some locks of a sorted
//! acquisition sweep are taken, between the undo append and publication,
//! and between publication and release.
//!
//! On top of the bank suite's recovery-and-prefix audit, every crash image
//! gets a **second-life audit**: the recovered image is booted into a
//! fresh [`MemorySpace`], a new forced-fallback engine is laid out over it
//! (reservation cursors are deterministic, so every address comes back
//! identical), and a further batch of transfers is run. The run completing
//! with conservation of money intact proves a rebooted heap never sees a
//! stuck lock — the lock words live in the volatile region and in the
//! runtime's version array, neither of which survives into the image, and
//! this audit demonstrates that by construction rather than asserting it.

use std::sync::Arc;

use crafty_common::{PersistentTm, SplitMix64};
use crafty_core::{Crafty, CraftyConfig};
use crafty_pmem::{CrashModel, FaultPlan, LatencyModel, MemorySpace, PersistentImage, PmemConfig};

use crate::bank::{draw_picks, prefix_check, recover_checked, ACCOUNTS, INITIAL};
use crate::{crash_points, EventTraceArm, TortureConfig, TortureFailure, TortureReport};

use crafty_common::trace::{self, ThreadTrace};
use crafty_common::PAddr;

/// Transfers run by the second-life audit after booting a crash image.
const SECOND_LIFE_TXNS: u64 = 4;

/// The memory configuration shared by the first life and every second
/// life: sizes must match so [`MemorySpace::boot`] accepts the image.
fn pmem_cfg(plan: FaultPlan) -> PmemConfig {
    PmemConfig {
        persistent_words: 1 << 15,
        volatile_words: 1 << 13,
        max_threads: 3,
        latency: LatencyModel::instant(),
        crash: CrashModel::strict(),
        ..PmemConfig::small_for_tests()
    }
    .with_fault_plan(plan)
}

/// The engine configuration: the bank suite's, with every transaction
/// forced through the (default per-line) software fallback.
fn crafty_cfg() -> CraftyConfig {
    CraftyConfig::small_for_tests()
        .with_max_threads(1)
        .with_undo_log_entries(64)
        .with_force_fallback(true)
}

/// Everything a completed (possibly trapped) forced-fallback run hands to
/// the auditor. Mirrors [`crate::bank::BankRun`].
struct FallbackRun {
    setup_steps: u64,
    total_steps: u64,
    base: PAddr,
    dir_addr: PAddr,
    image: Option<PersistentImage>,
    trace: Vec<ThreadTrace>,
}

/// Runs the forced-fallback bank workload once under `plan`.
fn run_once(picks: &[Vec<(u64, u64, u64)>], plan: FaultPlan) -> FallbackRun {
    trace::reset_rings();
    let mem = Arc::new(MemorySpace::new(pmem_cfg(plan)));
    let engine = Crafty::new(Arc::clone(&mem), crafty_cfg());
    let dir_addr = engine.directory_addr();
    let base = mem.reserve_persistent(ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        mem.write(base.add(i * 8), INITIAL);
        mem.clwb(0, base.add(i * 8));
    }
    mem.drain(0);
    let mut thread = engine.register_thread(0);
    let setup_steps = mem.fault_steps();
    for txn in picks {
        thread.execute(&mut |ops| {
            for &(from, to, amount) in txn {
                let a = base.add(from * 8);
                let b = base.add(to * 8);
                let va = ops.read(a)?;
                ops.write(a, va.wrapping_sub(amount))?;
                let vb = ops.read(b)?;
                ops.write(b, vb.wrapping_add(amount))?;
            }
            Ok(())
        });
    }
    drop(thread);
    FallbackRun {
        setup_steps,
        total_steps: mem.fault_steps(),
        base,
        dir_addr,
        image: mem.take_fault_image(),
        trace: mem.take_fault_trace(),
    }
}

/// Second-life audit: boots `recovered` into a fresh space, rebuilds the
/// forced-fallback engine over it, runs [`SECOND_LIFE_TXNS`] more transfer
/// transactions, and checks conservation of money end to end. A stuck lock
/// word would either hang the first fallback that touches its line (the
/// sorted acquisition loop spins on `LOCKED_MASK`) or corrupt an account;
/// completing cleanly proves the rebooted heap carries no lock state.
fn second_life(recovered: &PersistentImage, seed: u64, step: u64) -> Result<(), String> {
    let mem = Arc::new(MemorySpace::boot(
        recovered,
        pmem_cfg(FaultPlan::inactive()),
    ));
    let engine = Crafty::new(Arc::clone(&mem), crafty_cfg());
    // Re-establish the layout exactly as a restarted program would; the
    // reservation cursor hands back the same base the first life used.
    let base = mem.reserve_persistent(ACCOUNTS * 8);
    let before: u64 = (0..ACCOUNTS)
        .map(|i| mem.read(base.add(i * 8)))
        .fold(0u64, |s, v| s.wrapping_add(v));
    if before != ACCOUNTS * INITIAL {
        return Err(format!(
            "second life booted with a non-conserved bank: total {before} vs {}",
            ACCOUNTS * INITIAL
        ));
    }
    let mut rng = SplitMix64::new(seed ^ step ^ 0x5EC0_11D1_F300_0001);
    let mut thread = engine.register_thread(0);
    for _ in 0..SECOND_LIFE_TXNS {
        let from = rng.next_below(ACCOUNTS);
        let to = rng.next_below(ACCOUNTS);
        let amount = rng.next_below(9) + 1;
        thread.execute(&mut |ops| {
            let a = base.add(from * 8);
            let b = base.add(to * 8);
            let va = ops.read(a)?;
            ops.write(a, va.wrapping_sub(amount))?;
            let vb = ops.read(b)?;
            ops.write(b, vb.wrapping_add(amount))?;
            Ok(())
        });
    }
    drop(thread);
    engine.quiesce();
    let after: u64 = (0..ACCOUNTS)
        .map(|i| mem.read(base.add(i * 8)))
        .fold(0u64, |s, v| s.wrapping_add(v));
    if after != ACCOUNTS * INITIAL {
        return Err(format!(
            "second life broke conservation: total {after} vs {}",
            ACCOUNTS * INITIAL
        ));
    }
    Ok(())
}

/// Full audit of one trapped crash image: recovery invariants, prefix
/// consistency, and the second-life no-stuck-lock run.
fn audit(
    image: PersistentImage,
    run: &FallbackRun,
    picks: &[Vec<(u64, u64, u64)>],
    seed: u64,
    step: u64,
) -> Result<(), String> {
    let recovered = recover_checked(image, run.dir_addr)?;
    prefix_check(&recovered, run.base, picks)?;
    second_life(&recovered, seed, step)?;
    Ok(())
}

/// Runs the forced-fallback torture suite: counts the workload's
/// persistence steps (lock-word transitions included), replays it crashing
/// at every enumerated step, and audits each crash image — including a
/// full second life over the recovered state.
pub fn run_fallback_torture(cfg: &TortureConfig) -> TortureReport {
    let _trace = EventTraceArm::arm();
    let picks = draw_picks(cfg.seed, cfg.txns);
    let count = run_once(&picks, FaultPlan::count_only());
    let points = crash_points(
        cfg.seed,
        count.setup_steps,
        count.total_steps,
        cfg.max_crash_points,
        cfg.crash_step,
    );
    let mut failures = Vec::new();
    for &step in &points {
        let mut run = run_once(
            &picks,
            FaultPlan::crash_at(step, CrashModel::adversarial(cfg.seed ^ step)),
        );
        if run.total_steps != count.total_steps {
            failures.push(TortureFailure::capture(
                cfg.seed,
                step,
                format!(
                    "replay diverged: {} steps vs {} in the counting run",
                    run.total_steps, count.total_steps
                ),
                &run.trace,
            ));
            continue;
        }
        let Some(image) = run.image.take() else {
            failures.push(TortureFailure::capture(
                cfg.seed,
                step,
                "no crash image captured at an in-range step".to_string(),
                &run.trace,
            ));
            continue;
        };
        if let Err(detail) = audit(image, &run, &picks, cfg.seed, step) {
            failures.push(TortureFailure::capture(cfg.seed, step, detail, &run.trace));
        }
    }
    TortureReport {
        suite: "fallback",
        seed: cfg.seed,
        setup_steps: count.setup_steps,
        total_steps: count.total_steps,
        crash_points_tested: points.len() as u64,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_common::CompletionPath;

    #[test]
    fn counting_run_is_deterministic_and_ticks_lock_windows() {
        let picks = draw_picks(3, 6);
        let a = run_once(&picks, FaultPlan::count_only());
        let b = run_once(&picks, FaultPlan::count_only());
        assert_eq!(a.total_steps, b.total_steps);
        assert_eq!(a.setup_steps, b.setup_steps);
        assert!(a.total_steps > a.setup_steps, "the run must tick");
    }

    #[test]
    fn forced_runs_complete_through_the_fallback_path() {
        let mem = Arc::new(MemorySpace::new(pmem_cfg(FaultPlan::inactive())));
        let engine = Crafty::new(Arc::clone(&mem), crafty_cfg());
        let addr = mem.reserve_persistent(8);
        let mut thread = engine.register_thread(0);
        let report = thread.execute(&mut |ops| {
            let v = ops.read(addr)?;
            ops.write(addr, v + 1)?;
            Ok(())
        });
        assert_eq!(report.path, CompletionPath::Sgl, "fallback completion");
        assert_eq!(report.hw_attempts, 0, "no hardware phase was attempted");
    }

    #[test]
    fn a_final_step_image_passes_the_full_audit() {
        let picks = draw_picks(5, 6);
        let count = run_once(&picks, FaultPlan::count_only());
        let mut run = run_once(
            &picks,
            FaultPlan::crash_at(count.total_steps, CrashModel::strict()),
        );
        let image = run.image.take().expect("final step is reached");
        audit(image, &run, &picks, 5, count.total_steps).expect("audit");
    }
}
