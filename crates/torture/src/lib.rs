//! Deterministic fault-injection torture harness for the Crafty stack.
//!
//! Crafty's crash-consistency argument (Sections 5.1–5.2 of the paper) is
//! a claim about *every* interleaved flush/drain/marker state, but
//! hand-choreographed crash tests only visit a handful of them. This crate
//! closes the gap systematically:
//!
//! * **Crash-point enumeration** — the [`crafty_pmem::FaultPlan`] fault
//!   clock ticks once per durability-relevant event (pmem store, CLWB
//!   enqueue, drain claim, per-line persist, SFENCE). A workload is run
//!   once under a count-only plan to measure its step count, then replayed
//!   once per step with a plan that snapshots the crash image at exactly
//!   that tick ([`bank::run_bank_torture`], [`kv::run_kv_torture`]).
//!   Exhaustive for small runs; seeded stratified sampling otherwise.
//! * **Recovery auditing** — every snapshot is recovered and checked:
//!   recovery succeeds, logs decode clean, a second recovery is a byte
//!   no-op, and the recovered application state equals a *prefix* of the
//!   committed-transaction order replayed against a shadow oracle (plus
//!   [`crafty_kv::ShardedKv::check_integrity`] deep structure checks for
//!   the KV suite).
//! * **Fallback lock-hold windows** — [`fallback::run_fallback_torture`]
//!   forces every transaction through the per-line software fallback
//!   ([`crafty_core::CraftyConfig::with_force_fallback`]), whose lock-word
//!   transitions tick the fault clock, so crash points land while line
//!   locks are held; every recovered image is additionally *booted* into a
//!   second life that must run more transactions with conservation intact
//!   (a rebooted heap never sees a stuck lock).
//! * **Crash-during-recovery** — [`rec::run_recovery_torture`] interrupts
//!   [`crafty_core::recover_interrupted`] at every write budget and checks
//!   that re-running recovery converges to the uninterrupted image.
//! * **Abort storms** — [`storm::run_storm_torture`] dooms long bursts of
//!   hardware transactions ([`crafty_htm::HtmConfig::with_abort_storm`])
//!   and checks the retry→SGL fallback stays live *and* durable.
//! * **Networked exactly-once** — [`service::run_service_torture`] puts
//!   the whole service stack on the rack: resilient sequenced clients
//!   ([`crafty_server::SessionClient`]) issue non-idempotent increments
//!   over fault-injected connections while the fault clock kills the
//!   server mid-load; a supervisor recovers the crash image and restarts
//!   the server over it, and the audit demands every counter equal the
//!   sum of *acked* increments exactly — no loss, no double-apply.
//!
//! Every failure carries a `(seed, step)` pair; replaying the same suite
//! with that seed and `crash_step = Some(step)` reproduces it exactly —
//! the runs are single-threaded and every random choice is drawn from
//! seeded [`crafty_common::SplitMix64`] streams. (The networked `service`
//! suite is the one exception: threads and sockets make its step clock
//! non-deterministic, so `(seed, step)` re-runs the same adversary
//! strategy rather than a byte-identical schedule, and its audited
//! invariants are ones that must hold under any interleaving.)
//!
//! Every suite also runs its replays with the trace subsystem armed at
//! [`crafty_common::trace::TraceLevel::Events`], and the fault clock
//! freezes the per-thread event rings at the same tick it traps the crash
//! image — so each [`TortureFailure`] carries a **flight-recorder tail**:
//! the last [`TAIL_EVENTS`] trace events before the injected crash step,
//! rendered under the failure line by its `Display` impl.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use crafty_common::trace::{self, ThreadTrace, TraceConfig, TraceLevel};
use crafty_common::SplitMix64;

pub mod bank;
pub mod fallback;
pub mod kv;
pub mod rec;
pub mod service;
pub mod storm;

pub use bank::{injected_violation_is_caught, run_bank_torture};
pub use fallback::run_fallback_torture;
pub use kv::run_kv_torture;
pub use rec::run_recovery_torture;
pub use service::run_service_torture;
pub use storm::run_storm_torture;

/// Parameters shared by every torture suite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TortureConfig {
    /// Master seed: workload picks, crash-image resolution, stratified
    /// sampling, and storm placement all derive from it.
    pub seed: u64,
    /// Transactions the driven workload executes.
    pub txns: u64,
    /// Upper bound on crash points to test. 0 means exhaustive — one
    /// replay per persistence step of the workload. Nonzero means seeded
    /// stratified sampling: the step range is cut into that many strata
    /// and one step is drawn per stratum.
    pub max_crash_points: u64,
    /// Replay a single crash step instead of enumerating (the
    /// reproduction path printed with every failure).
    pub crash_step: Option<u64>,
}

impl TortureConfig {
    /// A small configuration suited to exhaustive enumeration in tests.
    pub fn quick(seed: u64) -> Self {
        TortureConfig {
            seed,
            txns: 10,
            max_crash_points: 0,
            crash_step: None,
        }
    }
}

/// Trace events kept per thread in a failure's flight-recorder tail.
pub const TAIL_EVENTS: usize = 12;

/// One audited invariant violation, with everything needed to replay it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TortureFailure {
    /// The master seed of the failing run.
    pub seed: u64,
    /// The persistence step whose crash image violated an invariant.
    pub step: u64,
    /// Human-readable description of the violated invariant.
    pub detail: String,
    /// Flight-recorder tail: per thread, the last [`TAIL_EVENTS`] trace
    /// events recorded before the injected crash step (one header line per
    /// thread followed by its events, oldest first). Empty when the
    /// failing replay trapped no image, or recorded no events.
    pub trace_tail: Vec<String>,
}

impl TortureFailure {
    /// Builds a failure report with the flight-recorder tail attached.
    /// `trace` is the per-thread ring state frozen by the fault clock at
    /// the injected crash step ([`crafty_pmem::MemorySpace::take_fault_trace`]);
    /// suites without a fault clock pass the live rings at audit time
    /// ([`trace::ring_snapshot_all`]) instead.
    pub fn capture(seed: u64, step: u64, detail: String, trace: &[ThreadTrace]) -> Self {
        TortureFailure {
            seed,
            step,
            detail,
            trace_tail: format_tails(trace),
        }
    }
}

/// Renders frozen ring states as report lines: one header per thread,
/// then its last [`TAIL_EVENTS`] events, oldest first.
fn format_tails(trace: &[ThreadTrace]) -> Vec<String> {
    let mut lines = Vec::new();
    for (tid, events, dropped) in trace {
        let skip = events.len().saturating_sub(TAIL_EVENTS);
        let total = events.len() as u64 + dropped;
        lines.push(format!(
            "trace tail [tid {tid}]: last {} of {total} events ({dropped} overwritten)",
            events.len() - skip,
        ));
        for e in &events[skip..] {
            lines.push(format!("  {e}"));
        }
    }
    lines
}

/// Arms the trace subsystem at [`TraceLevel::Events`] for the duration of
/// a suite run and restores the previous level on drop, so every failure
/// report can carry the flight-recorder tail of its failing replay.
pub(crate) struct EventTraceArm {
    previous: TraceLevel,
}

impl EventTraceArm {
    /// Saves the current level and arms full event recording.
    pub(crate) fn arm() -> Self {
        let previous = trace::level();
        trace::configure(TraceConfig::events());
        EventTraceArm { previous }
    }
}

impl Drop for EventTraceArm {
    fn drop(&mut self) {
        trace::set_level(self.previous);
    }
}

impl fmt::Display for TortureFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(seed {}, step {}): {}",
            self.seed, self.step, self.detail
        )?;
        for line in &self.trace_tail {
            write!(f, "\n    {line}")?;
        }
        Ok(())
    }
}

/// Outcome of one torture suite.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TortureReport {
    /// Which suite ran (`"bank"`, `"fallback"`, `"kv"`, `"recovery"`,
    /// `"storm"`).
    pub suite: &'static str,
    /// The master seed the suite ran under.
    pub seed: u64,
    /// Persistence steps consumed by deterministic setup (engine
    /// construction, prefill); crash points below this are not enumerated
    /// because the logging machinery does not exist yet.
    pub setup_steps: u64,
    /// Total persistence steps of the whole run, setup included.
    pub total_steps: u64,
    /// Crash points actually replayed and audited.
    pub crash_points_tested: u64,
    /// Invariant violations found, in step order.
    pub failures: Vec<TortureFailure>,
}

impl TortureReport {
    /// True when every audited crash image satisfied every invariant.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Picks the crash steps to test inside `(setup, total]`: all of them when
/// `max_points` is 0 or covers the span, otherwise one seeded draw per
/// stratum of a `max_points`-way partition (so samples stay spread over
/// the whole run instead of clustering). `only` short-circuits to a single
/// step for failure reproduction.
pub(crate) fn crash_points(
    seed: u64,
    setup: u64,
    total: u64,
    max_points: u64,
    only: Option<u64>,
) -> Vec<u64> {
    if let Some(step) = only {
        return vec![step];
    }
    let span = total.saturating_sub(setup);
    if span == 0 {
        return Vec::new();
    }
    if max_points == 0 || max_points >= span {
        return (setup + 1..=total).collect();
    }
    let mut rng = SplitMix64::new(seed ^ 0x5A3B_17E5_D00F_CAFE);
    (0..max_points)
        .map(|i| {
            let lo = setup + 1 + i * span / max_points;
            let hi = setup + (i + 1) * span / max_points;
            lo + rng.next_below(hi - lo + 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_points_cover_the_span() {
        let pts = crash_points(1, 10, 15, 0, None);
        assert_eq!(pts, vec![11, 12, 13, 14, 15]);
    }

    #[test]
    fn sampling_is_stratified_and_deterministic() {
        let a = crash_points(7, 100, 1100, 10, None);
        let b = crash_points(7, 100, 1100, 10, None);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        for (i, &p) in a.iter().enumerate() {
            let lo = 101 + i as u64 * 100;
            assert!(p >= lo && p < lo + 100, "point {p} outside stratum {i}");
        }
    }

    #[test]
    fn a_single_step_short_circuits() {
        assert_eq!(crash_points(1, 0, 100, 0, Some(42)), vec![42]);
    }

    #[test]
    fn empty_span_yields_no_points() {
        assert!(crash_points(1, 5, 5, 0, None).is_empty());
    }
}
