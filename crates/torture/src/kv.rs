//! Crash-point torture of the durable sharded KV store.
//!
//! A single thread drives puts and removes over a small key space on a
//! deliberately tiny [`ShardedKv`] (two shards, minimal initial capacity),
//! so the run crosses table resizes and tombstone churn. Every crash image
//! is recovered, booted, deep-checked with
//! [`ShardedKv::check_integrity`], and compared against a prefix of the
//! shadow oracle's map states.

use std::collections::BTreeMap;
use std::sync::Arc;

use crafty_common::trace::{self, ThreadTrace};
use crafty_common::{PersistentTm, SplitMix64};
use crafty_core::{Crafty, CraftyConfig};
use crafty_kv::{KvConfig, ShardedKv};
use crafty_pmem::{CrashModel, FaultPlan, LatencyModel, MemorySpace, PersistentImage, PmemConfig};

use crate::bank::recover_checked;
use crate::{crash_points, EventTraceArm, TortureConfig, TortureFailure, TortureReport};

/// Key space; small enough that overwrites, removes, and rehash churn all
/// happen within a short run.
const KEYS: u64 = 24;

/// One oracle operation: `(key, Some(value))` is a put, `(key, None)` a
/// remove.
type KvOp = (u64, Option<u64>);

fn pmem_cfg(plan: FaultPlan) -> PmemConfig {
    PmemConfig {
        persistent_words: 1 << 16,
        volatile_words: 1 << 14,
        max_threads: 3,
        latency: LatencyModel::instant(),
        crash: CrashModel::strict(),
        ..PmemConfig::small_for_tests()
    }
    .with_fault_plan(plan)
}

fn crafty_cfg() -> CraftyConfig {
    CraftyConfig::small_for_tests()
        .with_max_threads(1)
        .with_undo_log_entries(128)
}

fn kv_cfg() -> KvConfig {
    KvConfig::small_for_tests()
        .with_shards(2)
        .with_initial_capacity(8)
}

/// Draws the deterministic operation list: mostly puts (with values unique
/// per operation so prefixes are distinguishable), some removes.
fn draw_ops(seed: u64, txns: u64) -> Vec<KvOp> {
    let mut rng = SplitMix64::new(seed ^ 0x00DD_BA11_CAFE_D00D);
    (0..txns)
        .map(|i| {
            let key = rng.next_below(KEYS);
            if rng.chance(0.2) {
                (key, None)
            } else {
                (key, Some(1_000 + i))
            }
        })
        .collect()
}

/// Record of one (possibly trapped) KV run.
struct KvRun {
    setup_steps: u64,
    total_steps: u64,
    dir_addr: crafty_common::PAddr,
    image: Option<PersistentImage>,
    /// Flight-recorder state frozen at the same tick as `image`.
    trace: Vec<ThreadTrace>,
}

/// Runs the KV workload once under `plan`. The event rings are reset
/// first, so a trapped run's frozen tail shows only this replay's events.
fn run_once(ops: &[KvOp], plan: FaultPlan) -> KvRun {
    trace::reset_rings();
    let mem = Arc::new(MemorySpace::new(pmem_cfg(plan)));
    let engine = Crafty::new(Arc::clone(&mem), crafty_cfg());
    let dir_addr = engine.directory_addr();
    let kv = ShardedKv::create(&mem, &kv_cfg());
    let mut thread = engine.register_thread(0);
    let setup_steps = mem.fault_steps();
    for &(key, value) in ops {
        thread.execute(&mut |txn| {
            match value {
                Some(v) => {
                    kv.put(txn, key, v)?;
                }
                None => {
                    kv.remove(txn, key)?;
                }
            }
            Ok(())
        });
    }
    drop(thread);
    KvRun {
        setup_steps,
        total_steps: mem.fault_steps(),
        dir_addr,
        image: mem.take_fault_image(),
        trace: mem.take_fault_trace(),
    }
}

/// Audits one recovered KV image: boots it, replays the layout
/// constructors, deep-checks store structure, and requires the surviving
/// pairs to equal the shadow map after some prefix of the operation list.
fn audit(
    image: PersistentImage,
    dir_addr: crafty_common::PAddr,
    ops: &[KvOp],
) -> Result<(), String> {
    let recovered = recover_checked(image, dir_addr)?;
    let mem = Arc::new(MemorySpace::boot(
        &recovered,
        pmem_cfg(FaultPlan::inactive()),
    ));
    let _engine = Crafty::new(Arc::clone(&mem), crafty_cfg());
    let kv = ShardedKv::open(&mem, &kv_cfg());
    kv.check_integrity(&mem)
        .map_err(|e| format!("store integrity violated: {e}"))?;
    let mut pairs = kv.collect_pairs(&mem);
    pairs.sort_unstable();
    let mut shadow: BTreeMap<u64, u64> = BTreeMap::new();
    for k in 0..=ops.len() {
        if k > 0 {
            let (key, value) = ops[k - 1];
            match value {
                Some(v) => {
                    shadow.insert(key, v);
                }
                None => {
                    shadow.remove(&key);
                }
            }
        }
        if pairs.len() == shadow.len()
            && pairs
                .iter()
                .all(|&(key, value)| shadow.get(&key) == Some(&value))
        {
            return Ok(());
        }
    }
    Err(format!(
        "recovered pairs ({} live keys) match no prefix of the operation order",
        pairs.len()
    ))
}

/// Runs the KV torture suite: step counting, crash-point replay, and the
/// full recover/boot/integrity/prefix audit per image.
pub fn run_kv_torture(cfg: &TortureConfig) -> TortureReport {
    let _trace = EventTraceArm::arm();
    let ops = draw_ops(cfg.seed, cfg.txns);
    let count = run_once(&ops, FaultPlan::count_only());
    let points = crash_points(
        cfg.seed,
        count.setup_steps,
        count.total_steps,
        cfg.max_crash_points,
        cfg.crash_step,
    );
    let mut failures = Vec::new();
    for &step in &points {
        let run = run_once(
            &ops,
            FaultPlan::crash_at(step, CrashModel::adversarial(cfg.seed ^ step)),
        );
        if run.total_steps != count.total_steps {
            failures.push(TortureFailure::capture(
                cfg.seed,
                step,
                format!(
                    "replay diverged: {} steps vs {} in the counting run",
                    run.total_steps, count.total_steps
                ),
                &run.trace,
            ));
            continue;
        }
        let Some(image) = run.image else {
            failures.push(TortureFailure::capture(
                cfg.seed,
                step,
                "no crash image captured at an in-range step".to_string(),
                &run.trace,
            ));
            continue;
        };
        if let Err(detail) = audit(image, run.dir_addr, &ops) {
            failures.push(TortureFailure::capture(cfg.seed, step, detail, &run.trace));
        }
    }
    TortureReport {
        suite: "kv",
        seed: cfg.seed,
        setup_steps: count.setup_steps,
        total_steps: count.total_steps,
        crash_points_tested: points.len() as u64,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_operation_mix_crosses_a_resize() {
        // The integrity audit only bites if the run stresses the rehash
        // machinery: with 24 keys on 8-slot shards, growth must trigger.
        let ops = draw_ops(1, 60);
        let puts = ops.iter().filter(|(_, v)| v.is_some()).count();
        assert!(puts > 16, "not enough puts to outgrow the initial tables");
    }

    #[test]
    fn final_step_image_passes_the_full_audit() {
        let ops = draw_ops(9, 30);
        let count = run_once(&ops, FaultPlan::count_only());
        let run = run_once(
            &ops,
            FaultPlan::crash_at(count.total_steps, CrashModel::strict()),
        );
        let image = run.image.expect("final step reached");
        audit(image, run.dir_addr, &ops).expect("audit");
    }
}
