//! Exhaustive crash-point torture of a miniature bank workload.
//!
//! The workload is deliberately self-contained and single-threaded: one
//! thread runs `txns` transfer transactions over a small line-aligned
//! account array, with every pick pre-drawn from a seeded stream. A
//! single-threaded run makes the persistence-step stream a pure function
//! of the seed, so crashing at step *s* on a replay reproduces exactly the
//! machine state the counting run passed through at step *s* — the whole
//! harness is deterministic end to end.

use std::sync::Arc;

use crafty_common::trace::{self, ThreadTrace};
use crafty_common::{PAddr, PersistentTm, SplitMix64};
use crafty_core::{logs_are_clean, recover, Crafty, CraftyConfig};
use crafty_pmem::{CrashModel, FaultPlan, LatencyModel, MemorySpace, PersistentImage, PmemConfig};

use crate::{crash_points, EventTraceArm, TortureConfig, TortureFailure, TortureReport};

/// Accounts in the bank (each on its own cache line).
pub const ACCOUNTS: u64 = 16;
/// Initial balance per account.
pub const INITIAL: u64 = 1_000;
/// Transfers per transaction.
const TRANSFERS_PER_TXN: usize = 4;

/// One transfer: `(from, to, amount)`.
type Transfer = (u64, u64, u64);

/// Draws the full deterministic pick list for a run: `txns` transactions
/// of [`TRANSFERS_PER_TXN`] transfers each.
pub(crate) fn draw_picks(seed: u64, txns: u64) -> Vec<Vec<Transfer>> {
    let mut rng = SplitMix64::new(seed ^ 0xBA2C_0DE5_0001_F00D);
    (0..txns)
        .map(|_| {
            (0..TRANSFERS_PER_TXN)
                .map(|_| {
                    (
                        rng.next_below(ACCOUNTS),
                        rng.next_below(ACCOUNTS),
                        rng.next_below(9) + 1,
                    )
                })
                .collect()
        })
        .collect()
}

/// Applies one transaction's transfers to a shadow account vector with
/// the same arithmetic the transactional body uses.
fn apply_shadow(shadow: &mut [u64], txn: &[Transfer]) {
    for &(from, to, amount) in txn {
        shadow[from as usize] = shadow[from as usize].wrapping_sub(amount);
        shadow[to as usize] = shadow[to as usize].wrapping_add(amount);
    }
}

/// Everything a completed (possibly trapped) bank run hands to the
/// auditor.
pub(crate) struct BankRun {
    /// Fault-clock value after engine construction, prefill, and thread
    /// registration — the first enumerable crash step is `setup_steps + 1`.
    pub setup_steps: u64,
    /// Fault-clock value when the run finished.
    pub total_steps: u64,
    /// First word of the account array.
    pub base: PAddr,
    /// The engine's log-directory address (recovery's entry point).
    pub dir_addr: PAddr,
    /// The image trapped at the plan's crash step, if one was armed and
    /// reached.
    pub image: Option<PersistentImage>,
    /// Flight-recorder state frozen at the same tick as `image` (empty
    /// when no trap fired or event tracing was disarmed).
    pub trace: Vec<ThreadTrace>,
}

/// Runs the bank workload once under `plan` and returns the run record.
/// The event rings are reset first, so a trapped run's frozen tail shows
/// only this replay's events.
pub(crate) fn run_once(picks: &[Vec<Transfer>], plan: FaultPlan) -> BankRun {
    trace::reset_rings();
    let mem = Arc::new(MemorySpace::new(
        PmemConfig {
            persistent_words: 1 << 15,
            volatile_words: 1 << 13,
            max_threads: 3,
            latency: LatencyModel::instant(),
            crash: CrashModel::strict(),
            ..PmemConfig::small_for_tests()
        }
        .with_fault_plan(plan),
    ));
    let engine = Crafty::new(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests()
            .with_max_threads(1)
            .with_undo_log_entries(64),
    );
    let dir_addr = engine.directory_addr();
    let base = mem.reserve_persistent(ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        mem.write(base.add(i * 8), INITIAL);
        mem.clwb(0, base.add(i * 8));
    }
    mem.drain(0);
    let mut thread = engine.register_thread(0);
    let setup_steps = mem.fault_steps();
    for txn in picks {
        thread.execute(&mut |ops| {
            for &(from, to, amount) in txn {
                let a = base.add(from * 8);
                let b = base.add(to * 8);
                let va = ops.read(a)?;
                ops.write(a, va.wrapping_sub(amount))?;
                let vb = ops.read(b)?;
                ops.write(b, vb.wrapping_add(amount))?;
            }
            Ok(())
        });
    }
    drop(thread);
    BankRun {
        setup_steps,
        total_steps: mem.fault_steps(),
        base,
        dir_addr,
        image: mem.take_fault_image(),
        trace: mem.take_fault_trace(),
    }
}

/// Recovers `image` and checks the generic log invariants: recovery
/// succeeds, the logs decode clean afterwards, and a second recovery is a
/// byte-for-byte no-op. Returns the recovered image.
pub(crate) fn recover_checked(
    mut image: PersistentImage,
    dir_addr: PAddr,
) -> Result<PersistentImage, String> {
    recover(&mut image, dir_addr).map_err(|e| format!("recovery failed: {e}"))?;
    if !logs_are_clean(&image, dir_addr) {
        return Err("logs are not clean after recovery".to_string());
    }
    let once = image.clone();
    let second = recover(&mut image, dir_addr).map_err(|e| format!("re-recovery failed: {e}"))?;
    if second.sequences_found != 0 || second.entries_rolled_back != 0 {
        return Err(format!(
            "recovery is not a no-op the second time: {second:?}"
        ));
    }
    if image != once {
        return Err("second recovery changed the image".to_string());
    }
    Ok(image)
}

/// Global-cut consistency: the recovered account array must equal the
/// shadow oracle's state after some prefix of the committed-transaction
/// order (single-threaded, so commit order is program order). Returns the
/// matching prefix length.
pub(crate) fn prefix_check(
    image: &PersistentImage,
    base: PAddr,
    picks: &[Vec<Transfer>],
) -> Result<u64, String> {
    let recovered: Vec<u64> = (0..ACCOUNTS).map(|i| image.read(base.add(i * 8))).collect();
    let mut shadow = vec![INITIAL; ACCOUNTS as usize];
    for k in 0..=picks.len() {
        if k > 0 {
            apply_shadow(&mut shadow, &picks[k - 1]);
        }
        if recovered == shadow {
            return Ok(k as u64);
        }
    }
    Err(format!(
        "recovered accounts match no prefix of the commit order \
         (total {} vs expected {})",
        recovered.iter().sum::<u64>(),
        ACCOUNTS * INITIAL,
    ))
}

/// Full audit of one trapped crash image.
fn audit(image: PersistentImage, run: &BankRun, picks: &[Vec<Transfer>]) -> Result<(), String> {
    let recovered = recover_checked(image, run.dir_addr)?;
    prefix_check(&recovered, run.base, picks)?;
    Ok(())
}

/// Runs the bank torture suite: counts the workload's persistence steps,
/// replays it crashing at every enumerated step, and audits each crash
/// image. See the crate docs for the invariants.
pub fn run_bank_torture(cfg: &TortureConfig) -> TortureReport {
    let _trace = EventTraceArm::arm();
    let picks = draw_picks(cfg.seed, cfg.txns);
    let count = run_once(&picks, FaultPlan::count_only());
    let points = crash_points(
        cfg.seed,
        count.setup_steps,
        count.total_steps,
        cfg.max_crash_points,
        cfg.crash_step,
    );
    let mut failures = Vec::new();
    for &step in &points {
        let mut run = run_once(
            &picks,
            FaultPlan::crash_at(step, CrashModel::adversarial(cfg.seed ^ step)),
        );
        if run.total_steps != count.total_steps {
            failures.push(TortureFailure::capture(
                cfg.seed,
                step,
                format!(
                    "replay diverged: {} steps vs {} in the counting run",
                    run.total_steps, count.total_steps
                ),
                &run.trace,
            ));
            continue;
        }
        let Some(image) = run.image.take() else {
            failures.push(TortureFailure::capture(
                cfg.seed,
                step,
                "no crash image captured at an in-range step".to_string(),
                &run.trace,
            ));
            continue;
        };
        if let Err(detail) = audit(image, &run, &picks) {
            failures.push(TortureFailure::capture(cfg.seed, step, detail, &run.trace));
        }
    }
    TortureReport {
        suite: "bank",
        seed: cfg.seed,
        setup_steps: count.setup_steps,
        total_steps: count.total_steps,
        crash_points_tested: points.len() as u64,
        failures,
    }
}

/// Self-test of the auditor: traps a mid-run image, corrupts one account
/// word of the *recovered* state, and checks that the prefix audit flags
/// it. Returns the failure the auditor produced (proving an injected
/// violation is caught and reported), or an error if it slipped through.
pub fn injected_violation_is_caught(cfg: &TortureConfig) -> Result<TortureFailure, String> {
    let _trace = EventTraceArm::arm();
    let picks = draw_picks(cfg.seed, cfg.txns);
    let count = run_once(&picks, FaultPlan::count_only());
    let step = count.setup_steps + (count.total_steps - count.setup_steps) / 2;
    let run = run_once(&picks, FaultPlan::crash_at(step, CrashModel::strict()));
    let image = run
        .image
        .ok_or_else(|| "no crash image captured for the self-test".to_string())?;
    let mut recovered = recover_checked(image, run.dir_addr)?;
    // Inject the violation: one account silently gains money, breaking
    // conservation (no prefix of the commit order can match).
    let victim = run.base;
    recovered.write(victim, recovered.read(victim).wrapping_add(1));
    match prefix_check(&recovered, run.base, &picks) {
        Err(detail) => Ok(TortureFailure::capture(cfg.seed, step, detail, &run.trace)),
        Ok(k) => Err(format!(
            "auditor accepted a corrupted image as prefix {k} — injected violations go unreported"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_run_is_deterministic() {
        let picks = draw_picks(3, 6);
        let a = run_once(&picks, FaultPlan::count_only());
        let b = run_once(&picks, FaultPlan::count_only());
        assert_eq!(a.total_steps, b.total_steps);
        assert_eq!(a.setup_steps, b.setup_steps);
        assert!(a.total_steps > a.setup_steps, "the run must tick");
    }

    #[test]
    fn a_final_step_image_recovers_to_the_full_run() {
        let picks = draw_picks(5, 6);
        let count = run_once(&picks, FaultPlan::count_only());
        let run = run_once(
            &picks,
            FaultPlan::crash_at(count.total_steps, CrashModel::strict()),
        );
        let image = run.image.expect("final step is reached");
        let recovered = recover_checked(image, run.dir_addr).expect("audit");
        let k = prefix_check(&recovered, run.base, &picks).expect("prefix");
        // The final step is after every commit; at most the last (not yet
        // drained) transactions may roll back.
        assert!(k <= picks.len() as u64);
    }

    #[test]
    fn self_test_catches_an_injected_violation() {
        let failure = injected_violation_is_caught(&TortureConfig::quick(11)).expect("caught");
        assert_eq!(failure.seed, 11);
        assert!(failure.step > 0);
    }
}
