//! Crash-restart torture of the networked KV service: the exactly-once
//! audit.
//!
//! This suite closes the loop the other suites leave open: they prove the
//! *engine* recovers to a consistent prefix, but a service's contract is
//! stronger — every write the server **acknowledged** must survive, and a
//! client that retries an *unacknowledged* write through crashes and
//! reconnects must never get it applied twice. The workload is built to
//! make both failures visible: non-idempotent counter increments
//! (`Incr`), where a lost acked write shows up as a low counter and a
//! double-applied replay as a high one. Nothing masks; sums are exact.
//!
//! One run:
//!
//! 1. Boot a Crafty engine + [`ShardedKv`] + persistent [`SessionTable`]
//!    on a simulated pmem space whose fault clock is armed to trap a
//!    crash image at step N, and start the server with the **power rail**
//!    attached ([`ServerConfig::with_power`]) so no ack escapes after the
//!    simulated power cut.
//! 2. Drive client threads through the full resilience stack:
//!    [`SessionClient`] (sessions, sequencing, replay, backoff) over
//!    seeded [`FaultyStream`] transports (partial frames, stalls,
//!    mid-frame disconnects). Each client tallies the increments it got
//!    **acked**.
//! 3. A supervisor polls [`MemorySpace::fault_tripped`]; when the trap
//!    fires it shuts the first server down, runs the audited recovery
//!    pipeline (`recover_checked`: recovery + clean logs + idempotent
//!    re-recovery) on the crash image, boots the image, replays the
//!    deterministic layout ([`ShardedKv::open`], [`SessionTable::open`]),
//!    and starts a second server over the recovered heap **on a fresh
//!    port**, publishing the new address to the clients' connectors.
//!    Clients ride their backoff loops through the outage.
//! 4. When every client finishes, audit: store and session-table
//!    integrity, and for every key the final counter must equal the sum
//!    of acked deltas *exactly* — no loss (an acked increment vanished),
//!    no excess (a replayed increment applied twice).
//!
//! Unlike the single-threaded suites, a networked run is not
//! step-deterministic (thread interleaving moves the fault clock), so
//! there is no replay-divergence check: the counting run's step total is
//! a *scale estimate*, crash steps are adversary placements rather than
//! replayable schedules, and the audited invariants are ones that must
//! hold under **any** interleaving. A sampled step the run never reaches
//! simply audits a crash-free life — still a real exactly-once check
//! under network faults. `(seed, step)` reproduction re-runs the same
//! adversary strategy, not the same byte-for-byte schedule.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crafty_common::trace::{self, ThreadTrace};
use crafty_common::{PersistentTm, SplitMix64};
use crafty_core::{Crafty, CraftyConfig};
use crafty_kv::{KvConfig, SessionTable, ShardedKv};
use crafty_pmem::{CrashModel, FaultPlan, LatencyModel, MemorySpace, PmemConfig};
use crafty_server::{
    FaultConfig, FaultyStream, KvServer, RetryPolicy, ServerConfig, SessionClient, WriteOp,
};

use crate::bank::recover_checked;
use crate::{crash_points, EventTraceArm, TortureConfig, TortureFailure, TortureReport};

/// Key space: a handful of hot counters, so every key accumulates many
/// increments and any duplicate or loss moves a sum.
const KEYS: u64 = 8;
/// Concurrent resilient clients.
const CLIENTS: u64 = 2;
/// Max increments per pipelined sequenced batch (must stay within
/// [`crafty_kv::REPLY_WINDOW`]).
const BATCH: usize = 4;
/// Server accept-and-serve workers.
const WORKERS: usize = 2;
/// Session slots — comfortably above `CLIENTS` plus handshake orphans
/// (a lost `Welcome` strands a slot; see [`SessionTable`] reclaim rules).
const SESSION_SLOTS: u64 = 64;

/// Everything the supervisor keeps alive for the restarted (second)
/// server life: the rebooted space, engine, store, session table, and
/// the server itself, in teardown order.
type ServerLife = (
    Arc<MemorySpace>,
    Arc<Crafty>,
    ShardedKv,
    SessionTable,
    KvServer,
);

fn pmem_cfg(plan: FaultPlan) -> PmemConfig {
    PmemConfig {
        persistent_words: 1 << 16,
        volatile_words: 1 << 14,
        max_threads: WORKERS + 2,
        latency: LatencyModel::instant(),
        crash: CrashModel::strict(),
        ..PmemConfig::small_for_tests()
    }
    .with_fault_plan(plan)
}

fn crafty_cfg() -> CraftyConfig {
    CraftyConfig::small_for_tests()
        .with_max_threads(WORKERS)
        .with_undo_log_entries(128)
}

fn kv_cfg() -> KvConfig {
    KvConfig::small_for_tests()
        .with_shards(2)
        .with_initial_capacity(8)
}

/// Record of one service run (and possibly its crash-restart).
struct ServiceRun {
    setup_steps: u64,
    total_steps: u64,
    /// True when the fault trap fired and a second life was booted.
    restarted: bool,
    /// Everything that went wrong: give-ups, recovery errors, audit
    /// violations.
    failures: Vec<String>,
    /// Flight-recorder state frozen at the trap (empty without one).
    trace: Vec<ThreadTrace>,
}

/// One client thread: `txns` exactly-once increments in pipelined batches
/// of up to [`BATCH`], through session resume, replay, and backoff, over
/// a fault-injected transport whose adversary reseeds per dial (so a
/// reconnect never replays the previous connection's doom schedule).
/// Tallies each *acked* delta into `expected`.
fn drive_client(
    cid: u64,
    seed: u64,
    txns: u64,
    addr: Arc<Mutex<SocketAddr>>,
    expected: Arc<Mutex<BTreeMap<u64, u64>>>,
) -> Result<(), String> {
    let mut dials = 0u64;
    let fault_base = seed ^ (cid + 1).wrapping_mul(0x00FA_B715);
    let connector = move || {
        dials += 1;
        let target = *addr.lock().expect("addr lock");
        FaultyStream::connect(target, FaultConfig::quick(fault_base.wrapping_add(dials)))
    };
    let policy = RetryPolicy {
        max_attempts: 60,
        ..RetryPolicy::quick(seed ^ cid)
    };
    let mut client = SessionClient::new(connector, policy);
    let mut rng = SplitMix64::new(seed ^ (cid + 1).wrapping_mul(0x5E55_10C1));
    let mut issued = 0u64;
    while issued < txns {
        let n = BATCH.min((txns - issued) as usize);
        let ops: Vec<WriteOp> = (0..n)
            .map(|_| WriteOp::Incr {
                key: rng.next_below(KEYS),
                delta: 1 + rng.next_below(9),
            })
            .collect();
        client
            .write_batch(&ops)
            .map_err(|e| format!("client {cid} gave up after retries: {e}"))?;
        // Acked ⇒ exactly once ⇒ it belongs in the oracle sum.
        let mut exp = expected.lock().expect("oracle lock");
        for op in &ops {
            if let WriteOp::Incr { key, delta } = *op {
                *exp.entry(key).or_insert(0) += delta;
            }
        }
        issued += n as u64;
    }
    Ok(())
}

/// Runs the service workload once under `plan`, supervising a
/// crash-restart if the fault trap fires, and audits the final state.
fn run_service_once(seed: u64, txns: u64, plan: FaultPlan) -> ServiceRun {
    trace::reset_rings();
    let mem = Arc::new(MemorySpace::new(pmem_cfg(plan)));
    let engine = Arc::new(Crafty::new(Arc::clone(&mem), crafty_cfg()));
    let dir_addr = engine.directory_addr();
    let kv = ShardedKv::create(&mem, &kv_cfg());
    let sessions = SessionTable::create(&mem, SESSION_SLOTS);
    let setup_steps = mem.fault_steps();
    let server = KvServer::start(
        Arc::clone(&engine) as Arc<dyn PersistentTm>,
        kv,
        sessions,
        ServerConfig::loopback(WORKERS, true).with_power(Arc::clone(&mem)),
    )
    .expect("bind first-life server");

    let addr = Arc::new(Mutex::new(server.local_addr()));
    let expected: Arc<Mutex<BTreeMap<u64, u64>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let done = Arc::new(AtomicU64::new(0));
    let mut failures: Vec<String> = Vec::new();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|cid| {
            let addr = Arc::clone(&addr);
            let expected = Arc::clone(&expected);
            let done = Arc::clone(&done);
            std::thread::Builder::new()
                .name(format!("svc-client-{cid}"))
                .spawn(move || {
                    let verdict = drive_client(cid, seed, txns, addr, expected);
                    done.fetch_add(1, Ordering::SeqCst);
                    verdict
                })
                .expect("spawn client")
        })
        .collect();

    // Supervision loop: the moment the simulated power dies, retire the
    // first life and bring up the second over the audited crash image.
    let mut life1 = Some(server);
    let mut life2: Option<ServerLife> = None;
    let mut trace_tail: Vec<ThreadTrace> = Vec::new();
    while done.load(Ordering::SeqCst) < CLIENTS {
        if life2.is_none() && mem.fault_tripped() {
            if let Some(first) = life1.take() {
                first.shutdown();
            }
            // The rail is raised before the capture runs; the image
            // appearing is the capture-complete signal (and implies the
            // frozen trace is in place).
            let mut image = mem.take_fault_image();
            for _ in 0..1_000 {
                if image.is_some() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
                image = mem.take_fault_image();
            }
            trace_tail = mem.take_fault_trace();
            match image {
                None => failures.push("fault tripped but no image was captured".to_string()),
                Some(image) => match recover_checked(image, dir_addr) {
                    Err(e) => failures.push(format!("crash-image recovery failed: {e}")),
                    Ok(recovered) => {
                        let mem2 = Arc::new(MemorySpace::boot(
                            &recovered,
                            pmem_cfg(FaultPlan::inactive()),
                        ));
                        let engine2 = Arc::new(Crafty::new(Arc::clone(&mem2), crafty_cfg()));
                        let kv2 = ShardedKv::open(&mem2, &kv_cfg());
                        let sessions2 = SessionTable::open(&mem2, SESSION_SLOTS);
                        if let Err(e) = kv2.check_integrity(&mem2) {
                            failures.push(format!("recovered store integrity: {e}"));
                        }
                        if let Err(e) = sessions2.check_integrity(&mem2) {
                            failures.push(format!("recovered session table integrity: {e}"));
                        }
                        match KvServer::start(
                            Arc::clone(&engine2) as Arc<dyn PersistentTm>,
                            kv2,
                            sessions2,
                            ServerConfig::loopback(WORKERS, true),
                        ) {
                            Ok(second) => {
                                *addr.lock().expect("addr lock") = second.local_addr();
                                life2 = Some((mem2, engine2, kv2, sessions2, second));
                            }
                            Err(e) => failures.push(format!("second-life bind failed: {e}")),
                        }
                    }
                },
            }
            // If the restart failed, the clients exhaust their retries
            // and surface the outage as give-up failures below.
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for (cid, client) in clients.into_iter().enumerate() {
        match client.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => failures.push(e),
            Err(_) => failures.push(format!("client {cid} panicked")),
        }
    }

    // Retire whichever life is serving and audit its heap.
    let restarted = life2.is_some();
    let (final_mem, final_kv, final_sessions) =
        if let Some((mem2, engine2, kv2, sessions2, second)) = life2 {
            second.shutdown();
            engine2.quiesce();
            (mem2, kv2, sessions2)
        } else {
            if let Some(first) = life1.take() {
                first.shutdown();
            }
            engine.quiesce();
            (Arc::clone(&mem), kv, sessions)
        };
    let total_steps = mem.fault_steps();

    // The exactly-once verdict: every counter equals its acked sum.
    // Skipped when a client gave up — the oracle is then incomplete and
    // the give-up is already the failure.
    if failures.is_empty() {
        if let Err(e) = final_kv.check_integrity(&final_mem) {
            failures.push(format!("final store integrity: {e}"));
        }
        if let Err(e) = final_sessions.check_integrity(&final_mem) {
            failures.push(format!("final session table integrity: {e}"));
        }
        let oracle = expected.lock().expect("oracle lock");
        for key in 0..KEYS {
            let want = oracle.get(&key).copied();
            let got = final_kv.get_direct(&final_mem, key);
            if got != want {
                failures.push(format!(
                    "key {key}: counter is {got:?} but acked increments sum to {want:?} — \
                     an acked increment was lost or a replay double-applied"
                ));
            }
        }
    }

    ServiceRun {
        setup_steps,
        total_steps,
        restarted,
        failures,
        trace: trace_tail,
    }
}

/// Runs the service torture suite: one fault-free run to audit the happy
/// path and estimate the step scale, then one crash-restart run per
/// sampled step ([`TortureConfig::max_crash_points`] strata, or
/// [`TortureConfig::crash_step`] for reproduction). `txns` is increments
/// **per client**.
pub fn run_service_torture(cfg: &TortureConfig) -> TortureReport {
    let _trace = EventTraceArm::arm();
    let count = run_service_once(cfg.seed, cfg.txns, FaultPlan::count_only());
    let mut failures = Vec::new();
    for detail in &count.failures {
        failures.push(TortureFailure::capture(
            cfg.seed,
            0,
            format!("fault-free run: {detail}"),
            &count.trace,
        ));
    }
    let points = crash_points(
        cfg.seed,
        count.setup_steps,
        count.total_steps,
        cfg.max_crash_points,
        cfg.crash_step,
    );
    for &step in &points {
        let run = run_service_once(
            cfg.seed,
            cfg.txns,
            FaultPlan::crash_at(step, CrashModel::adversarial(cfg.seed ^ step)),
        );
        for detail in run.failures {
            let phase = if run.restarted {
                "crash-restart"
            } else {
                "pre-crash life"
            };
            failures.push(TortureFailure::capture(
                cfg.seed,
                step,
                format!("{phase}: {detail}"),
                &run.trace,
            ));
        }
    }
    TortureReport {
        suite: "service",
        seed: cfg.seed,
        setup_steps: count.setup_steps,
        total_steps: count.total_steps,
        crash_points_tested: points.len() as u64,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_is_exactly_once() {
        let run = run_service_once(11, 12, FaultPlan::count_only());
        assert!(
            run.failures.is_empty(),
            "clean run must audit clean: {:?}",
            run.failures
        );
        assert!(!run.restarted);
        assert!(
            run.total_steps > run.setup_steps,
            "the load moved the clock"
        );
    }

    #[test]
    fn mid_load_crash_restart_is_exactly_once() {
        let count = run_service_once(5, 12, FaultPlan::count_only());
        let span = count.total_steps - count.setup_steps;
        assert!(span > 0, "the load moved the clock");
        // Networked step counts drift between runs, so each placement is
        // a heuristic. Placements in the *early* part of the counted span
        // land while the clients still have unacked work outstanding, so
        // at least one trap reliably fires mid-load and the crash-restart
        // path actually runs — which the test then *requires*, so a
        // supervisor that silently never restarts cannot pass. (Late
        // placements can drift past the drifted run's client phase and
        // audit a crash-free life instead; the suite samples those too,
        // but this test pins the restart.)
        let mut restarted_any = false;
        for eighth in [1u64, 2, 3] {
            let step = count.setup_steps + span * eighth / 8;
            let run = run_service_once(
                5,
                12,
                FaultPlan::crash_at(step, CrashModel::adversarial(5 ^ eighth)),
            );
            assert!(
                run.failures.is_empty(),
                "crash-restart run at step {step} must stay exactly-once: {:?}",
                run.failures
            );
            restarted_any |= run.restarted;
        }
        assert!(
            restarted_any,
            "no trap placement tripped — the crash-restart path was never exercised"
        );
    }
}
