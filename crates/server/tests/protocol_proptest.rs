//! Property-based tests of the wire protocol: the decoders must be total
//! over arbitrary bytes. A networked front-end's framing layer is fed by
//! an untrusted peer (and, under the torture suite's `FaultyStream`, by
//! deliberately truncated and bit-flipped streams), so `frame_payload_len`
//! / `Request::decode` / `Response::decode` must reject every malformed
//! input with a typed [`ProtocolError`] — never a panic — and round-trip
//! every well-formed message exactly.

use crafty_server::protocol::{frame_payload_len, HEADER_LEN, MAX_PAYLOAD};
use crafty_server::{Request, Response, StatsReport};
use proptest::prelude::*;

/// Number of request variants `request_from` can build.
const REQUEST_VARIANTS: u64 = 10;

/// Deterministically builds the `variant`-th request shape from four free
/// field values (unused fields are simply dropped), covering every opcode.
fn request_from(variant: u64, a: u64, b: u64, c: u64, d: u64) -> Request {
    match variant {
        0 => Request::Get { key: a },
        1 => Request::Put { key: a, value: b },
        2 => Request::Delete { key: a },
        3 => Request::Scan { key: a, limit: b },
        4 => Request::Flush,
        5 => Request::Stats,
        6 => Request::Hello { session: a },
        7 => Request::Incr {
            key: a,
            delta: b,
            session: c,
            seq: d,
        },
        8 => Request::SeqPut {
            key: a,
            value: b,
            session: c,
            seq: d,
        },
        _ => Request::SeqDelete {
            key: a,
            session: c,
            seq: d,
        },
    }
}

/// Number of response variants `response_from` can build.
const RESPONSE_VARIANTS: u64 = 7;

/// Deterministically builds the `variant`-th response shape, covering
/// every opcode (the stats report fans one value out over all counters).
fn response_from(variant: u64, a: u64, b: u64) -> Response {
    match variant {
        0 => Response::Found { value: a },
        1 => Response::Missing,
        2 => Response::Scanned { count: a, sum: b },
        3 => Response::Flushed,
        4 => Response::Stats {
            report: StatsReport {
                connections: a,
                requests: b,
                batches: a ^ b,
                flushes: a.wrapping_add(b),
                protocol_errors: a.rotate_left(17),
                latency_count: b.rotate_left(31),
                latency_mean_ns: a.wrapping_mul(3),
                latency_p50_ns: b.wrapping_mul(5),
                latency_p99_ns: a.wrapping_sub(b),
                latency_p999_ns: b.wrapping_sub(a),
                latency_max_ns: !a,
                shed_batches: !b,
                sessions: a & b,
            },
        },
        5 => Response::Welcome {
            session: a,
            last_seq: b,
        },
        _ => Response::Busy,
    }
}

/// Splits an encoded frame into its payload (header stripped), failing the
/// case if the frame does not self-describe.
fn framed_payload(frame: &[u8]) -> Result<&[u8], TestCaseError> {
    match frame_payload_len(frame) {
        Ok(Some(len)) if HEADER_LEN + len == frame.len() => Ok(&frame[HEADER_LEN..]),
        other => Err(TestCaseError::fail(format!(
            "self-encoded frame must be complete and self-describing, got {other:?} for {} bytes",
            frame.len()
        ))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics any decoder: the framing check and
    /// both payload decoders return a value for every input.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = frame_payload_len(&bytes);
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Every request round-trips: encode, reframe, decode, compare.
    #[test]
    fn request_round_trips(variant in 0..REQUEST_VARIANTS, a: u64, b: u64, c: u64, d: u64) {
        let req = request_from(variant, a, b, c, d);
        let mut frame = Vec::new();
        req.encode(&mut frame);
        prop_assert!(frame.len() <= HEADER_LEN + MAX_PAYLOAD, "encoded frame within bound");
        prop_assert_eq!(Request::decode(framed_payload(&frame)?), Ok(req));
    }

    /// Every response round-trips.
    #[test]
    fn response_round_trips(variant in 0..RESPONSE_VARIANTS, a: u64, b: u64) {
        let resp = response_from(variant, a, b);
        let mut frame = Vec::new();
        resp.encode(&mut frame);
        prop_assert!(frame.len() <= HEADER_LEN + MAX_PAYLOAD, "encoded frame within bound");
        prop_assert_eq!(Response::decode(framed_payload(&frame)?), Ok(resp));
    }

    /// Truncating a valid frame anywhere never panics: the framing layer
    /// reports "incomplete — read more" (never a complete frame), and a
    /// truncated *payload* handed to the request decoder (as a
    /// desynchronized reader would) yields a typed error, not a panic.
    #[test]
    fn truncation_never_panics(
        variant in 0..REQUEST_VARIANTS,
        a: u64, b: u64, c: u64, d: u64,
        cut_pick: u64,
    ) {
        let req = request_from(variant, a, b, c, d);
        let mut frame = Vec::new();
        req.encode(&mut frame);
        let cut = (cut_pick % frame.len() as u64) as usize;
        let head = &frame[..cut];
        if let Ok(Some(len)) = frame_payload_len(head) {
            prop_assert!(false, "a truncated frame cannot be complete, got len {len}");
        }
        if cut > HEADER_LEN {
            let payload = &frame[HEADER_LEN..cut];
            prop_assert!(Request::decode(payload).is_err(), "short payload is an error");
            let _ = Response::decode(payload);
        }
    }

    /// Flipping any single bit of a valid frame never panics a decoder:
    /// the result is a decoded message (possibly a different one — single
    /// bit flips in u64 fields are not detectable without a checksum) or a
    /// typed error, never a crash.
    #[test]
    fn bit_flips_never_panic(
        variant in 0..REQUEST_VARIANTS,
        a: u64, b: u64, c: u64, d: u64,
        at_pick: u64,
        bit in 0u8..8,
    ) {
        let req = request_from(variant, a, b, c, d);
        let mut frame = Vec::new();
        req.encode(&mut frame);
        let at = (at_pick % frame.len() as u64) as usize;
        frame[at] ^= 1 << bit;
        if let Ok(Some(len)) = frame_payload_len(&frame) {
            let _ = Request::decode(&frame[HEADER_LEN..HEADER_LEN + len]);
            let _ = Response::decode(&frame[HEADER_LEN..HEADER_LEN + len]);
        }
    }

    /// A response payload fed to the request decoder (stream
    /// desynchronization) is always rejected: response opcodes have the
    /// high bit set, which no request opcode uses.
    #[test]
    fn desynchronized_response_is_rejected(variant in 0..RESPONSE_VARIANTS, a: u64, b: u64) {
        let resp = response_from(variant, a, b);
        let mut frame = Vec::new();
        resp.encode(&mut frame);
        prop_assert!(Request::decode(framed_payload(&frame)?).is_err());
    }
}
