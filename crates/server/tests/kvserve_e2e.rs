//! End-to-end service test: boot a real Crafty engine behind the TCP
//! front-end, load it over the wire, and read the live metrics back
//! through the protocol's `Stats` request.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use crafty_common::PersistentTm;
use crafty_core::{Crafty, CraftyConfig};
use crafty_kv::{DirectOps, KvConfig, ShardedKv};
use crafty_pmem::{MemorySpace, PmemConfig};
use crafty_server::{KvClient, KvServer, Request, ServerConfig};

const RECORDS: u64 = 256;
const WORKERS: usize = 2;

/// Boots a prefilled store behind a loopback server, Crafty engine,
/// group commit on.
fn boot() -> (Arc<MemorySpace>, Arc<Crafty>, KvServer) {
    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    let engine = Arc::new(Crafty::new(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests().with_max_threads(WORKERS),
    ));
    let kv = ShardedKv::create(&mem, &KvConfig::benchmark(RECORDS, 16));
    {
        let mut ops = DirectOps::new(&mem);
        for key in 0..RECORDS {
            kv.put(&mut ops, key, key * 3).expect("direct prefill");
        }
        kv.persist_all(&mem, 0);
    }
    let server = KvServer::start(
        Arc::clone(&engine) as Arc<dyn crafty_common::PersistentTm>,
        kv,
        ServerConfig::loopback(WORKERS, true),
    )
    .expect("bind loopback server");
    (mem, engine, server)
}

#[test]
fn stats_reports_live_percentiles_from_a_loaded_server() {
    let (_mem, engine, server) = boot();
    let mut client = KvClient::connect(server.local_addr()).expect("connect");

    // A fresh server has counted nothing but this connection.
    let idle = client.stats().expect("stats on idle server");
    assert_eq!(idle.requests, 0, "stats must reflect only completed work");
    assert_eq!(idle.latency_count, 0);
    assert_eq!(idle.latency_p999_ns, 0);

    // Load it: pipelined mixed batches, so the server sees real
    // group-commit windows and every request lands in the histogram.
    const BATCHES: u64 = 20;
    const PER_BATCH: u64 = 8;
    for b in 0..BATCHES {
        let mut reqs = Vec::new();
        for i in 0..PER_BATCH {
            let key = (b * PER_BATCH + i) % RECORDS;
            if i % 2 == 0 {
                reqs.push(Request::Put {
                    key,
                    value: key + 1000,
                });
            } else {
                reqs.push(Request::Get { key });
            }
        }
        client.send(&reqs).expect("send batch");
        let responses = client.recv(reqs.len()).expect("recv batch");
        assert_eq!(responses.len(), reqs.len());
    }

    let loaded = client.stats().expect("stats on loaded server");
    let served = BATCHES * PER_BATCH;
    // The idle Stats request itself was served too.
    assert!(
        loaded.requests > served,
        "requests {} must count the {served} loaded ops",
        loaded.requests
    );
    assert!(loaded.connections >= 1);
    assert!(
        loaded.flushes >= 1,
        "group-commit write batches must have fenced"
    );
    assert!(
        loaded.latency_count >= served,
        "every served request must land in the histogram (got {})",
        loaded.latency_count
    );
    // Live percentiles: nonzero, ordered, bounded by the exact maximum.
    assert!(loaded.latency_p50_ns > 0, "p50 of a loaded server is not 0");
    assert!(loaded.latency_p50_ns <= loaded.latency_p99_ns);
    assert!(loaded.latency_p99_ns <= loaded.latency_p999_ns);
    assert!(loaded.latency_p999_ns <= loaded.latency_max_ns);
    assert!(loaded.latency_mean_ns > 0);
    assert_eq!(loaded.protocol_errors, 0);

    // The wire report and the in-process snapshot agree on the counters.
    let local = server.stats();
    assert_eq!(local.connections, loaded.connections);
    assert_eq!(local.flushes, loaded.flushes);

    // The loaded writes actually took: durable reads see them.
    assert_eq!(client.get(0).expect("get"), Some(1000));

    server.shutdown();
    engine.quiesce();
}

#[test]
fn desynced_stream_is_dropped_and_counted() {
    let (_mem, engine, server) = boot();

    // Feed the server a response opcode (0x85, the stats reply): a
    // desynchronized stream. The high bit makes it an unknown request
    // opcode, so the server must drop the connection without replying.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect raw");
    raw.write_all(&[1, 0, 0, 0, 0x85]).expect("write bad frame");
    let mut buf = [0u8; 16];
    let n = raw.read(&mut buf).expect("read until server closes");
    assert_eq!(n, 0, "server must close a desynced connection, not answer");

    // The drop is visible in the live metrics.
    let mut client = KvClient::connect(server.local_addr()).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(
        stats.protocol_errors >= 1,
        "protocol error counter must record the dropped connection"
    );

    server.shutdown();
    engine.quiesce();
}
