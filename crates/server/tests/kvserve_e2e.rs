//! End-to-end service test: boot a real Crafty engine behind the TCP
//! front-end, load it over the wire, and read the live metrics back
//! through the protocol's `Stats` request.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use crafty_common::PersistentTm;
use crafty_core::{Crafty, CraftyConfig};
use crafty_kv::{DirectOps, KvConfig, SessionTable, ShardedKv};
use crafty_pmem::{MemorySpace, PmemConfig};
#[cfg(not(feature = "no-session-dedup"))]
use crafty_server::ClientError;
use crafty_server::{KvClient, KvServer, Request, Response, ServerConfig};

const RECORDS: u64 = 256;
const WORKERS: usize = 2;

/// Boots a prefilled store behind a loopback server, Crafty engine,
/// group commit on.
fn boot() -> (Arc<MemorySpace>, Arc<Crafty>, KvServer) {
    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    let engine = Arc::new(Crafty::new(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests().with_max_threads(WORKERS),
    ));
    let kv = ShardedKv::create(&mem, &KvConfig::benchmark(RECORDS, 16));
    {
        let mut ops = DirectOps::new(&mem);
        for key in 0..RECORDS {
            kv.put(&mut ops, key, key * 3).expect("direct prefill");
        }
        kv.persist_all(&mem, 0);
    }
    let sessions = SessionTable::create(&mem, 64);
    let server = KvServer::start(
        Arc::clone(&engine) as Arc<dyn crafty_common::PersistentTm>,
        kv,
        sessions,
        ServerConfig::loopback(WORKERS, true),
    )
    .expect("bind loopback server");
    (mem, engine, server)
}

#[test]
fn stats_reports_live_percentiles_from_a_loaded_server() {
    let (_mem, engine, server) = boot();
    let mut client = KvClient::connect(server.local_addr()).expect("connect");

    // A fresh server has counted nothing but this connection.
    let idle = client.stats().expect("stats on idle server");
    assert_eq!(idle.requests, 0, "stats must reflect only completed work");
    assert_eq!(idle.latency_count, 0);
    assert_eq!(idle.latency_p999_ns, 0);

    // Load it: pipelined mixed batches, so the server sees real
    // group-commit windows and every request lands in the histogram.
    const BATCHES: u64 = 20;
    const PER_BATCH: u64 = 8;
    for b in 0..BATCHES {
        let mut reqs = Vec::new();
        for i in 0..PER_BATCH {
            let key = (b * PER_BATCH + i) % RECORDS;
            if i % 2 == 0 {
                reqs.push(Request::Put {
                    key,
                    value: key + 1000,
                });
            } else {
                reqs.push(Request::Get { key });
            }
        }
        client.send(&reqs).expect("send batch");
        let responses = client.recv(reqs.len()).expect("recv batch");
        assert_eq!(responses.len(), reqs.len());
    }

    let loaded = client.stats().expect("stats on loaded server");
    let served = BATCHES * PER_BATCH;
    // The idle Stats request itself was served too.
    assert!(
        loaded.requests > served,
        "requests {} must count the {served} loaded ops",
        loaded.requests
    );
    assert!(loaded.connections >= 1);
    assert!(
        loaded.flushes >= 1,
        "group-commit write batches must have fenced"
    );
    assert!(
        loaded.latency_count >= served,
        "every served request must land in the histogram (got {})",
        loaded.latency_count
    );
    // Live percentiles: nonzero, ordered, bounded by the exact maximum.
    assert!(loaded.latency_p50_ns > 0, "p50 of a loaded server is not 0");
    assert!(loaded.latency_p50_ns <= loaded.latency_p99_ns);
    assert!(loaded.latency_p99_ns <= loaded.latency_p999_ns);
    assert!(loaded.latency_p999_ns <= loaded.latency_max_ns);
    assert!(loaded.latency_mean_ns > 0);
    assert_eq!(loaded.protocol_errors, 0);

    // The wire report and the in-process snapshot agree on the counters.
    let local = server.stats();
    assert_eq!(local.connections, loaded.connections);
    assert_eq!(local.flushes, loaded.flushes);

    // The loaded writes actually took: durable reads see them.
    assert_eq!(client.get(0).expect("get"), Some(1000));

    server.shutdown();
    engine.quiesce();
}

/// The live exactly-once contract, no crash involved: a replayed
/// sequenced batch (lost-ack simulation) must return the *cached*
/// responses and re-apply nothing — even for a non-idempotent increment.
#[cfg(not(feature = "no-session-dedup"))]
#[test]
fn replayed_batch_returns_cached_replies_without_reapplying() {
    let (_mem, engine, server) = boot();
    let mut client = KvClient::connect(server.local_addr()).expect("connect");

    let (sid, last_seq) = client.hello(0).expect("handshake");
    assert!(sid > 0, "fresh session granted");
    assert_eq!(last_seq, 0);

    let batch = [
        Request::Incr {
            key: 9000,
            delta: 5,
            session: sid,
            seq: 1,
        },
        Request::SeqPut {
            key: 9001,
            value: 77,
            session: sid,
            seq: 2,
        },
    ];
    client.send(&batch).expect("send");
    let first = client.recv(2).expect("recv");
    assert_eq!(first[0], Response::Found { value: 5 });
    assert_eq!(first[1], Response::Missing, "no previous value at 9001");

    // The client "lost the ack": replay the identical batch. The session
    // table must serve both responses from its cache.
    client.send(&batch).expect("replay");
    let second = client.recv(2).expect("recv replay");
    assert_eq!(second, first, "replayed batch must get the cached replies");

    // And the store shows exactly one application.
    assert_eq!(client.get(9000).expect("get"), Some(5), "no double-apply");
    assert_eq!(client.get(9001).expect("get"), Some(77));

    // A resumed session reports the applied high-water mark.
    let mut resumed = KvClient::connect(server.local_addr()).expect("reconnect");
    assert_eq!(resumed.hello(sid).expect("resume"), (sid, 2));

    server.shutdown();
    engine.quiesce();
}

/// Teeth: with the session-table lookup feature-gated out, the same
/// replay double-applies — proving the lookup is what provides
/// exactly-once, exactly as the fence teeth test proves the fence.
#[cfg(feature = "no-session-dedup")]
#[test]
fn dedup_teeth_replay_double_applies_without_the_lookup() {
    let (_mem, engine, server) = boot();
    let mut client = KvClient::connect(server.local_addr()).expect("connect");
    let (sid, _) = client.hello(0).expect("handshake");

    let batch = [Request::Incr {
        key: 9000,
        delta: 5,
        session: sid,
        seq: 1,
    }];
    client.send(&batch).expect("send");
    assert_eq!(
        client.recv(1).expect("recv")[0],
        Response::Found { value: 5 }
    );
    client.send(&batch).expect("replay");
    let replayed = client.recv(1).expect("recv replay")[0];

    assert_eq!(
        replayed,
        Response::Found { value: 10 },
        "without the dedup lookup the replay must double-apply — if this \
         fails, the teeth test is no longer exercising the gated path"
    );
    assert_eq!(client.get(9000).expect("get"), Some(10));

    server.shutdown();
    engine.quiesce();
}

/// Sequence gaps are protocol violations: the server drops the
/// connection without acking rather than applying out of order.
#[cfg(not(feature = "no-session-dedup"))]
#[test]
fn sequence_gap_drops_the_connection() {
    let (_mem, engine, server) = boot();
    let mut client = KvClient::connect(server.local_addr()).expect("connect");
    let (sid, _) = client.hello(0).expect("handshake");

    client
        .send(&[Request::Incr {
            key: 9000, // outside the prefilled range
            delta: 1,
            session: sid,
            seq: 7, // the session has applied nothing; seq 7 is a gap
        }])
        .expect("send");
    match client.recv(1) {
        Err(ClientError::Disconnected) => {}
        other => panic!("gap must close the connection, got {other:?}"),
    }

    let mut fresh = KvClient::connect(server.local_addr()).expect("connect");
    let stats = fresh.stats().expect("stats");
    assert!(
        stats.protocol_errors >= 1,
        "the violation must be counted, got {stats:?}"
    );
    assert_eq!(
        fresh.get(9000).expect("get"),
        None,
        "the gapped write must not have been applied"
    );

    server.shutdown();
    engine.quiesce();
}

/// Under an in-flight budget of one, concurrent pipelined batches are
/// shed with `Busy` — and a shed batch is *not* recorded, so resending
/// it succeeds.
#[test]
fn overloaded_server_sheds_whole_batches_with_busy() {
    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    let engine = Arc::new(Crafty::new(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests().with_max_threads(WORKERS),
    ));
    let kv = ShardedKv::create(&mem, &KvConfig::benchmark(RECORDS, 16));
    let sessions = SessionTable::create(&mem, 64);
    let server = KvServer::start(
        Arc::clone(&engine) as Arc<dyn crafty_common::PersistentTm>,
        kv,
        sessions,
        ServerConfig::loopback(WORKERS, true).with_inflight_budget(1),
    )
    .expect("bind loopback server");
    let addr = server.local_addr();

    // Two connections hammer wide write batches; with one budget slot and
    // two workers, overlapping windows force the loser onto the shed
    // path. Keep going until a Busy is observed (bounded, not timed).
    let shed_seen = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut drivers = Vec::new();
    for t in 0..2u64 {
        let shed_seen = Arc::clone(&shed_seen);
        drivers.push(std::thread::spawn(move || {
            let mut client = KvClient::connect(addr).expect("connect");
            let batch: Vec<Request> = (0..64)
                .map(|i| Request::Put {
                    key: t * 1000 + i,
                    value: i,
                })
                .collect();
            for _ in 0..200 {
                if shed_seen.load(std::sync::atomic::Ordering::Relaxed) {
                    return;
                }
                client.send(&batch).expect("send");
                let responses = client.recv(batch.len()).expect("recv");
                if responses.iter().any(|r| matches!(r, Response::Busy)) {
                    // The whole batch is shed together, never partially.
                    assert!(
                        responses.iter().all(|r| matches!(r, Response::Busy)),
                        "a shed batch must be Busy for every request"
                    );
                    shed_seen.store(true, std::sync::atomic::Ordering::Relaxed);
                    return;
                }
            }
        }));
    }
    for d in drivers {
        d.join().expect("driver");
    }
    assert!(
        shed_seen.load(std::sync::atomic::Ordering::Relaxed),
        "two colliding pipelines against a budget of one never shed"
    );
    let stats = server.shutdown();
    assert!(stats.shed_batches >= 1, "shed counter must record it");
    engine.quiesce();
}

#[test]
fn desynced_stream_is_dropped_and_counted() {
    let (_mem, engine, server) = boot();

    // Feed the server a response opcode (0x85, the stats reply): a
    // desynchronized stream. The high bit makes it an unknown request
    // opcode, so the server must drop the connection without replying.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect raw");
    raw.write_all(&[1, 0, 0, 0, 0x85]).expect("write bad frame");
    let mut buf = [0u8; 16];
    let n = raw.read(&mut buf).expect("read until server closes");
    assert_eq!(n, 0, "server must close a desynced connection, not answer");

    // The drop is visible in the live metrics.
    let mut client = KvClient::connect(server.local_addr()).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(
        stats.protocol_errors >= 1,
        "protocol error counter must record the dropped connection"
    );

    server.shutdown();
    engine.quiesce();
}
