//! Deterministic network fault injection under an unmodified client.
//!
//! [`FaultyStream`] wraps a real `TcpStream` and perturbs its blocking
//! I/O from a seeded [`SplitMix64`] stream: reads and writes are split at
//! arbitrary byte boundaries (so frames cross syscall edges), calls stall,
//! and the connection dies mid-frame. Because it implements
//! [`crate::NetStream`], it slots under [`crate::KvClient`] — and
//! therefore under [`crate::SessionClient`]'s retry loop — without either
//! knowing; the torture `service` suite uses exactly that stack to prove
//! the exactly-once contract holds when the network misbehaves *and* the
//! server crashes.
//!
//! Faults never corrupt data in flight. Bytes that are delivered are
//! delivered intact and in order — this is TCP's contract too; the
//! adversary controls *timing and truncation*, not content. (Content
//! corruption is the protocol proptest's territory, where the decoder
//! must survive arbitrary bytes.)
//!
//! Determinism caveat: the fault *decisions* are a pure function of the
//! seed and the call sequence, but the call sequence itself depends on
//! thread interleaving once a stream is cloned across threads. The suite
//! therefore treats fault seeds as adversary strategies, not replayable
//! schedules — replayability lives in the server's fault clock, which is
//! strictly sequenced by the durability pipeline.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crafty_common::SplitMix64;

use crate::client::NetStream;

/// Fault probabilities and intensities for one [`FaultyStream`].
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed for the shared decision stream (clones continue it).
    pub seed: u64,
    /// Probability a read/write is truncated to a random prefix.
    pub partial_io: f64,
    /// Probability a call stalls for [`FaultConfig::stall`] first.
    pub stall_chance: f64,
    /// How long a stall lasts.
    pub stall: Duration,
    /// Probability a call kills the connection (possibly mid-frame: a
    /// random prefix of a write may land before the cut).
    pub disconnect: f64,
}

impl FaultConfig {
    /// A lively mix for torture runs: frequent partial I/O, occasional
    /// short stalls, rare disconnects.
    pub fn quick(seed: u64) -> Self {
        FaultConfig {
            seed,
            partial_io: 0.25,
            stall_chance: 0.05,
            stall: Duration::from_millis(2),
            disconnect: 0.01,
        }
    }

    /// Partial I/O only — no stalls, no disconnects. Useful where the
    /// test wants framing stress without retry noise.
    pub fn choppy(seed: u64) -> Self {
        FaultConfig {
            seed,
            partial_io: 0.6,
            stall_chance: 0.0,
            stall: Duration::ZERO,
            disconnect: 0.0,
        }
    }
}

/// Decision state shared by every clone of one stream, so the fault
/// sequence is one stream regardless of how the halves are split.
#[derive(Debug)]
struct FaultState {
    rng: SplitMix64,
    /// Set when an injected disconnect fired; every later call fails.
    dead: bool,
}

/// What the decision stream ordered for one I/O call.
enum Verdict {
    /// Proceed, truncating the buffer to this many bytes (`usize::MAX`
    /// means the full buffer).
    Proceed(usize),
    /// Kill the connection; for writes, deliver this many bytes first.
    Disconnect(usize),
}

/// A `TcpStream` with a seeded adversary between the caller and the
/// kernel. See the module docs.
#[derive(Debug)]
pub struct FaultyStream {
    inner: TcpStream,
    cfg: FaultConfig,
    state: Arc<Mutex<FaultState>>,
}

impl FaultyStream {
    /// Wraps `inner`, seeding the decision stream from `cfg.seed`.
    pub fn new(inner: TcpStream, cfg: FaultConfig) -> Self {
        FaultyStream {
            inner,
            cfg,
            state: Arc::new(Mutex::new(FaultState {
                rng: SplitMix64::new(cfg.seed ^ 0xFAB7_1E57_0BAD_CA11),
                dead: false,
            })),
        }
    }

    /// Connects to `addr` and wraps the stream.
    ///
    /// # Errors
    ///
    /// Any I/O error from connecting.
    pub fn connect(
        addr: impl std::net::ToSocketAddrs,
        cfg: FaultConfig,
    ) -> std::io::Result<FaultyStream> {
        Ok(FaultyStream::new(TcpStream::connect(addr)?, cfg))
    }

    fn injected_reset() -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::ConnectionReset, "injected disconnect")
    }

    /// Rolls the dice for one call over a buffer of `len` bytes. Stalls
    /// happen inside (with the lock released first).
    fn decide(&self, len: usize) -> std::io::Result<Verdict> {
        let (verdict, stall) = {
            let mut st = self.state.lock().expect("fault state poisoned");
            if st.dead {
                return Err(Self::injected_reset());
            }
            let stall = st.rng.chance(self.cfg.stall_chance);
            if st.rng.chance(self.cfg.disconnect) {
                st.dead = true;
                let delivered = if len > 1 {
                    st.rng.next_below(len as u64) as usize
                } else {
                    0
                };
                (Verdict::Disconnect(delivered), stall)
            } else if len > 1 && st.rng.chance(self.cfg.partial_io) {
                let keep = 1 + st.rng.next_below(len as u64 - 1) as usize;
                (Verdict::Proceed(keep), stall)
            } else {
                (Verdict::Proceed(usize::MAX), stall)
            }
        };
        if stall && !self.cfg.stall.is_zero() {
            std::thread::sleep(self.cfg.stall);
        }
        Ok(verdict)
    }
}

impl Read for FaultyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.decide(buf.len())? {
            Verdict::Proceed(keep) => {
                let upto = buf.len().min(keep);
                self.inner.read(&mut buf[..upto])
            }
            Verdict::Disconnect(_) => {
                // Cut both directions so the peer sees it too.
                let _ = self.inner.shutdown(Shutdown::Both);
                Err(Self::injected_reset())
            }
        }
    }
}

impl Write for FaultyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.decide(buf.len())? {
            Verdict::Proceed(keep) => {
                let upto = buf.len().min(keep);
                self.inner.write(&buf[..upto])
            }
            Verdict::Disconnect(delivered) => {
                // A mid-frame cut: a prefix may reach the wire, then the
                // connection dies. The server must tolerate the torso.
                if delivered > 0 {
                    let _ = self.inner.write(&buf[..delivered]);
                    let _ = self.inner.flush();
                }
                let _ = self.inner.shutdown(Shutdown::Both);
                Err(Self::injected_reset())
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.state.lock().expect("fault state poisoned").dead {
            return Err(Self::injected_reset());
        }
        self.inner.flush()
    }
}

impl NetStream for FaultyStream {
    fn try_clone(&self) -> std::io::Result<Self> {
        Ok(FaultyStream {
            inner: self.inner.try_clone()?,
            cfg: self.cfg,
            state: Arc::clone(&self.state),
        })
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_write_timeout(dur)
    }

    fn set_nodelay(&self, on: bool) -> std::io::Result<()> {
        self.inner.set_nodelay(on)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn choppy_io_delivers_every_byte_in_order() {
        let (a, b) = pair();
        let mut tx = FaultyStream::new(a, FaultConfig::choppy(7));
        let mut rx = FaultyStream::new(b, FaultConfig::choppy(8));
        let sent: Vec<u8> = (0..16 * 1024).map(|i| (i % 251) as u8).collect();
        let payload = sent.clone();
        let writer = std::thread::spawn(move || {
            tx.write_all(&payload).expect("write through chop");
            tx // keep the socket open until the reader is done
        });
        let mut got = vec![0u8; sent.len()];
        rx.read_exact(&mut got).expect("read through chop");
        drop(writer.join().expect("writer"));
        assert_eq!(got, sent, "partial I/O must not lose or reorder bytes");
    }

    #[test]
    fn disconnect_is_sticky_across_clones() {
        let (a, _b) = pair();
        let cfg = FaultConfig {
            seed: 3,
            partial_io: 0.0,
            stall_chance: 0.0,
            stall: Duration::ZERO,
            disconnect: 1.0,
        };
        let mut s = FaultyStream::new(a, cfg);
        let mut clone = s.try_clone().expect("clone");
        assert_eq!(
            s.write(b"doomed").unwrap_err().kind(),
            std::io::ErrorKind::ConnectionReset
        );
        // The clone shares the dead flag: the connection stays dead.
        let mut buf = [0u8; 8];
        assert_eq!(
            clone.read(&mut buf).unwrap_err().kind(),
            std::io::ErrorKind::ConnectionReset
        );
    }
}
