//! The resilient client: sessions, retry with backoff, and idempotent
//! replay.
//!
//! [`SessionClient`] is the layer that turns the server's persistent
//! session dedup into an end-to-end **exactly-once** contract. It owns a
//! *connector* (any `FnMut` producing a fresh [`NetStream`] — a plain
//! TCP dial, or a [`crate::FaultyStream`] under the torture harness), a
//! session id obtained via the `Hello` handshake, and a monotonically
//! increasing sequence counter. Every write it issues is a *sequenced*
//! request (`SeqPut` / `SeqDelete` / `Incr`); unacknowledged requests
//! stay in a pending list and are **replayed verbatim** after any
//! timeout, disconnect, or `Busy` — the server's session table
//! classifies each replayed sequence number as already-applied and
//! returns the cached response instead of re-executing, so retrying is
//! always safe, even for non-idempotent increments, even across a server
//! crash-restart (the table lives in the persistent heap).
//!
//! Reconnection uses bounded exponential backoff with jitter: a short
//! [`Backoff::snooze`] ramp for the cheap in-process case, then seeded
//! multiplicative-jitter sleeps growing `base_delay · 2^attempt` up to
//! `max_delay`, for at most `max_attempts` attempts. On reconnect the
//! client resumes its session (`Hello { session }`); a refused resume
//! (the server reclaimed the slot) is a **hard error**, not a retry —
//! silently starting a fresh session would forfeit the dedup state that
//! makes replays safe.
//!
//! What this deliberately does not hide: [`ClientError::Unexpected`]
//! responses (protocol misuse) and desyncs that persist across
//! `max_attempts` reconnects. Exactly-once is retry + dedup; when either
//! half is gone, the client fails loudly rather than guessing.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crafty_common::SplitMix64;
use crafty_kv::REPLY_WINDOW;
use crossbeam::utils::Backoff;

use crate::client::{ClientError, KvClient, NetStream};
use crate::protocol::{Request, Response};

/// How hard [`SessionClient`] tries before giving up.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Connection/exchange attempts per operation before surfacing the
    /// last error. At least 1.
    pub max_attempts: u32,
    /// First backoff delay; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling for the doubled delay.
    pub max_delay: Duration,
    /// Per-request read/write deadline applied to every connection
    /// (surfaces as [`ClientError::Timeout`], which triggers replay).
    /// `None` blocks forever — only sensible without fault injection.
    pub request_timeout: Option<Duration>,
    /// Seed for the jitter stream (deterministic per client).
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// A tight policy for tests and torture runs: many attempts, short
    /// delays, an aggressive request deadline.
    pub fn quick(jitter_seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 40,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            request_timeout: Some(Duration::from_millis(500)),
            jitter_seed,
        }
    }
}

/// A write in a [`SessionClient::write_batch`] — the sequenced,
/// replay-safe subset of the protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteOp {
    /// `key = value`; acks the previous value.
    Put {
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Remove `key`; acks the removed value.
    Delete {
        /// Key to remove.
        key: u64,
    },
    /// `key += delta` (missing reads as 0); acks the post-increment
    /// value. Non-idempotent — the op that *proves* exactly-once.
    Incr {
        /// Key to increment.
        key: u64,
        /// Amount to add (wrapping).
        delta: u64,
    },
}

/// A session-holding, retrying client. See the module docs for the
/// contract. Generic over the transport so fault-injected streams slot
/// underneath unchanged.
pub struct SessionClient<S: NetStream = TcpStream> {
    connector: Box<dyn FnMut() -> std::io::Result<S> + Send>,
    policy: RetryPolicy,
    jitter: SplitMix64,
    client: Option<KvClient<S>>,
    /// 0 until the first successful handshake.
    session: u64,
    next_seq: u64,
    /// Sequenced requests sent but never acknowledged, in seq order.
    /// Replayed in full after every reconnect; the server's dedup table
    /// makes the replay at-most-once.
    pending: Vec<Request>,
}

impl SessionClient<TcpStream> {
    /// A client that dials `addr` over plain TCP on every (re)connect.
    pub fn tcp(addr: impl ToSocketAddrs + Send + Clone + 'static, policy: RetryPolicy) -> Self {
        SessionClient::new(move || TcpStream::connect(addr.clone()), policy)
    }
}

impl<S: NetStream> SessionClient<S> {
    /// A client over an arbitrary connector — called for the initial
    /// connection and every reconnect. The connector may return a
    /// different address each time (the torture supervisor moves the
    /// restarted server to a fresh port).
    pub fn new(
        connector: impl FnMut() -> std::io::Result<S> + Send + 'static,
        policy: RetryPolicy,
    ) -> Self {
        SessionClient {
            connector: Box::new(connector),
            jitter: SplitMix64::new(policy.jitter_seed ^ 0x5E55_10C1_1E27_0001),
            policy,
            client: None,
            session: 0,
            next_seq: 1,
            pending: Vec::new(),
        }
    }

    /// The session id, once granted (0 before the first handshake).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Sleeps the jittered exponential delay for `attempt` (0-based).
    /// The first attempt gets only the [`Backoff`] snooze ramp — the
    /// common transient (server restarting on the next instruction)
    /// resolves without a scheduled sleep.
    fn backoff_sleep(&mut self, attempt: u32) {
        let mut spin = Backoff::new();
        while !spin.is_completed() {
            spin.snooze();
        }
        if attempt == 0 {
            return;
        }
        let exp = self
            .policy
            .base_delay
            .saturating_mul(1u32 << attempt.min(16).saturating_sub(1));
        let capped = exp.min(self.policy.max_delay);
        // Multiplicative jitter in [0.5, 1.0): desynchronizes herds of
        // retrying clients without ever shortening below half the ramp.
        let jitter = (500 + self.jitter.next_below(500)) as f64 / 1000.0;
        std::thread::sleep(capped.mul_f64(jitter));
    }

    /// Ensures a connected, handshaken client, reconnecting if needed.
    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.client.is_some() {
            return Ok(());
        }
        let stream = (self.connector)()?;
        let mut client = KvClient::from_stream(stream)?;
        client.set_read_timeout(self.policy.request_timeout)?;
        client.set_write_timeout(self.policy.request_timeout)?;
        let (granted, _last_seq) = client.hello(self.session)?;
        if granted == 0 {
            // The server no longer knows this session: its dedup state is
            // gone, so replaying `pending` could double-apply. Fail loudly.
            return Err(ClientError::Unexpected(format!(
                "session {} expired on the server; exactly-once cannot be preserved",
                self.session
            )));
        }
        self.session = granted;
        self.client = Some(client);
        Ok(())
    }

    /// Durably applies `ops` as one pipelined, sequenced batch and
    /// returns each op's acked value (`Put`/`Delete`: the previous value;
    /// `Incr`: `Some(post-increment)`). Retries through timeouts,
    /// disconnects, server restarts, and shedding; when this returns
    /// `Ok`, every op was applied **exactly once** and survives any
    /// crash.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty or longer than [`REPLY_WINDOW`] — deeper
    /// batches could outrun the server's cached-reply ring and lose
    /// replay responses.
    ///
    /// # Errors
    ///
    /// The last [`ClientError`] once the retry policy is exhausted, or
    /// immediately for non-retryable failures (expired session, protocol
    /// misuse).
    pub fn write_batch(&mut self, ops: &[WriteOp]) -> Result<Vec<Option<u64>>, ClientError> {
        assert!(!ops.is_empty(), "empty write batch");
        assert!(
            ops.len() as u64 <= REPLY_WINDOW,
            "batch of {} exceeds the replayable window of {REPLY_WINDOW}",
            ops.len()
        );
        assert!(self.pending.is_empty(), "a previous batch is still pending");
        for op in ops {
            let seq = self.next_seq;
            self.next_seq += 1;
            // session is patched at send time: the first batch may be
            // sent before the first handshake assigns one.
            self.pending.push(match *op {
                WriteOp::Put { key, value } => Request::SeqPut {
                    key,
                    value,
                    session: 0,
                    seq,
                },
                WriteOp::Delete { key } => Request::SeqDelete {
                    key,
                    session: 0,
                    seq,
                },
                WriteOp::Incr { key, delta } => Request::Incr {
                    key,
                    delta,
                    session: 0,
                    seq,
                },
            });
        }
        let result = self.drive_pending();
        if result.is_ok() {
            self.pending.clear();
        }
        result
    }

    /// Sends every pending sequenced request and collects its acks. The
    /// pending list is moved out of `self` for the duration so the retry
    /// loop can borrow `self` mutably; session ids are stamped fresh per
    /// attempt, because the first attempt learns the id in its handshake.
    fn drive_pending(&mut self) -> Result<Vec<Option<u64>>, ClientError> {
        let pending = std::mem::take(&mut self.pending);
        let count = pending.len();
        let out = self.with_retries(|sid, client| {
            let stamped: Vec<Request> = pending.iter().map(|r| stamp_session(*r, sid)).collect();
            client.send(&stamped)?;
            let responses = client.recv(count)?;
            let mut acks = Vec::with_capacity(count);
            for resp in responses {
                match resp {
                    Response::Found { value } => acks.push(Some(value)),
                    Response::Missing => acks.push(None),
                    Response::Busy => return Err(ClientError::Busy),
                    other => return Err(ClientError::Unexpected(format!("{other:?}"))),
                }
            }
            Ok(acks)
        });
        self.pending = pending;
        out
    }

    /// Runs connect + `exchange` attempts (the exchange receives the
    /// granted session id) until one succeeds or the policy is exhausted.
    /// Retryable failures drop the connection — forcing a fresh
    /// handshake — and back off; `Busy` backs off on the same connection.
    fn with_retries<T>(
        &mut self,
        exchange: impl Fn(u64, &mut KvClient<S>) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut last = ClientError::Disconnected;
        for attempt in 0..self.policy.max_attempts.max(1) {
            self.backoff_sleep(attempt);
            match self.ensure_connected() {
                Ok(()) => {}
                Err(e) if e.is_retryable() => {
                    last = e;
                    continue;
                }
                Err(ClientError::Io(e)) => {
                    last = ClientError::Io(e);
                    continue;
                }
                Err(e) => return Err(e),
            }
            let sid = self.session;
            let client = self.client.as_mut().expect("just connected");
            match exchange(sid, client) {
                Ok(out) => return Ok(out),
                Err(ClientError::Busy) => {
                    // The batch was shed untouched; same connection, same
                    // bytes, later.
                    last = ClientError::Busy;
                }
                Err(e) if e.is_retryable() || matches!(e, ClientError::Desync(_)) => {
                    // Ambiguous or unusable connection: reconnect and let
                    // the session table sort out what was applied.
                    self.client = None;
                    last = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Reads `key` with retries (reads are idempotent, so no sequencing
    /// is needed).
    ///
    /// # Errors
    ///
    /// As [`SessionClient::write_batch`].
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, ClientError> {
        self.with_retries(move |_sid, client| client.get(key))
    }

    /// `key += delta`, exactly once; returns the post-increment value.
    ///
    /// # Errors
    ///
    /// As [`SessionClient::write_batch`].
    pub fn incr(&mut self, key: u64, delta: u64) -> Result<u64, ClientError> {
        let acks = self.write_batch(&[WriteOp::Incr { key, delta }])?;
        acks[0]
            .ok_or_else(|| ClientError::Unexpected("increment acked without a value".to_string()))
    }
}

/// Rewrites a sequenced request's session id (requests are staged before
/// the first handshake has granted one).
fn stamp_session(req: Request, sid: u64) -> Request {
    match req {
        Request::Incr {
            key, delta, seq, ..
        } => Request::Incr {
            key,
            delta,
            session: sid,
            seq,
        },
        Request::SeqPut {
            key, value, seq, ..
        } => Request::SeqPut {
            key,
            value,
            session: sid,
            seq,
        },
        Request::SeqDelete { key, seq, .. } => Request::SeqDelete {
            key,
            session: sid,
            seq,
        },
        other => other,
    }
}

impl<S: NetStream> std::fmt::Debug for SessionClient<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionClient")
            .field("session", &self.session)
            .field("next_seq", &self.next_seq)
            .field("pending", &self.pending.len())
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_policy_is_bounded() {
        let p = RetryPolicy::quick(1);
        assert!(p.max_attempts >= 2);
        assert!(p.base_delay <= p.max_delay);
        assert!(p.request_timeout.is_some());
    }

    #[test]
    fn stamping_touches_only_sequenced_requests() {
        let stamped = stamp_session(
            Request::Incr {
                key: 1,
                delta: 2,
                session: 0,
                seq: 9,
            },
            41,
        );
        assert_eq!(stamped.sequence(), Some((41, 9)));
        let get = stamp_session(Request::Get { key: 5 }, 41);
        assert_eq!(get, Request::Get { key: 5 });
    }
}
