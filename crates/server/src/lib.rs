//! `crafty-server`: a networked front-end for the durable KV store.
//!
//! This crate turns [`crafty_kv::ShardedKv`] into a service: a
//! thread-per-core TCP server ([`KvServer`]) speaking a pipelined,
//! length-prefixed binary protocol ([`protocol`]), and a blocking
//! pipelining client ([`KvClient`]) for load generators and tests. It is
//! built on `std::net` only — no async runtime, no framework — because the
//! point is to measure the *engine's* durability cost at the tail, not an
//! I/O stack's.
//!
//! # Why a network front-end in a TM paper reproduction?
//!
//! The paper evaluates Crafty with closed-loop microbenchmarks: N threads
//! each issuing the next transaction the moment the previous one returns.
//! That measures throughput but hides the latency cost of durability —
//! under a closed loop, a slow drain just slows the arrival of the next
//! request. A service sees **open-loop** arrivals: requests arrive on a
//! schedule the server does not control, queueing delay compounds, and
//! every drain barrier shows up in some request's tail latency. The
//! `kvserve` benchmark (in `crafty-bench`) drives this server open-loop
//! and reports p50/p99/p999, making the group-commit trade visible: per-
//! transaction durability pays a drain on every write's critical path,
//! while the server's batch-wide durability window
//! ([`server`] module docs) amortizes one drain across a pipelined batch
//! — lower tails at the same offered load.
//!
//! # Durability contract
//!
//! A response to a `Put`/`Delete` is written only after the durability
//! fence covering that write. Acked ⇒ durable, at every crash point; the
//! workspace's crash tests kill the server mid-load and verify every
//! acked write survives recovery.
//!
//! # Exactly-once contract
//!
//! Durability alone leaves retries ambiguous: a client whose ack was lost
//! cannot tell "never applied" from "applied, ack dropped". The session
//! layer closes that hole. [`SessionClient`] (module [`retry`])
//! handshakes a session, sequences every write, and replays unacked
//! batches through reconnects with bounded exponential backoff; the
//! server persists each session's applied high-water mark and cached
//! responses in the same heap — and the same transactions — as the data
//! ([`crafty_kv::SessionTable`]), so replays are deduplicated across
//! server crash-restarts. Retry + persistent dedup = **exactly-once for
//! acked writes**, including non-idempotent increments, which the
//! torture `service` suite audits under seeded network faults
//! ([`FaultyStream`], module [`faults`]) and fault-clock crash-restarts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod faults;
pub mod protocol;
pub mod retry;
pub mod server;

pub use client::{ClientError, KvClient, NetStream};
pub use faults::{FaultConfig, FaultyStream};
pub use protocol::{ProtocolError, Request, Response, StatsReport};
pub use retry::{RetryPolicy, SessionClient, WriteOp};
pub use server::{KvServer, ServerConfig, ServerStats};
