//! The thread-per-core TCP server over a [`ShardedKv`].
//!
//! # Architecture
//!
//! [`KvServer::start`] binds one `TcpListener` and spawns `workers`
//! accept-and-serve threads, each holding a clone of the listener (the
//! kernel load-balances `accept` across them) and one registered
//! [`TmThread`] handle. A worker serves one connection at a time, start to
//! finish; with as many connections as workers every core runs its own
//! connection — the thread-per-core shape, with no cross-thread handoff
//! per request.
//!
//! # Batches are durability windows
//!
//! A worker reads whatever bytes have arrived, decodes **every complete
//! frame** in them, and treats that run of pipelined requests as one
//! batch. Under [`ServerConfig::group_commit`] the batch's writes execute
//! via [`TmThread::execute_deferred`] and share a single
//! [`TmThread::flush_deferred`] drain barrier, issued after the last
//! request. With `group_commit` off every write drains individually
//! ([`TmThread::execute`]), which is the per-transaction baseline the
//! latency benchmark compares against.
//!
//! In both modes, a batch that contained any write ends with one
//! [`PersistentTm::persist_fence`] *before any response byte is written*.
//! The drain alone is not enough to ack: the paper's recovery is
//! prefix-consistent — it rolls back each thread's latest logged sequence
//! (and the timestamp cut can take committed-but-unpinned work of *other*
//! threads with it), so an acked write could still be undone after a
//! crash. The fence pins everything completed so far (Section 5.2's
//! on-demand persistence), making the ack mean what a client thinks it
//! means: this write survives any crash from now on. Its cost, like the
//! drain's, amortizes over the batch — the deeper clients pipeline, the
//! cheaper acknowledged durability gets per write.
//!
//! Batching is *emergent*: nothing waits to fill a window. An idle server
//! sees one-request batches and behaves like a per-request server; a
//! loaded one finds deep pipelines in its socket buffer and amortizes
//! accordingly. This is exactly the group-commit bargain measured by the
//! `kvserve` benchmark.
//!
//! # Exactly-once sessions
//!
//! The server owns a persistent [`SessionTable`] living in the same heap
//! as the store. `Hello` allocates or resumes a session *in a persistent
//! transaction*, fenced before the `Welcome` leaves (an acked session id
//! survives any crash). Sequenced writes (`Incr`, `SeqPut`, `SeqDelete`)
//! run their dedup check, their store mutation, and their session-record
//! update **inside one transaction**, so "applied" and "recorded as
//! applied" are crash-atomic — a replayed batch after a lost ack
//! re-applies nothing and gets its cached responses back. Sequence-number
//! violations (gaps, replays older than the reply window, unknown
//! sessions) drop the connection and count as protocol errors: a correct
//! client never produces them, and inventing an answer would silently
//! break the contract.
//!
//! # Degrading under overload and failure
//!
//! Three mechanisms keep the durability pipeline honest when the world
//! misbehaves. **Shedding**: an optional in-flight-batch budget
//! ([`ServerConfig::max_inflight_batches`]) answers every request of an
//! over-budget batch with `Busy` — nothing executed, nothing recorded,
//! the client backs off and resends; the pipeline sheds load instead of
//! queueing toward collapse. **Write deadlines**
//! ([`ServerConfig::write_timeout`]): a client that stops draining its
//! socket cannot pin a worker forever; the connection is dropped (its
//! unacked responses are replayable by construction). **The power rail**
//! ([`ServerConfig::power`]): under the simulated-pmem fault clock, after
//! a batch's fence and *before* any response byte is written, the worker
//! polls [`MemorySpace::fault_tripped`] — if the simulated power is gone,
//! the ack is withheld, because an ack must only describe states that
//! exist in the crash image. (Causally sound: the fence itself advances
//! the fault clock, so a trap during or before the fence is visible by
//! the time we poll; a clean poll means the fence fully preceded the
//! cut and its effects are in the image.) Graceful [`KvServer::shutdown`]
//! ends every worker with a final deferred drain + fence, so nothing
//! acknowledged is left unpinned when the sockets close.
//!
//! # Live metrics
//!
//! Workers record every batch's service time (decode → fence) into a
//! shared [`LatencyHistogram`], one sample per request. The protocol's
//! `Stats` request ([`crate::protocol::StatsReport`]) returns those
//! percentiles plus the lifetime counters, answered from shared state
//! without touching the engine — a live, remote view of the same numbers
//! [`KvServer::stats`] exposes in-process.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crafty_common::{PersistentTm, TmThread};
use crafty_kv::{CachedReply, SeqCheck, SessionTable, ShardedKv};
use crafty_pmem::MemorySpace;
use crafty_stats::LatencyHistogram;

use crate::protocol::{frame_payload_len, Request, Response, StatsReport, HEADER_LEN};

/// How a [`KvServer`] listens, persists, and degrades.
#[derive(Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 picks a free port;
    /// read the result from [`KvServer::local_addr`]).
    pub addr: String,
    /// Accept-and-serve worker threads. Each registers one engine thread,
    /// so this must not exceed the engine's configured thread limit, and
    /// the server owns tids `0..workers` while it runs.
    pub workers: usize,
    /// Whether a batch of pipelined writes shares one durability barrier
    /// (group commit) or each write drains individually before its ack.
    pub group_commit: bool,
    /// In-flight pipelined-batch budget; batches beyond it are shed with
    /// `Busy` before any engine work. `0` disables shedding.
    pub max_inflight_batches: usize,
    /// Deadline for writing a batch's responses. A client that stops
    /// draining its socket is dropped instead of pinning a worker.
    /// `None` blocks forever.
    pub write_timeout: Option<Duration>,
    /// The power rail: when serving a simulated-pmem space with an armed
    /// fault clock, poll [`MemorySpace::fault_tripped`] after each fence
    /// and withhold acks once the simulated power is gone. `None` (the
    /// default, and the only sane choice on a space without an armed
    /// fault plan) never withholds.
    pub power: Option<Arc<MemorySpace>>,
}

impl ServerConfig {
    /// Loopback on an ephemeral port, group commit per the flag, no
    /// shedding budget, a 5 s write deadline, no power rail.
    pub fn loopback(workers: usize, group_commit: bool) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: workers.max(1),
            group_commit,
            max_inflight_batches: 0,
            write_timeout: Some(Duration::from_secs(5)),
            power: None,
        }
    }

    /// Sets the in-flight-batch budget (see
    /// [`ServerConfig::max_inflight_batches`]).
    #[must_use]
    pub fn with_inflight_budget(mut self, batches: usize) -> Self {
        self.max_inflight_batches = batches;
        self
    }

    /// Attaches the power rail (see [`ServerConfig::power`]).
    #[must_use]
    pub fn with_power(mut self, mem: Arc<MemorySpace>) -> Self {
        self.power = Some(mem);
        self
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("workers", &self.workers)
            .field("group_commit", &self.group_commit)
            .field("max_inflight_batches", &self.max_inflight_batches)
            .field("write_timeout", &self.write_timeout)
            .field("power", &self.power.is_some())
            .finish()
    }
}

/// Poll interval for noticing shutdown while blocked in `read`.
const READ_POLL: Duration = Duration::from_millis(25);

/// Monotone counters shared by all workers, plus the live service-latency
/// histogram behind the `Stats` protocol request. The histogram counts,
/// per request, the time from its batch's decode to the durability fence
/// that releases its response — the server-side component of what a client
/// observes. Workers touch the mutex once per batch, off the per-request
/// path.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    batches: AtomicU64,
    flushes: AtomicU64,
    protocol_errors: AtomicU64,
    shed_batches: AtomicU64,
    sessions: AtomicU64,
    /// Batches currently between decode and ack, for the shedding budget.
    inflight: AtomicU64,
    latency: Mutex<LatencyHistogram>,
}

impl Counters {
    /// Snapshot of counters and latency percentiles as a wire-ready
    /// [`StatsReport`].
    fn report(&self) -> StatsReport {
        let lat = self
            .latency
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        StatsReport {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            shed_batches: self.shed_batches.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            latency_count: lat.count(),
            latency_mean_ns: lat.mean() as u64,
            latency_p50_ns: lat.percentile(0.5),
            latency_p99_ns: lat.percentile(0.99),
            latency_p999_ns: lat.percentile(0.999),
            latency_max_ns: lat.max(),
        }
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            shed_batches: self.shed_batches.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the server's lifetime counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests executed.
    pub requests: u64,
    /// Pipelined batches served (each at most one durability barrier).
    pub batches: u64,
    /// Durability barriers actually issued for batches containing writes.
    pub flushes: u64,
    /// Connections dropped for malformed frames or sequence violations.
    pub protocol_errors: u64,
    /// Batches answered `Busy` under the in-flight budget, untouched by
    /// the engine. Nominal-load runs must keep this at zero.
    pub shed_batches: u64,
    /// Client sessions allocated by `Hello` over this server's lifetime.
    pub sessions: u64,
}

impl ServerStats {
    /// Mean pipelined-batch depth — the amortization factor group commit
    /// achieved. `1.0` means the server never saw a pipeline.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// A running KV service front-end. Dropping without calling
/// [`KvServer::shutdown`] leaks the worker threads until process exit;
/// call `shutdown` for an orderly stop.
pub struct KvServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    workers: Vec<JoinHandle<()>>,
}

impl KvServer {
    /// Binds `cfg.addr` and starts serving `kv` through `engine`, with
    /// `sessions` providing the persistent exactly-once dedup state
    /// (created next to the store via [`SessionTable::create`], or
    /// reattached after a crash via [`SessionTable::open`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding or cloning the listener.
    ///
    /// # Panics
    ///
    /// Worker threads panic (on their own threads) if `cfg.workers`
    /// exceeds the engine's configured thread limit.
    pub fn start(
        engine: Arc<dyn PersistentTm>,
        kv: ShardedKv,
        sessions: SessionTable,
        cfg: ServerConfig,
    ) -> std::io::Result<KvServer> {
        let listener = TcpListener::bind(&*cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for tid in 0..cfg.workers.max(1) {
            let listener = listener.try_clone()?;
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let cfg = cfg.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kv-worker-{tid}"))
                    .spawn(move || {
                        worker_loop(
                            &*engine, kv, sessions, tid, &listener, &stop, &counters, &cfg,
                        )
                    })?,
            );
        }
        Ok(KvServer {
            local_addr,
            stop,
            counters,
            workers,
        })
    }

    /// The bound address — connect clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.stats()
    }

    /// Stops accepting, drains the workers, and returns the final
    /// counters. In-flight batches finish (their acks stay honest), each
    /// worker issues a final deferred drain + durability fence before its
    /// socket closes, and idle connections are dropped.
    pub fn shutdown(self) -> ServerStats {
        self.stop.store(true, Ordering::SeqCst);
        // Wake every worker that is blocked in accept(): one dummy
        // connection per worker, immediately dropped.
        for _ in &self.workers {
            let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        }
        for w in self.workers {
            let _ = w.join();
        }
        self.counters.stats()
    }
}

impl std::fmt::Debug for KvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Resolves an address string the way [`TcpStream::connect`] would; used
/// by tests to validate configs without binding.
pub fn resolve_addr(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing"))
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    engine: &dyn PersistentTm,
    kv: ShardedKv,
    sessions: SessionTable,
    tid: usize,
    listener: &TcpListener,
    stop: &AtomicBool,
    counters: &Counters,
    cfg: &ServerConfig,
) {
    let mut handle = engine.register_thread(tid);
    while !stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if stop.load(Ordering::SeqCst) {
            break; // the shutdown wake-up connection
        }
        counters.connections.fetch_add(1, Ordering::Relaxed);
        serve_connection(
            engine,
            &kv,
            &sessions,
            handle.as_mut(),
            tid,
            stream,
            stop,
            counters,
            cfg,
        );
    }
    // Graceful exit: whatever this worker deferred and never fenced (a
    // connection dropped mid-batch, a final Flush-less pipeline) gets one
    // last drain + fence before the thread dies. Shutdown must never
    // leave acknowledged-adjacent state unpinned.
    handle.flush_deferred();
    engine.persist_fence(tid);
}

/// Serves one connection until EOF, error, sequence violation, or
/// shutdown.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    engine: &dyn PersistentTm,
    kv: &ShardedKv,
    sessions: &SessionTable,
    handle: &mut dyn TmThread,
    tid: usize,
    mut stream: TcpStream,
    stop: &AtomicBool,
    counters: &Counters,
    cfg: &ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(cfg.write_timeout);
    let mut inbox: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let mut batch: Vec<Request> = Vec::new();
    let mut outbox: Vec<u8> = Vec::with_capacity(4096);
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => inbox.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        // Decode every complete frame already buffered: the pipelined
        // batch, which is this iteration's durability window.
        batch.clear();
        let mut consumed = 0;
        loop {
            match frame_payload_len(&inbox[consumed..]) {
                Ok(Some(len)) => {
                    let payload = &inbox[consumed + HEADER_LEN..consumed + HEADER_LEN + len];
                    match Request::decode(payload) {
                        Ok(req) => batch.push(req),
                        Err(_) => {
                            counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    consumed += HEADER_LEN + len;
                }
                Ok(None) => break,
                Err(_) => {
                    counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        inbox.drain(..consumed);
        if batch.is_empty() {
            continue;
        }

        // Overload shedding: claim a slot in the in-flight budget or
        // answer the whole batch `Busy` — no engine work, no session
        // record, so resending the identical batch later is safe.
        if cfg.max_inflight_batches > 0 {
            let claimed = counters.inflight.fetch_add(1, Ordering::AcqRel);
            if claimed >= cfg.max_inflight_batches as u64 {
                counters.inflight.fetch_sub(1, Ordering::AcqRel);
                counters.shed_batches.fetch_add(1, Ordering::Relaxed);
                outbox.clear();
                for _ in &batch {
                    Response::Busy.encode(&mut outbox);
                }
                if stream.write_all(&outbox).is_err() {
                    return;
                }
                continue;
            }
        }

        outbox.clear();
        let mut deferred = false;
        // An explicit Flush requests the fence even in a read-only batch.
        let wrote = batch
            .iter()
            .any(|r| r.is_write() || matches!(r, Request::Flush));
        let batch_start = Instant::now();
        let mut doomed = false;
        for req in &batch {
            // Stats is answered from shared state, never from the engine:
            // polling a loaded server must not contend on its transactions.
            let response = match *req {
                Request::Stats => Response::Stats {
                    report: counters.report(),
                },
                req => match execute_request(
                    kv,
                    sessions,
                    handle,
                    req,
                    cfg.group_commit,
                    &mut deferred,
                    counters,
                ) {
                    Some(resp) => resp,
                    None => {
                        // Sequence violation: a correct client never sends
                        // this. Drop the connection without acking the
                        // batch — but finish the durability epilogue so the
                        // worker's handle is clean for the next connection.
                        counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        doomed = true;
                        break;
                    }
                },
            };
            response.encode(&mut outbox);
        }
        // The ack-after-fence rule: if any write in this batch deferred
        // its durability, issue the shared drain barrier now, and pin the
        // whole window against recovery's latest-sequence rollback — no
        // response byte leaves before every acked write survives any
        // future crash.
        if deferred {
            handle.flush_deferred();
            counters.flushes.fetch_add(1, Ordering::Relaxed);
        }
        if wrote {
            engine.persist_fence(tid);
        }
        if cfg.max_inflight_batches > 0 {
            counters.inflight.fetch_sub(1, Ordering::AcqRel);
        }
        if doomed {
            return;
        }
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        // Every response in the batch is released by the same fence, so
        // each request's server-side service time is the batch's: one
        // sample per request, one mutex acquisition per batch.
        let service_ns = batch_start.elapsed().as_nanos() as u64;
        {
            let mut lat = counters
                .latency
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for _ in 0..batch.len() {
                lat.record(service_ns);
            }
        }
        // The power rail: if the simulated power was cut, the crash image
        // is already frozen — anything this batch did may not be in it.
        // Withholding the ack keeps the acked-implies-persisted contract;
        // the client will time out and replay against the restarted
        // server, where the session table dedups whatever *did* survive.
        if let Some(power) = &cfg.power {
            if power.fault_tripped() {
                return;
            }
        }
        if stream.write_all(&outbox).is_err() {
            return;
        }
    }
}

/// The dedup classification for `(session, seq)` — the session-table
/// lookup that makes replays at-most-once. The `no-session-dedup` feature
/// (teeth test only) removes it: every sequenced request then looks
/// fresh, a replayed batch double-applies, and the exactly-once audit
/// must catch it.
#[cfg(not(feature = "no-session-dedup"))]
fn dedup_check(
    sessions: &SessionTable,
    ops: &mut dyn crafty_common::TxnOps,
    session: u64,
    seq: u64,
) -> Result<SeqCheck, crafty_common::TxAbort> {
    sessions.check(ops, session, seq)
}

#[cfg(feature = "no-session-dedup")]
fn dedup_check(
    _sessions: &SessionTable,
    _ops: &mut dyn crafty_common::TxnOps,
    _session: u64,
    _seq: u64,
) -> Result<SeqCheck, crafty_common::TxAbort> {
    Ok(SeqCheck::Fresh)
}

/// Executes one sequenced write under session dedup: check, apply, and
/// record in **one** transaction. `apply` runs only on a `Fresh`
/// classification and returns the reply to cache; replays return the
/// cached reply without touching the store. Returns `None` on a sequence
/// violation (drop the connection).
fn execute_sequenced(
    sessions: &SessionTable,
    handle: &mut dyn TmThread,
    session: u64,
    seq: u64,
    group_commit: bool,
    deferred: &mut bool,
    apply: &mut dyn FnMut(
        &mut dyn crafty_common::TxnOps,
    ) -> Result<CachedReply, crafty_common::TxAbort>,
) -> Option<Response> {
    let mut verdict = SeqCheck::Unknown;
    let mut reply = CachedReply::missing();
    let mut body = |ops: &mut dyn crafty_common::TxnOps| {
        verdict = dedup_check(sessions, ops, session, seq)?;
        match verdict {
            SeqCheck::Fresh => {
                reply = apply(ops)?;
                #[cfg(not(feature = "no-session-dedup"))]
                sessions.record(ops, session, seq, reply)?;
            }
            SeqCheck::Replay(cached) => reply = cached,
            _ => {}
        }
        Ok(())
    };
    if group_commit {
        handle.execute_deferred(&mut body);
        *deferred = true;
    } else {
        handle.execute(&mut body);
    }
    match verdict {
        SeqCheck::Fresh | SeqCheck::Replay(_) => Some(if reply.found {
            Response::Found { value: reply.value }
        } else {
            Response::Missing
        }),
        SeqCheck::Gap { .. } | SeqCheck::Stale | SeqCheck::Unknown => None,
    }
}

/// Executes one request as one persistent transaction and forms its
/// response. Under group commit, writes run deferred and set `deferred`
/// so the caller fences the batch before acking. `None` means a sequence
/// violation: the caller drops the connection.
fn execute_request(
    kv: &ShardedKv,
    sessions: &SessionTable,
    handle: &mut dyn TmThread,
    req: Request,
    group_commit: bool,
    deferred: &mut bool,
    counters: &Counters,
) -> Option<Response> {
    match req {
        Request::Get { key } => {
            let mut got = None;
            handle.execute(&mut |ops| {
                got = kv.get(ops, key)?;
                Ok(())
            });
            Some(match got {
                Some(value) => Response::Found { value },
                None => Response::Missing,
            })
        }
        Request::Put { key, value } => {
            let mut prev = None;
            let mut body = |ops: &mut dyn crafty_common::TxnOps| {
                prev = kv.put(ops, key, value)?;
                Ok(())
            };
            if group_commit {
                handle.execute_deferred(&mut body);
                *deferred = true;
            } else {
                handle.execute(&mut body);
            }
            Some(match prev {
                Some(value) => Response::Found { value },
                None => Response::Missing,
            })
        }
        Request::Delete { key } => {
            let mut prev = None;
            let mut body = |ops: &mut dyn crafty_common::TxnOps| {
                prev = kv.remove(ops, key)?;
                Ok(())
            };
            if group_commit {
                handle.execute_deferred(&mut body);
                *deferred = true;
            } else {
                handle.execute(&mut body);
            }
            Some(match prev {
                Some(value) => Response::Found { value },
                None => Response::Missing,
            })
        }
        Request::Scan { key, limit } => {
            let mut result = (0, 0);
            handle.execute(&mut |ops| {
                result = kv.scan(ops, key, limit)?;
                Ok(())
            });
            Some(Response::Scanned {
                count: result.0,
                sum: result.1,
            })
        }
        Request::Hello { session } => {
            // Session allocation/resume is itself a persistent
            // transaction; `is_write` makes the batch fence before the
            // Welcome leaves, so an acked session id survives any crash.
            let mut granted = None;
            handle.execute(&mut |ops| {
                granted = sessions.begin(ops, session)?;
                Ok(())
            });
            Some(match granted {
                Some((sid, last_seq)) => {
                    if session == 0 {
                        counters.sessions.fetch_add(1, Ordering::Relaxed);
                    }
                    Response::Welcome {
                        session: sid,
                        last_seq,
                    }
                }
                // Refused resume: the client must start a fresh session.
                None => Response::Welcome {
                    session: 0,
                    last_seq: 0,
                },
            })
        }
        Request::Incr {
            key,
            delta,
            session,
            seq,
        } => execute_sequenced(
            sessions,
            handle,
            session,
            seq,
            group_commit,
            deferred,
            &mut |ops| {
                // Read-modify-write in the guarded transaction: exactly
                // the shape that makes a double-applied replay visible.
                let current = kv.get(ops, key)?.unwrap_or(0);
                let next = current.wrapping_add(delta);
                kv.put(ops, key, next)?;
                Ok(CachedReply::found(next))
            },
        ),
        Request::SeqPut {
            key,
            value,
            session,
            seq,
        } => execute_sequenced(
            sessions,
            handle,
            session,
            seq,
            group_commit,
            deferred,
            &mut |ops| {
                Ok(match kv.put(ops, key, value)? {
                    Some(prev) => CachedReply::found(prev),
                    None => CachedReply::missing(),
                })
            },
        ),
        Request::SeqDelete { key, session, seq } => execute_sequenced(
            sessions,
            handle,
            session,
            seq,
            group_commit,
            deferred,
            &mut |ops| {
                Ok(match kv.remove(ops, key)? {
                    Some(prev) => CachedReply::found(prev),
                    None => CachedReply::missing(),
                })
            },
        ),
        Request::Flush => {
            handle.flush_deferred();
            *deferred = false;
            Some(Response::Flushed)
        }
        // Unreachable: serve_connection answers Stats from shared state
        // before dispatching to the engine.
        Request::Stats => Some(Response::Stats {
            report: StatsReport::default(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_config_defaults() {
        let cfg = ServerConfig::loopback(0, true);
        assert_eq!(cfg.workers, 1, "worker count is clamped to at least one");
        assert!(cfg.group_commit);
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.max_inflight_batches, 0, "shedding defaults off");
        assert!(cfg.power.is_none());
        let resolved = resolve_addr(&cfg.addr).expect("loopback resolves");
        assert!(resolved.ip().is_loopback());
        let budgeted = cfg.with_inflight_budget(3);
        assert_eq!(budgeted.max_inflight_batches, 3);
    }

    #[test]
    fn stats_mean_batch_handles_empty() {
        let empty = ServerStats {
            connections: 0,
            requests: 0,
            batches: 0,
            flushes: 0,
            protocol_errors: 0,
            shed_batches: 0,
            sessions: 0,
        };
        assert_eq!(empty.mean_batch(), 0.0);
        let busy = ServerStats {
            requests: 64,
            batches: 8,
            ..empty
        };
        assert_eq!(busy.mean_batch(), 8.0);
    }
}
