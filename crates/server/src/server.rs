//! The thread-per-core TCP server over a [`ShardedKv`].
//!
//! # Architecture
//!
//! [`KvServer::start`] binds one `TcpListener` and spawns `workers`
//! accept-and-serve threads, each holding a clone of the listener (the
//! kernel load-balances `accept` across them) and one registered
//! [`TmThread`] handle. A worker serves one connection at a time, start to
//! finish; with as many connections as workers every core runs its own
//! connection — the thread-per-core shape, with no cross-thread handoff
//! per request.
//!
//! # Batches are durability windows
//!
//! A worker reads whatever bytes have arrived, decodes **every complete
//! frame** in them, and treats that run of pipelined requests as one
//! batch. Under [`ServerConfig::group_commit`] the batch's writes execute
//! via [`TmThread::execute_deferred`] and share a single
//! [`TmThread::flush_deferred`] drain barrier, issued after the last
//! request. With `group_commit` off every write drains individually
//! ([`TmThread::execute`]), which is the per-transaction baseline the
//! latency benchmark compares against.
//!
//! In both modes, a batch that contained any write ends with one
//! [`PersistentTm::persist_fence`] *before any response byte is written*.
//! The drain alone is not enough to ack: the paper's recovery is
//! prefix-consistent — it rolls back each thread's latest logged sequence
//! (and the timestamp cut can take committed-but-unpinned work of *other*
//! threads with it), so an acked write could still be undone after a
//! crash. The fence pins everything completed so far (Section 5.2's
//! on-demand persistence), making the ack mean what a client thinks it
//! means: this write survives any crash from now on. Its cost, like the
//! drain's, amortizes over the batch — the deeper clients pipeline, the
//! cheaper acknowledged durability gets per write.
//!
//! Batching is *emergent*: nothing waits to fill a window. An idle server
//! sees one-request batches and behaves like a per-request server; a
//! loaded one finds deep pipelines in its socket buffer and amortizes
//! accordingly. This is exactly the group-commit bargain measured by the
//! `kvserve` benchmark.
//!
//! # Live metrics
//!
//! Workers record every batch's service time (decode → fence) into a
//! shared [`LatencyHistogram`], one sample per request. The protocol's
//! `Stats` request ([`crate::protocol::StatsReport`]) returns those
//! percentiles plus the lifetime counters, answered from shared state
//! without touching the engine — a live, remote view of the same numbers
//! [`KvServer::stats`] exposes in-process.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crafty_common::{PersistentTm, TmThread};
use crafty_kv::ShardedKv;
use crafty_stats::LatencyHistogram;

use crate::protocol::{frame_payload_len, Request, Response, StatsReport, HEADER_LEN};

/// How a [`KvServer`] listens and persists.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 picks a free port;
    /// read the result from [`KvServer::local_addr`]).
    pub addr: String,
    /// Accept-and-serve worker threads. Each registers one engine thread,
    /// so this must not exceed the engine's configured thread limit, and
    /// the server owns tids `0..workers` while it runs.
    pub workers: usize,
    /// Whether a batch of pipelined writes shares one durability barrier
    /// (group commit) or each write drains individually before its ack.
    pub group_commit: bool,
}

impl ServerConfig {
    /// Loopback on an ephemeral port, two workers, group commit on.
    pub fn loopback(workers: usize, group_commit: bool) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: workers.max(1),
            group_commit,
        }
    }
}

/// Poll interval for noticing shutdown while blocked in `read`.
const READ_POLL: Duration = Duration::from_millis(25);

/// Monotone counters shared by all workers, plus the live service-latency
/// histogram behind the `Stats` protocol request. The histogram counts,
/// per request, the time from its batch's decode to the durability fence
/// that releases its response — the server-side component of what a client
/// observes. Workers touch the mutex once per batch, off the per-request
/// path.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    batches: AtomicU64,
    flushes: AtomicU64,
    protocol_errors: AtomicU64,
    latency: Mutex<LatencyHistogram>,
}

impl Counters {
    /// Snapshot of counters and latency percentiles as a wire-ready
    /// [`StatsReport`].
    fn report(&self) -> StatsReport {
        let lat = self
            .latency
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        StatsReport {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            latency_count: lat.count(),
            latency_mean_ns: lat.mean() as u64,
            latency_p50_ns: lat.percentile(0.5),
            latency_p99_ns: lat.percentile(0.99),
            latency_p999_ns: lat.percentile(0.999),
            latency_max_ns: lat.max(),
        }
    }
}

/// A snapshot of the server's lifetime counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests executed.
    pub requests: u64,
    /// Pipelined batches served (each at most one durability barrier).
    pub batches: u64,
    /// Durability barriers actually issued for batches containing writes.
    pub flushes: u64,
    /// Connections dropped for malformed frames.
    pub protocol_errors: u64,
}

impl ServerStats {
    /// Mean pipelined-batch depth — the amortization factor group commit
    /// achieved. `1.0` means the server never saw a pipeline.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// A running KV service front-end. Dropping without calling
/// [`KvServer::shutdown`] leaks the worker threads until process exit;
/// call `shutdown` for an orderly stop.
pub struct KvServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    workers: Vec<JoinHandle<()>>,
}

impl KvServer {
    /// Binds `cfg.addr` and starts serving `kv` through `engine`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding or cloning the listener.
    ///
    /// # Panics
    ///
    /// Worker threads panic (on their own threads) if `cfg.workers`
    /// exceeds the engine's configured thread limit.
    pub fn start(
        engine: Arc<dyn PersistentTm>,
        kv: ShardedKv,
        cfg: ServerConfig,
    ) -> std::io::Result<KvServer> {
        let listener = TcpListener::bind(&*cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for tid in 0..cfg.workers.max(1) {
            let listener = listener.try_clone()?;
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let group_commit = cfg.group_commit;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kv-worker-{tid}"))
                    .spawn(move || {
                        worker_loop(&*engine, kv, tid, &listener, &stop, &counters, group_commit)
                    })?,
            );
        }
        Ok(KvServer {
            local_addr,
            stop,
            counters,
            workers,
        })
    }

    /// The bound address — connect clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, drains the workers, and returns the final
    /// counters. In-flight batches finish (their acks stay honest);
    /// idle connections are dropped.
    pub fn shutdown(self) -> ServerStats {
        self.stop.store(true, Ordering::SeqCst);
        // Wake every worker that is blocked in accept(): one dummy
        // connection per worker, immediately dropped.
        for _ in &self.workers {
            let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        }
        for w in self.workers {
            let _ = w.join();
        }
        ServerStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for KvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Resolves an address string the way [`TcpStream::connect`] would; used
/// by tests to validate configs without binding.
pub fn resolve_addr(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing"))
}

fn worker_loop(
    engine: &dyn PersistentTm,
    kv: ShardedKv,
    tid: usize,
    listener: &TcpListener,
    stop: &AtomicBool,
    counters: &Counters,
    group_commit: bool,
) {
    let mut handle = engine.register_thread(tid);
    while !stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if stop.load(Ordering::SeqCst) {
            break; // the shutdown wake-up connection
        }
        counters.connections.fetch_add(1, Ordering::Relaxed);
        serve_connection(
            engine,
            &kv,
            handle.as_mut(),
            tid,
            stream,
            stop,
            counters,
            group_commit,
        );
    }
}

/// Serves one connection until EOF, error, or shutdown.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    engine: &dyn PersistentTm,
    kv: &ShardedKv,
    handle: &mut dyn TmThread,
    tid: usize,
    mut stream: TcpStream,
    stop: &AtomicBool,
    counters: &Counters,
    group_commit: bool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut inbox: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let mut batch: Vec<Request> = Vec::new();
    let mut outbox: Vec<u8> = Vec::with_capacity(4096);
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => inbox.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        // Decode every complete frame already buffered: the pipelined
        // batch, which is this iteration's durability window.
        batch.clear();
        let mut consumed = 0;
        loop {
            match frame_payload_len(&inbox[consumed..]) {
                Ok(Some(len)) => {
                    let payload = &inbox[consumed + HEADER_LEN..consumed + HEADER_LEN + len];
                    match Request::decode(payload) {
                        Ok(req) => batch.push(req),
                        Err(_) => {
                            counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    consumed += HEADER_LEN + len;
                }
                Ok(None) => break,
                Err(_) => {
                    counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        inbox.drain(..consumed);
        if batch.is_empty() {
            continue;
        }

        outbox.clear();
        let mut deferred = false;
        // An explicit Flush requests the fence even in a read-only batch.
        let wrote = batch
            .iter()
            .any(|r| r.is_write() || matches!(r, Request::Flush));
        let batch_start = Instant::now();
        for req in &batch {
            // Stats is answered from shared state, never from the engine:
            // polling a loaded server must not contend on its transactions.
            let response = match *req {
                Request::Stats => Response::Stats {
                    report: counters.report(),
                },
                req => execute_request(kv, handle, req, group_commit, &mut deferred),
            };
            response.encode(&mut outbox);
        }
        // The ack-after-fence rule: if any write in this batch deferred
        // its durability, issue the shared drain barrier now, and pin the
        // whole window against recovery's latest-sequence rollback — no
        // response byte leaves before every acked write survives any
        // future crash.
        if deferred {
            handle.flush_deferred();
            counters.flushes.fetch_add(1, Ordering::Relaxed);
        }
        if wrote {
            engine.persist_fence(tid);
        }
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        // Every response in the batch is released by the same fence, so
        // each request's server-side service time is the batch's: one
        // sample per request, one mutex acquisition per batch.
        let service_ns = batch_start.elapsed().as_nanos() as u64;
        {
            let mut lat = counters
                .latency
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for _ in 0..batch.len() {
                lat.record(service_ns);
            }
        }
        if stream.write_all(&outbox).is_err() {
            return;
        }
    }
}

/// Executes one request as one persistent transaction and forms its
/// response. Under group commit, writes run deferred and set `deferred`
/// so the caller fences the batch before acking.
fn execute_request(
    kv: &ShardedKv,
    handle: &mut dyn TmThread,
    req: Request,
    group_commit: bool,
    deferred: &mut bool,
) -> Response {
    match req {
        Request::Get { key } => {
            let mut got = None;
            handle.execute(&mut |ops| {
                got = kv.get(ops, key)?;
                Ok(())
            });
            match got {
                Some(value) => Response::Found { value },
                None => Response::Missing,
            }
        }
        Request::Put { key, value } => {
            let mut prev = None;
            let mut body = |ops: &mut dyn crafty_common::TxnOps| {
                prev = kv.put(ops, key, value)?;
                Ok(())
            };
            if group_commit {
                handle.execute_deferred(&mut body);
                *deferred = true;
            } else {
                handle.execute(&mut body);
            }
            match prev {
                Some(value) => Response::Found { value },
                None => Response::Missing,
            }
        }
        Request::Delete { key } => {
            let mut prev = None;
            let mut body = |ops: &mut dyn crafty_common::TxnOps| {
                prev = kv.remove(ops, key)?;
                Ok(())
            };
            if group_commit {
                handle.execute_deferred(&mut body);
                *deferred = true;
            } else {
                handle.execute(&mut body);
            }
            match prev {
                Some(value) => Response::Found { value },
                None => Response::Missing,
            }
        }
        Request::Scan { key, limit } => {
            let mut result = (0, 0);
            handle.execute(&mut |ops| {
                result = kv.scan(ops, key, limit)?;
                Ok(())
            });
            Response::Scanned {
                count: result.0,
                sum: result.1,
            }
        }
        Request::Flush => {
            handle.flush_deferred();
            *deferred = false;
            Response::Flushed
        }
        // Unreachable: serve_connection answers Stats from shared state
        // before dispatching to the engine.
        Request::Stats => Response::Stats {
            report: StatsReport::default(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_config_defaults() {
        let cfg = ServerConfig::loopback(0, true);
        assert_eq!(cfg.workers, 1, "worker count is clamped to at least one");
        assert!(cfg.group_commit);
        assert_eq!(cfg.addr, "127.0.0.1:0");
        let resolved = resolve_addr(&cfg.addr).expect("loopback resolves");
        assert!(resolved.ip().is_loopback());
    }

    #[test]
    fn stats_mean_batch_handles_empty() {
        let empty = ServerStats {
            connections: 0,
            requests: 0,
            batches: 0,
            flushes: 0,
            protocol_errors: 0,
        };
        assert_eq!(empty.mean_batch(), 0.0);
        let busy = ServerStats {
            requests: 64,
            batches: 8,
            ..empty
        };
        assert_eq!(busy.mean_batch(), 8.0);
    }
}
