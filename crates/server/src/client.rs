//! A pipelining client for the KV wire protocol.
//!
//! [`KvClient`] is a thin, blocking wrapper over one `TcpStream`: requests
//! are framed with [`Request::encode`] and flushed in a single
//! `write_all`, responses are reassembled from the byte stream and
//! correlated by order. The two halves are independent —
//! [`KvClient::send`] and [`KvClient::recv`] can run with any number of
//! requests in flight, which is what the open-loop load generator uses to
//! keep the server's socket buffer full (and its group-commit windows
//! deep). The convenience calls ([`KvClient::get`], [`KvClient::put`], …)
//! are just `send` + `recv` of depth one.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{frame_payload_len, Request, Response, StatsReport, HEADER_LEN};

/// A blocking, pipelining connection to a [`crate::server::KvServer`].
pub struct KvClient {
    stream: TcpStream,
    /// Bytes received but not yet parsed into whole frames.
    inbox: Vec<u8>,
    /// Scratch buffer for encoding outgoing frames.
    outbox: Vec<u8>,
}

impl KvClient {
    /// Connects to the server with `TCP_NODELAY` (latency measurements
    /// must not include Nagle batching delays).
    ///
    /// # Errors
    ///
    /// Any I/O error from connecting.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<KvClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(KvClient {
            stream,
            inbox: Vec::with_capacity(4096),
            outbox: Vec::with_capacity(4096),
        })
    }

    /// Clones the underlying stream so one thread can [`KvClient::send`]
    /// while another [`KvClient::recv`]s — the split the open-loop driver
    /// needs. The halves share the socket but keep independent buffers.
    ///
    /// # Errors
    ///
    /// Any I/O error from duplicating the socket handle.
    pub fn split(&self) -> std::io::Result<KvClient> {
        Ok(KvClient {
            stream: self.stream.try_clone()?,
            inbox: Vec::with_capacity(4096),
            outbox: Vec::with_capacity(4096),
        })
    }

    /// Writes a batch of requests as one contiguous run of frames. The
    /// caller owes a matching [`KvClient::recv`] of the same count.
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket write.
    pub fn send(&mut self, requests: &[Request]) -> std::io::Result<()> {
        self.outbox.clear();
        for r in requests {
            r.encode(&mut self.outbox);
        }
        self.stream.write_all(&self.outbox)
    }

    /// Reads exactly `count` responses, in request order, blocking until
    /// they arrive.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket; `UnexpectedEof` if the server closes
    /// mid-stream; `InvalidData` if a frame fails to parse.
    pub fn recv(&mut self, count: usize) -> std::io::Result<Vec<Response>> {
        let mut responses = Vec::with_capacity(count);
        let mut chunk = [0u8; 4096];
        loop {
            // Drain every complete frame already buffered.
            let mut consumed = 0;
            while responses.len() < count {
                match frame_payload_len(&self.inbox[consumed..]) {
                    Ok(Some(len)) => {
                        let payload =
                            &self.inbox[consumed + HEADER_LEN..consumed + HEADER_LEN + len];
                        let resp = Response::decode(payload).map_err(|e| {
                            std::io::Error::new(ErrorKind::InvalidData, e.to_string())
                        })?;
                        responses.push(resp);
                        consumed += HEADER_LEN + len;
                    }
                    Ok(None) => break,
                    Err(e) => {
                        return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()))
                    }
                }
            }
            self.inbox.drain(..consumed);
            if responses.len() == count {
                return Ok(responses);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed with responses outstanding",
                    ))
                }
                Ok(n) => self.inbox.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// One request, one response.
    ///
    /// # Errors
    ///
    /// As [`KvClient::send`] and [`KvClient::recv`].
    pub fn call(&mut self, request: Request) -> std::io::Result<Response> {
        self.send(std::slice::from_ref(&request))?;
        let mut responses = self.recv(1)?;
        Ok(responses.remove(0))
    }

    fn expect_value(resp: Response) -> std::io::Result<Option<u64>> {
        match resp {
            Response::Found { value } => Ok(Some(value)),
            Response::Missing => Ok(None),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected response {other:?}"),
            )),
        }
    }

    /// Reads `key`; `None` if absent.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus `InvalidData` on a mismatched response.
    pub fn get(&mut self, key: u64) -> std::io::Result<Option<u64>> {
        Self::expect_value(self.call(Request::Get { key })?)
    }

    /// Durably writes `key = value`; returns the previous value. When
    /// this returns, the write has passed the server's durability fence.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus `InvalidData` on a mismatched response.
    pub fn put(&mut self, key: u64, value: u64) -> std::io::Result<Option<u64>> {
        Self::expect_value(self.call(Request::Put { key, value })?)
    }

    /// Durably removes `key`; returns the removed value.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus `InvalidData` on a mismatched response.
    pub fn delete(&mut self, key: u64) -> std::io::Result<Option<u64>> {
        Self::expect_value(self.call(Request::Delete { key })?)
    }

    /// Scans up to `limit` entries from `key`'s probe position; returns
    /// `(count, value_sum)`.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus `InvalidData` on a mismatched response.
    pub fn scan(&mut self, key: u64, limit: u64) -> std::io::Result<(u64, u64)> {
        match self.call(Request::Scan { key, limit })? {
            Response::Scanned { count, sum } => Ok((count, sum)),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected response {other:?}"),
            )),
        }
    }

    /// Reads the server's live counters and service-latency percentiles.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus `InvalidData` on a mismatched response.
    pub fn stats(&mut self) -> std::io::Result<StatsReport> {
        match self.call(Request::Stats)? {
            Response::Stats { report } => Ok(report),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected response {other:?}"),
            )),
        }
    }

    /// Forces a durability fence for everything previously accepted on
    /// this connection.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus `InvalidData` on a mismatched response.
    pub fn flush(&mut self) -> std::io::Result<()> {
        match self.call(Request::Flush)? {
            Response::Flushed => Ok(()),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected response {other:?}"),
            )),
        }
    }
}

impl std::fmt::Debug for KvClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvClient")
            .field("peer", &self.stream.peer_addr().ok())
            .field("buffered", &self.inbox.len())
            .finish()
    }
}
