//! A pipelining client for the KV wire protocol.
//!
//! [`KvClient`] is a thin, blocking wrapper over one stream: requests are
//! framed with [`Request::encode`] and flushed in a single `write_all`,
//! responses are reassembled from the byte stream and correlated by order.
//! The two halves are independent — [`KvClient::send`] and
//! [`KvClient::recv`] can run with any number of requests in flight, which
//! is what the open-loop load generator uses to keep the server's socket
//! buffer full (and its group-commit windows deep). The convenience calls
//! ([`KvClient::get`], [`KvClient::put`], …) are just `send` + `recv` of
//! depth one.
//!
//! The client is generic over [`NetStream`] — normally a plain
//! [`TcpStream`], but the torture harness substitutes a seeded
//! [`crate::FaultyStream`] to exercise partial frames, stalls, and
//! mid-frame disconnects without touching this code.
//!
//! Failures are *typed* ([`ClientError`]) so retry layers can tell a
//! [`ClientError::Timeout`] (server may or may not have applied the batch;
//! replay it under session dedup) from a [`ClientError::Desync`] (the
//! stream is garbage; reconnecting is the only option) from a
//! [`ClientError::Busy`] (the server shed the batch untouched; back off
//! and resend). [`ClientError::is_retryable`] encodes that split.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    frame_payload_len, ProtocolError, Request, Response, StatsReport, HEADER_LEN,
};

/// Why a client call failed, split along the lines a retry layer cares
/// about. See [`ClientError::is_retryable`].
#[derive(Debug)]
pub enum ClientError {
    /// A configured read/write deadline elapsed. The server may or may
    /// not have applied the in-flight batch — safe to replay only under
    /// session dedup.
    Timeout,
    /// The connection is gone (EOF, reset, broken pipe). Same ambiguity
    /// as [`ClientError::Timeout`]; reconnect and replay.
    Disconnected,
    /// The response byte stream failed to parse. The connection is
    /// unusable; only a reconnect recovers.
    Desync(ProtocolError),
    /// The server shed the batch under overload: nothing was applied or
    /// recorded. Back off and resend the identical batch.
    Busy,
    /// The server answered with a response the call did not expect
    /// (protocol misuse or version skew). Not retryable.
    Unexpected(String),
    /// Any other I/O error.
    Io(std::io::Error),
}

impl ClientError {
    /// True when retrying (after reconnect/backoff as appropriate) can
    /// succeed and — for sequenced writes under session dedup — cannot
    /// double-apply.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Timeout | ClientError::Disconnected | ClientError::Busy
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout => write!(f, "request timed out"),
            ClientError::Disconnected => write!(f, "connection closed"),
            ClientError::Desync(e) => write!(f, "response stream desynced: {e}"),
            ClientError::Busy => write!(f, "server shed the batch (busy)"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            ErrorKind::TimedOut | ErrorKind::WouldBlock => ClientError::Timeout,
            ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe => ClientError::Disconnected,
            _ => ClientError::Io(e),
        }
    }
}

/// The stream surface [`KvClient`] needs from its transport: blocking
/// byte I/O plus the socket knobs the client tunes. [`TcpStream`]
/// implements it directly; [`crate::FaultyStream`] wraps one to inject
/// deterministic network faults underneath an unmodified client.
pub trait NetStream: Read + Write + Send + std::fmt::Debug + Sized {
    /// Duplicates the handle so send and receive halves can live on
    /// different threads.
    ///
    /// # Errors
    ///
    /// Any I/O error from duplicating the handle.
    fn try_clone(&self) -> std::io::Result<Self>;

    /// Bounds every blocking read; `None` blocks forever.
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket option.
    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()>;

    /// Bounds every blocking write; `None` blocks forever.
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket option.
    fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()>;

    /// Disables (or re-enables) Nagle batching.
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket option.
    fn set_nodelay(&self, on: bool) -> std::io::Result<()>;
}

impl NetStream for TcpStream {
    fn try_clone(&self) -> std::io::Result<Self> {
        TcpStream::try_clone(self)
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_write_timeout(self, dur)
    }

    fn set_nodelay(&self, on: bool) -> std::io::Result<()> {
        TcpStream::set_nodelay(self, on)
    }
}

/// A blocking, pipelining connection to a [`crate::server::KvServer`].
pub struct KvClient<S: NetStream = TcpStream> {
    stream: S,
    /// Bytes received but not yet parsed into whole frames.
    inbox: Vec<u8>,
    /// Scratch buffer for encoding outgoing frames.
    outbox: Vec<u8>,
}

impl KvClient<TcpStream> {
    /// Connects to the server with `TCP_NODELAY` (latency measurements
    /// must not include Nagle batching delays). No read timeout is set —
    /// open-loop load generators legitimately block long on scheduled
    /// pipelines; resilient callers opt in via
    /// [`KvClient::set_read_timeout`].
    ///
    /// # Errors
    ///
    /// Any I/O error from connecting.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<KvClient> {
        KvClient::from_stream(TcpStream::connect(addr)?)
    }
}

impl<S: NetStream> KvClient<S> {
    /// Wraps an already-established stream (sets `TCP_NODELAY`). This is
    /// how fault-injected or otherwise pre-configured transports enter.
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket option.
    pub fn from_stream(stream: S) -> std::io::Result<KvClient<S>> {
        stream.set_nodelay(true)?;
        Ok(KvClient {
            stream,
            inbox: Vec::with_capacity(4096),
            outbox: Vec::with_capacity(4096),
        })
    }

    /// Bounds every blocking receive: once set, a stalled server surfaces
    /// as [`ClientError::Timeout`] instead of hanging forever. `None`
    /// restores unbounded blocking.
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket option.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    /// Bounds every blocking send, mirroring
    /// [`KvClient::set_read_timeout`].
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket option.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_write_timeout(dur)
    }

    /// Clones the underlying stream so one thread can [`KvClient::send`]
    /// while another [`KvClient::recv`]s — the split the open-loop driver
    /// needs. The halves share the socket but keep independent buffers.
    ///
    /// # Errors
    ///
    /// Any I/O error from duplicating the socket handle.
    pub fn split(&self) -> std::io::Result<KvClient<S>> {
        Ok(KvClient {
            stream: self.stream.try_clone()?,
            inbox: Vec::with_capacity(4096),
            outbox: Vec::with_capacity(4096),
        })
    }

    /// Writes a batch of requests as one contiguous run of frames. The
    /// caller owes a matching [`KvClient::recv`] of the same count.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] / [`ClientError::Disconnected`] /
    /// [`ClientError::Io`] from the socket write.
    pub fn send(&mut self, requests: &[Request]) -> Result<(), ClientError> {
        self.outbox.clear();
        for r in requests {
            r.encode(&mut self.outbox);
        }
        self.stream.write_all(&self.outbox)?;
        Ok(())
    }

    /// Reads exactly `count` responses, in request order, blocking until
    /// they arrive (or the configured read timeout elapses).
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when a read deadline elapses;
    /// [`ClientError::Disconnected`] if the server closes mid-stream;
    /// [`ClientError::Desync`] if a frame fails to parse;
    /// [`ClientError::Io`] for anything else.
    pub fn recv(&mut self, count: usize) -> Result<Vec<Response>, ClientError> {
        let mut responses = Vec::with_capacity(count);
        let mut chunk = [0u8; 4096];
        loop {
            // Drain every complete frame already buffered.
            let mut consumed = 0;
            while responses.len() < count {
                match frame_payload_len(&self.inbox[consumed..]) {
                    Ok(Some(len)) => {
                        let payload =
                            &self.inbox[consumed + HEADER_LEN..consumed + HEADER_LEN + len];
                        let resp = Response::decode(payload).map_err(ClientError::Desync)?;
                        responses.push(resp);
                        consumed += HEADER_LEN + len;
                    }
                    Ok(None) => break,
                    Err(e) => return Err(ClientError::Desync(e)),
                }
            }
            self.inbox.drain(..consumed);
            if responses.len() == count {
                return Ok(responses);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => self.inbox.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// One request, one response.
    ///
    /// # Errors
    ///
    /// As [`KvClient::send`] and [`KvClient::recv`].
    pub fn call(&mut self, request: Request) -> Result<Response, ClientError> {
        self.send(std::slice::from_ref(&request))?;
        let mut responses = self.recv(1)?;
        Ok(responses.remove(0))
    }

    fn expect_value(resp: Response) -> Result<Option<u64>, ClientError> {
        match resp {
            Response::Found { value } => Ok(Some(value)),
            Response::Missing => Ok(None),
            Response::Busy => Err(ClientError::Busy),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Performs the session handshake. `session == 0` asks for a fresh
    /// session; nonzero asks to resume one. Returns the server's
    /// `(session, last_seq)` — `session == 0` in the reply means the
    /// resume was refused (unknown or reclaimed session) and the caller
    /// must start over with a fresh session and a full state rebuild.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus [`ClientError::Unexpected`] on a
    /// non-`Welcome` response.
    pub fn hello(&mut self, session: u64) -> Result<(u64, u64), ClientError> {
        match self.call(Request::Hello { session })? {
            Response::Welcome { session, last_seq } => Ok((session, last_seq)),
            Response::Busy => Err(ClientError::Busy),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Reads `key`; `None` if absent.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus [`ClientError::Unexpected`] on a
    /// mismatched response.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, ClientError> {
        Self::expect_value(self.call(Request::Get { key })?)
    }

    /// Durably writes `key = value`; returns the previous value. When
    /// this returns, the write has passed the server's durability fence.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus [`ClientError::Unexpected`] on a
    /// mismatched response.
    pub fn put(&mut self, key: u64, value: u64) -> Result<Option<u64>, ClientError> {
        Self::expect_value(self.call(Request::Put { key, value })?)
    }

    /// Durably removes `key`; returns the removed value.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus [`ClientError::Unexpected`] on a
    /// mismatched response.
    pub fn delete(&mut self, key: u64) -> Result<Option<u64>, ClientError> {
        Self::expect_value(self.call(Request::Delete { key })?)
    }

    /// Scans up to `limit` entries from `key`'s probe position; returns
    /// `(count, value_sum)`.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus [`ClientError::Unexpected`] on a
    /// mismatched response.
    pub fn scan(&mut self, key: u64, limit: u64) -> Result<(u64, u64), ClientError> {
        match self.call(Request::Scan { key, limit })? {
            Response::Scanned { count, sum } => Ok((count, sum)),
            Response::Busy => Err(ClientError::Busy),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Reads the server's live counters and service-latency percentiles.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus [`ClientError::Unexpected`] on a
    /// mismatched response.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.call(Request::Stats)? {
            Response::Stats { report } => Ok(report),
            Response::Busy => Err(ClientError::Busy),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Forces a durability fence for everything previously accepted on
    /// this connection.
    ///
    /// # Errors
    ///
    /// As [`KvClient::call`], plus [`ClientError::Unexpected`] on a
    /// mismatched response.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        match self.call(Request::Flush)? {
            Response::Flushed => Ok(()),
            Response::Busy => Err(ClientError::Busy),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

impl<S: NetStream> std::fmt::Debug for KvClient<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvClient")
            .field("stream", &self.stream)
            .field("buffered", &self.inbox.len())
            .finish()
    }
}
