//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by the payload. A payload is an opcode byte followed by the
//! operation's fixed-width little-endian `u64` fields, so a frame's legal
//! length is fully determined by its opcode and a decoder can reject a
//! malformed or hostile frame without buffering more than
//! [`MAX_PAYLOAD`] bytes.
//!
//! Requests and responses travel the same framing. Responses carry no
//! request identifier: a connection is a pipe, the server answers frames
//! strictly in arrival order, and a pipelining client correlates the
//! `k`-th response with the `k`-th outstanding request — the same
//! discipline as Redis' RESP pipeline.
//!
//! Durability contract: a [`Response`] to a mutating request is sent only
//! after the write's durability fence. Under the server's group-commit
//! window the fence covers the whole pipelined batch, so one drain
//! amortizes across every write the batch contained (see
//! [`crate::server`]).

/// Largest legal payload: the biggest message is the stats reply — an
/// opcode plus thirteen `u64` fields. A length prefix above this is a
/// protocol violation, not a request to buffer 4 GiB.
pub const MAX_PAYLOAD: usize = 105;

/// Bytes of the length prefix.
pub const HEADER_LEN: usize = 4;

// Request opcodes.
const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_DELETE: u8 = 0x03;
const OP_SCAN: u8 = 0x04;
const OP_FLUSH: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const OP_HELLO: u8 = 0x07;
const OP_INCR: u8 = 0x08;
const OP_SEQ_PUT: u8 = 0x09;
const OP_SEQ_DELETE: u8 = 0x0A;

// Response opcodes (high bit set, so a stream desynchronization that
// feeds a response to the request decoder is caught immediately).
const OP_FOUND: u8 = 0x81;
const OP_MISSING: u8 = 0x82;
const OP_SCANNED: u8 = 0x83;
const OP_FLUSHED: u8 = 0x84;
const OP_STATS_REPLY: u8 = 0x85;
const OP_WELCOME: u8 = 0x86;
const OP_BUSY: u8 = 0x87;

/// A client request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Request {
    /// Read `key`'s current value.
    Get {
        /// Key to read.
        key: u64,
    },
    /// Durably set `key` to `value`; the response reports the previous
    /// value and is the durability ack.
    Put {
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Durably remove `key`; the response reports the removed value and is
    /// the durability ack.
    Delete {
        /// Key to remove.
        key: u64,
    },
    /// Scan up to `limit` live entries starting at `key`'s probe position;
    /// the response carries the count and value-sum observed.
    Scan {
        /// Scan origin.
        key: u64,
        /// Maximum entries to visit.
        limit: u64,
    },
    /// Force a durability fence now, regardless of batching. The response
    /// acks that everything previously accepted on this connection is
    /// durable.
    Flush,
    /// Read the server's live counters and latency percentiles. Answered
    /// from the serving worker's shared state without touching the engine,
    /// so it is safe to poll a loaded server.
    Stats,
    /// Session handshake. `session = 0` asks the server to allocate a
    /// fresh session in its persistent session table; a nonzero value
    /// resumes an existing session after a reconnect (or a server
    /// restart), and the [`Response::Welcome`] reply reports the last
    /// sequence number the table has applied — the client's replay point.
    Hello {
        /// Session to resume, or 0 to allocate.
        session: u64,
    },
    /// Durably add `delta` to `key`'s value (missing keys count from 0),
    /// exactly once: the session table dedups replays by `(session, seq)`.
    /// Deliberately non-idempotent at the store level — the operation the
    /// torture suite uses to make a double-apply visible instead of
    /// masked. Responds [`Response::Found`] with the post-increment value.
    Incr {
        /// Key to increment.
        key: u64,
        /// Amount to add (wrapping).
        delta: u64,
        /// Owning session id from the [`Request::Hello`] handshake.
        session: u64,
        /// Per-session sequence number, starting at 1.
        seq: u64,
    },
    /// A [`Request::Put`] guarded by the session table: replays of an
    /// already-applied `(session, seq)` return the cached response instead
    /// of re-executing.
    SeqPut {
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
        /// Owning session id.
        session: u64,
        /// Per-session sequence number, starting at 1.
        seq: u64,
    },
    /// A [`Request::Delete`] guarded by the session table, like
    /// [`Request::SeqPut`].
    SeqDelete {
        /// Key to remove.
        key: u64,
        /// Owning session id.
        session: u64,
        /// Per-session sequence number, starting at 1.
        seq: u64,
    },
}

/// The live-metrics payload of a [`Response::Stats`]: the server's
/// lifetime counters plus a percentile summary of its per-batch service
/// latency histogram. All durations are nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StatsReport {
    /// Connections accepted.
    pub connections: u64,
    /// Requests executed.
    pub requests: u64,
    /// Pipelined batches served (each at most one durability barrier).
    pub batches: u64,
    /// Durability barriers issued for batches containing writes.
    pub flushes: u64,
    /// Connections dropped for malformed frames.
    pub protocol_errors: u64,
    /// Latency samples recorded (one per request served).
    pub latency_count: u64,
    /// Mean service latency, rounded to whole nanoseconds.
    pub latency_mean_ns: u64,
    /// Median service latency.
    pub latency_p50_ns: u64,
    /// 99th-percentile service latency.
    pub latency_p99_ns: u64,
    /// 99.9th-percentile service latency.
    pub latency_p999_ns: u64,
    /// Exact maximum service latency.
    pub latency_max_ns: u64,
    /// Batches answered `BUSY` by the overload shedder without touching
    /// the engine. Nonzero means the in-flight budget was hit; the
    /// committed latency baselines are only meaningful when this is 0.
    pub shed_batches: u64,
    /// Sessions allocated by `Hello` handshakes over this server's life.
    pub sessions: u64,
}

impl StatsReport {
    /// Field order on the wire (and count: thirteen `u64`s).
    fn fields(&self) -> [u64; 13] {
        [
            self.connections,
            self.requests,
            self.batches,
            self.flushes,
            self.protocol_errors,
            self.latency_count,
            self.latency_mean_ns,
            self.latency_p50_ns,
            self.latency_p99_ns,
            self.latency_p999_ns,
            self.latency_max_ns,
            self.shed_batches,
            self.sessions,
        ]
    }

    fn from_payload(payload: &[u8]) -> StatsReport {
        let f = |i: usize| read_u64(payload, 1 + 8 * i);
        StatsReport {
            connections: f(0),
            requests: f(1),
            batches: f(2),
            flushes: f(3),
            protocol_errors: f(4),
            latency_count: f(5),
            latency_mean_ns: f(6),
            latency_p50_ns: f(7),
            latency_p99_ns: f(8),
            latency_p999_ns: f(9),
            latency_max_ns: f(10),
            shed_batches: f(11),
            sessions: f(12),
        }
    }
}

/// A server response. Responses are answered in request order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Response {
    /// The key was present; carries the (previous, for mutations) value.
    Found {
        /// The value read, replaced, or removed.
        value: u64,
    },
    /// The key was absent (for `Get`) or newly inserted (for `Put`).
    Missing,
    /// Result of a `Scan`.
    Scanned {
        /// Live entries visited.
        count: u64,
        /// Sum of the visited values (a checksum the client can verify).
        sum: u64,
    },
    /// Ack of a `Flush` fence.
    Flushed,
    /// Reply to a `Stats` request.
    Stats {
        /// The live counters and latency percentiles.
        report: StatsReport,
    },
    /// Reply to a [`Request::Hello`]. `session = 0` means the requested
    /// resume was refused (the session was never allocated, or its table
    /// slot has been reclaimed); a client must not replay into a refused
    /// session. The allocation itself is fenced before this reply is sent,
    /// so an acknowledged session survives a server crash-restart.
    Welcome {
        /// The allocated or resumed session id (0 = refused).
        session: u64,
        /// The highest sequence number the session table has applied —
        /// everything at or below it is durably done and must not be
        /// re-sent as new work (replays of it get cached responses).
        last_seq: u64,
    },
    /// The server's in-flight-batch budget is exhausted: the whole batch
    /// was shed without executing anything. Nothing was applied and
    /// nothing was recorded in the session table — retry the identical
    /// batch after backing off.
    Busy,
}

/// A malformed frame or payload. Any of these on a connection is fatal to
/// that connection: framing has lost sync and nothing later can be
/// trusted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolError {
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// The length prefix was zero (every message has at least an opcode).
    Empty,
    /// The opcode byte is not a known message.
    UnknownOp {
        /// The offending opcode.
        op: u8,
    },
    /// The payload length does not match the opcode's fixed layout.
    BadLength {
        /// The offending opcode.
        op: u8,
        /// The payload length received.
        len: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Oversized { len } => {
                write!(
                    f,
                    "frame length {len} exceeds the {MAX_PAYLOAD}-byte maximum"
                )
            }
            ProtocolError::Empty => write!(f, "empty frame"),
            ProtocolError::UnknownOp { op } => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::BadLength { op, len } => {
                write!(f, "payload length {len} is illegal for opcode {op:#04x}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

fn read_u64(payload: &[u8], at: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&payload[at..at + 8]);
    u64::from_le_bytes(bytes)
}

/// Appends one frame (`op` byte plus `fields` in order) to `out`.
fn encode_frame(out: &mut Vec<u8>, op: u8, fields: &[u64]) {
    let len = 1 + 8 * fields.len();
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(op);
    for f in fields {
        out.extend_from_slice(&f.to_le_bytes());
    }
}

/// Checks a length prefix and returns the payload length, if the buffer
/// already holds the complete frame. `Ok(None)` means "incomplete — read
/// more bytes"; a hostile prefix errors without waiting for the payload.
pub fn frame_payload_len(buf: &[u8]) -> Result<Option<usize>, ProtocolError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len == 0 {
        return Err(ProtocolError::Empty);
    }
    if len as usize > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized { len });
    }
    if buf.len() < HEADER_LEN + len as usize {
        return Ok(None);
    }
    Ok(Some(len as usize))
}

impl Request {
    /// Appends the framed request to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Request::Get { key } => encode_frame(out, OP_GET, &[key]),
            Request::Put { key, value } => encode_frame(out, OP_PUT, &[key, value]),
            Request::Delete { key } => encode_frame(out, OP_DELETE, &[key]),
            Request::Scan { key, limit } => encode_frame(out, OP_SCAN, &[key, limit]),
            Request::Flush => encode_frame(out, OP_FLUSH, &[]),
            Request::Stats => encode_frame(out, OP_STATS, &[]),
            Request::Hello { session } => encode_frame(out, OP_HELLO, &[session]),
            Request::Incr {
                key,
                delta,
                session,
                seq,
            } => encode_frame(out, OP_INCR, &[key, delta, session, seq]),
            Request::SeqPut {
                key,
                value,
                session,
                seq,
            } => encode_frame(out, OP_SEQ_PUT, &[key, value, session, seq]),
            Request::SeqDelete { key, session, seq } => {
                encode_frame(out, OP_SEQ_DELETE, &[key, session, seq])
            }
        }
    }

    /// Whether this request mutates the store (and therefore owes the
    /// client a durability ack). `Hello` counts: a fresh session
    /// allocation writes the persistent session table and must be fenced
    /// before its `Welcome`.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::Put { .. }
                | Request::Delete { .. }
                | Request::Hello { .. }
                | Request::Incr { .. }
                | Request::SeqPut { .. }
                | Request::SeqDelete { .. }
        )
    }

    /// The `(session, seq)` pair of a sequenced (dedup-guarded) request.
    pub fn sequence(&self) -> Option<(u64, u64)> {
        match *self {
            Request::Incr { session, seq, .. }
            | Request::SeqPut { session, seq, .. }
            | Request::SeqDelete { session, seq, .. } => Some((session, seq)),
            _ => None,
        }
    }

    /// Decodes a request from a complete frame payload (opcode byte
    /// included, length prefix already stripped).
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let op = *payload.first().ok_or(ProtocolError::Empty)?;
        let body = payload.len() - 1;
        let expect = |fields: usize| -> Result<(), ProtocolError> {
            if body == 8 * fields {
                Ok(())
            } else {
                Err(ProtocolError::BadLength {
                    op,
                    len: payload.len(),
                })
            }
        };
        match op {
            OP_GET => {
                expect(1)?;
                Ok(Request::Get {
                    key: read_u64(payload, 1),
                })
            }
            OP_PUT => {
                expect(2)?;
                Ok(Request::Put {
                    key: read_u64(payload, 1),
                    value: read_u64(payload, 9),
                })
            }
            OP_DELETE => {
                expect(1)?;
                Ok(Request::Delete {
                    key: read_u64(payload, 1),
                })
            }
            OP_SCAN => {
                expect(2)?;
                Ok(Request::Scan {
                    key: read_u64(payload, 1),
                    limit: read_u64(payload, 9),
                })
            }
            OP_FLUSH => {
                expect(0)?;
                Ok(Request::Flush)
            }
            OP_STATS => {
                expect(0)?;
                Ok(Request::Stats)
            }
            OP_HELLO => {
                expect(1)?;
                Ok(Request::Hello {
                    session: read_u64(payload, 1),
                })
            }
            OP_INCR => {
                expect(4)?;
                Ok(Request::Incr {
                    key: read_u64(payload, 1),
                    delta: read_u64(payload, 9),
                    session: read_u64(payload, 17),
                    seq: read_u64(payload, 25),
                })
            }
            OP_SEQ_PUT => {
                expect(4)?;
                Ok(Request::SeqPut {
                    key: read_u64(payload, 1),
                    value: read_u64(payload, 9),
                    session: read_u64(payload, 17),
                    seq: read_u64(payload, 25),
                })
            }
            OP_SEQ_DELETE => {
                expect(3)?;
                Ok(Request::SeqDelete {
                    key: read_u64(payload, 1),
                    session: read_u64(payload, 9),
                    seq: read_u64(payload, 17),
                })
            }
            op => Err(ProtocolError::UnknownOp { op }),
        }
    }
}

impl Response {
    /// Appends the framed response to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Response::Found { value } => encode_frame(out, OP_FOUND, &[value]),
            Response::Missing => encode_frame(out, OP_MISSING, &[]),
            Response::Scanned { count, sum } => encode_frame(out, OP_SCANNED, &[count, sum]),
            Response::Flushed => encode_frame(out, OP_FLUSHED, &[]),
            Response::Stats { report } => encode_frame(out, OP_STATS_REPLY, &report.fields()),
            Response::Welcome { session, last_seq } => {
                encode_frame(out, OP_WELCOME, &[session, last_seq])
            }
            Response::Busy => encode_frame(out, OP_BUSY, &[]),
        }
    }

    /// Decodes a response from a complete frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let op = *payload.first().ok_or(ProtocolError::Empty)?;
        let body = payload.len() - 1;
        let expect = |fields: usize| -> Result<(), ProtocolError> {
            if body == 8 * fields {
                Ok(())
            } else {
                Err(ProtocolError::BadLength {
                    op,
                    len: payload.len(),
                })
            }
        };
        match op {
            OP_FOUND => {
                expect(1)?;
                Ok(Response::Found {
                    value: read_u64(payload, 1),
                })
            }
            OP_MISSING => {
                expect(0)?;
                Ok(Response::Missing)
            }
            OP_SCANNED => {
                expect(2)?;
                Ok(Response::Scanned {
                    count: read_u64(payload, 1),
                    sum: read_u64(payload, 9),
                })
            }
            OP_FLUSHED => {
                expect(0)?;
                Ok(Response::Flushed)
            }
            OP_STATS_REPLY => {
                expect(13)?;
                Ok(Response::Stats {
                    report: StatsReport::from_payload(payload),
                })
            }
            OP_WELCOME => {
                expect(2)?;
                Ok(Response::Welcome {
                    session: read_u64(payload, 1),
                    last_seq: read_u64(payload, 9),
                })
            }
            OP_BUSY => {
                expect(0)?;
                Ok(Response::Busy)
            }
            op => Err(ProtocolError::UnknownOp { op }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Get { key: 0 },
            Request::Get { key: u64::MAX },
            Request::Put {
                key: 7,
                value: 0xDEAD_BEEF,
            },
            Request::Delete { key: 42 },
            Request::Scan { key: 9, limit: 16 },
            Request::Flush,
            Request::Stats,
            Request::Hello { session: 0 },
            Request::Hello { session: 17 },
            Request::Incr {
                key: 3,
                delta: 11,
                session: 17,
                seq: 1,
            },
            Request::SeqPut {
                key: 4,
                value: 44,
                session: 17,
                seq: 2,
            },
            Request::SeqDelete {
                key: 4,
                session: 17,
                seq: u64::MAX,
            },
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Found { value: 0 },
            Response::Found { value: u64::MAX },
            Response::Missing,
            Response::Scanned {
                count: 3,
                sum: 1_000_000,
            },
            Response::Flushed,
            Response::Stats {
                report: StatsReport {
                    connections: 1,
                    requests: 1000,
                    batches: 40,
                    flushes: 39,
                    protocol_errors: 0,
                    latency_count: 1000,
                    latency_mean_ns: 52_000,
                    latency_p50_ns: 48_000,
                    latency_p99_ns: 420_000,
                    latency_p999_ns: 1_300_000,
                    latency_max_ns: u64::MAX,
                    shed_batches: 2,
                    sessions: 5,
                },
            },
            Response::Welcome {
                session: 9,
                last_seq: 41,
            },
            Response::Busy,
        ]
    }

    #[test]
    fn requests_round_trip_through_frames() {
        for req in all_requests() {
            let mut wire = Vec::new();
            req.encode(&mut wire);
            let len = frame_payload_len(&wire).expect("valid").expect("complete");
            assert_eq!(wire.len(), HEADER_LEN + len);
            assert_eq!(Request::decode(&wire[HEADER_LEN..]).expect("decode"), req);
        }
    }

    #[test]
    fn responses_round_trip_through_frames() {
        for resp in all_responses() {
            let mut wire = Vec::new();
            resp.encode(&mut wire);
            let len = frame_payload_len(&wire).expect("valid").expect("complete");
            assert_eq!(wire.len(), HEADER_LEN + len);
            assert_eq!(Response::decode(&wire[HEADER_LEN..]).expect("decode"), resp);
        }
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let reqs = all_requests();
        let mut wire = Vec::new();
        for r in &reqs {
            r.encode(&mut wire);
        }
        let mut at = 0;
        let mut decoded = Vec::new();
        while at < wire.len() {
            let len = frame_payload_len(&wire[at..])
                .expect("valid")
                .expect("complete");
            decoded.push(Request::decode(&wire[at + HEADER_LEN..at + HEADER_LEN + len]).unwrap());
            at += HEADER_LEN + len;
        }
        assert_eq!(decoded, reqs);
    }

    #[test]
    fn truncated_frames_wait_for_more_bytes() {
        let mut wire = Vec::new();
        Request::Put { key: 1, value: 2 }.encode(&mut wire);
        for cut in 0..wire.len() {
            assert_eq!(
                frame_payload_len(&wire[..cut]),
                Ok(None),
                "cut at {cut} must read as incomplete"
            );
        }
        assert!(frame_payload_len(&wire).unwrap().is_some());
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_without_buffering() {
        // 4 GiB-ish claimed length: rejected from the prefix alone.
        let huge = u32::MAX.to_le_bytes();
        assert_eq!(
            frame_payload_len(&huge),
            Err(ProtocolError::Oversized { len: u32::MAX })
        );
        let zero = 0u32.to_le_bytes();
        assert_eq!(frame_payload_len(&zero), Err(ProtocolError::Empty));
        // Just above the maximum is rejected too.
        let over = ((MAX_PAYLOAD + 1) as u32).to_le_bytes();
        assert!(matches!(
            frame_payload_len(&over),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn garbage_payloads_are_rejected() {
        // Unknown opcode.
        assert_eq!(
            Request::decode(&[0x7F, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(ProtocolError::UnknownOp { op: 0x7F })
        );
        // A response opcode fed to the request decoder (desync detection).
        assert!(matches!(
            Request::decode(&[OP_FOUND, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(ProtocolError::UnknownOp { .. })
        ));
        // Right opcode, wrong body length.
        assert_eq!(
            Request::decode(&[OP_PUT, 1, 2, 3]),
            Err(ProtocolError::BadLength { op: OP_PUT, len: 4 })
        );
        assert_eq!(
            Request::decode(&[OP_FLUSH, 9]),
            Err(ProtocolError::BadLength {
                op: OP_FLUSH,
                len: 2
            })
        );
        assert_eq!(Request::decode(&[]), Err(ProtocolError::Empty));
        assert!(matches!(
            Response::decode(&[OP_GET, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(ProtocolError::UnknownOp { .. })
        ));
        // The stats reply opcode fed back to the request decoder is caught
        // by its high bit, like every other response (desync detection).
        assert_eq!(
            Request::decode(&[OP_STATS_REPLY; 105]),
            Err(ProtocolError::UnknownOp { op: OP_STATS_REPLY })
        );
        // A stats request smuggling a body is a framing violation: its
        // legal length is opcode-determined, exactly like Flush.
        assert_eq!(
            Request::decode(&[OP_STATS, 1, 2, 3, 4, 5, 6, 7, 8]),
            Err(ProtocolError::BadLength {
                op: OP_STATS,
                len: 9
            })
        );
        // A truncated stats reply (twelve fields instead of thirteen).
        assert_eq!(
            Response::decode(&[OP_STATS_REPLY; 97]),
            Err(ProtocolError::BadLength {
                op: OP_STATS_REPLY,
                len: 97
            })
        );
        // A sequenced put missing its (session, seq) tail is malformed,
        // not silently treated as unsequenced.
        assert_eq!(
            Request::decode(&[OP_SEQ_PUT; 17]),
            Err(ProtocolError::BadLength {
                op: OP_SEQ_PUT,
                len: 17
            })
        );
    }

    #[test]
    fn sequenced_requests_expose_their_session_and_seq() {
        assert_eq!(
            Request::Incr {
                key: 1,
                delta: 2,
                session: 3,
                seq: 4
            }
            .sequence(),
            Some((3, 4))
        );
        assert_eq!(Request::Get { key: 1 }.sequence(), None);
        assert_eq!(Request::Hello { session: 3 }.sequence(), None);
        assert!(Request::Hello { session: 0 }.is_write());
        assert!(Request::Incr {
            key: 0,
            delta: 1,
            session: 1,
            seq: 1
        }
        .is_write());
        assert!(!Request::Stats.is_write());
    }

    #[test]
    fn errors_render_a_description() {
        for e in [
            ProtocolError::Oversized { len: 99 },
            ProtocolError::Empty,
            ProtocolError::UnknownOp { op: 0x33 },
            ProtocolError::BadLength { op: OP_GET, len: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
