//! Configuration of the simulated hardware transactional memory.

/// Tuning knobs for the simulated RTM implementation.
///
/// The defaults approximate Intel TSX on the Skylake machine used in the
/// paper: transactional writes are bounded by the L1 data cache (32 KiB =
/// 512 lines) and reads by a much larger tracking structure; transactions
/// can also abort for reasons unrelated to the program ("zero" aborts:
/// interrupts, page faults), which the simulator injects probabilistically.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct HtmConfig {
    /// Maximum number of distinct cache lines a transaction may write.
    pub write_capacity_lines: usize,
    /// Maximum number of distinct cache lines a transaction may read.
    pub read_capacity_lines: usize,
    /// Probability that a given hardware transaction suffers a spurious
    /// ("zero") abort at some point during its execution.
    pub zero_abort_probability: f64,
    /// Seed for the spurious-abort injector.
    pub seed: u64,
    /// Abort-storm injection: dooms `storm_burst` consecutive hardware
    /// transactions out of every [`HtmConfig::storm_period`] per thread
    /// (0 disables storms). Storms model sustained interference —
    /// interrupt floods, cache-set thrashing — and are used by the torture
    /// harness to drive the retry→SGL fallback path.
    pub storm_burst: u32,
    /// Length of one storm cycle in hardware-transaction begins per
    /// thread. Values ≤ `storm_burst` are clamped at use sites to
    /// `storm_burst + 1` so every cycle contains at least one clean
    /// window (internal commit paths retry hardware transactions in
    /// bounded loops and need an abort-free begin to make progress).
    pub storm_period: u32,
}

impl HtmConfig {
    /// Skylake-like capacities with no spurious aborts (deterministic).
    pub const fn skylake() -> Self {
        HtmConfig {
            write_capacity_lines: 512,
            read_capacity_lines: 8192,
            zero_abort_probability: 0.0,
            seed: 0,
            storm_burst: 0,
            storm_period: 0,
        }
    }

    /// A tiny HTM useful for forcing capacity aborts in tests.
    pub const fn tiny() -> Self {
        HtmConfig {
            write_capacity_lines: 4,
            read_capacity_lines: 16,
            zero_abort_probability: 0.0,
            seed: 0,
            storm_burst: 0,
            storm_period: 0,
        }
    }

    /// Sets the spurious-abort probability (builder style).
    pub fn with_zero_aborts(mut self, probability: f64, seed: u64) -> Self {
        self.zero_abort_probability = probability;
        self.seed = seed;
        self
    }

    /// Enables abort-storm injection (builder style): `burst` consecutive
    /// doomed hardware transactions out of every `period` per thread. The
    /// seed varies where inside each doomed transaction the abort fires.
    pub fn with_abort_storm(mut self, burst: u32, period: u32, seed: u64) -> Self {
        self.storm_burst = burst;
        self.storm_period = period;
        self.seed = seed;
        self
    }
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_defaults() {
        let c = HtmConfig::default();
        assert_eq!(c.write_capacity_lines, 512);
        assert!(c.read_capacity_lines >= c.write_capacity_lines);
        assert_eq!(c.zero_abort_probability, 0.0);
    }

    #[test]
    fn tiny_is_small() {
        assert!(HtmConfig::tiny().write_capacity_lines < 16);
    }

    #[test]
    fn builder_sets_zero_aborts() {
        let c = HtmConfig::skylake().with_zero_aborts(0.25, 9);
        assert_eq!(c.zero_abort_probability, 0.25);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn storms_are_off_by_default_and_set_by_the_builder() {
        assert_eq!(HtmConfig::skylake().storm_burst, 0);
        assert_eq!(HtmConfig::tiny().storm_burst, 0);
        let c = HtmConfig::skylake().with_abort_storm(6, 10, 3);
        assert_eq!(c.storm_burst, 6);
        assert_eq!(c.storm_period, 10);
        assert_eq!(c.seed, 3);
    }
}
