//! A software-simulated restricted transactional memory (RTM).
//!
//! Crafty targets commodity Intel TSX. Working TSX hardware cannot be
//! assumed, so this crate provides a drop-in software simulation of the RTM
//! interface with the properties Crafty relies on: buffered (contained)
//! transactional writes, conflict detection, capacity and spurious aborts,
//! explicit aborts with codes, and SFENCE semantics at transaction
//! boundaries. See `DESIGN.md` ("Substitutions") for the fidelity argument.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use crafty_common::{BreakdownRecorder, PAddr};
//! use crafty_pmem::{MemorySpace, PmemConfig};
//! use crafty_htm::{HtmConfig, HtmRuntime};
//!
//! let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
//! let htm = HtmRuntime::new(mem.clone(), HtmConfig::skylake(), Arc::new(BreakdownRecorder::new()));
//!
//! let slot = mem.reserve_persistent(1);
//! let mut txn = htm.begin(0);
//! let v = txn.read(slot)?;
//! txn.write(slot, v + 1)?;
//! txn.commit()?;
//! assert_eq!(mem.read(slot), 1);
//! # Ok::<(), crafty_htm::AbortCode>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod retry;
pub mod runtime;

pub use config::HtmConfig;
pub use retry::{run_with_retries, RetryPolicy, RetryResult};
pub use runtime::{AbortCode, HtmRuntime, HwTxn};
