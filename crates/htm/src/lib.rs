//! A software-simulated restricted transactional memory (RTM).
//!
//! Crafty targets commodity Intel TSX. Working TSX hardware cannot be
//! assumed, so this crate provides a drop-in software simulation of the RTM
//! interface with the properties Crafty relies on: buffered (contained)
//! transactional writes, conflict detection, capacity and spurious aborts,
//! explicit aborts with codes, and SFENCE semantics at transaction
//! boundaries. See `ARCHITECTURE.md` at the repository root for the
//! fidelity argument behind this substitution.
//!
//! # Hot-path design: reusable per-thread descriptors
//!
//! The transaction hot path is allocation-free and contention-free in
//! steady state, mirroring how real HTM/STM runtimes keep a per-thread
//! transaction descriptor (cf. phasedTM's `__thread`-local descriptor
//! state):
//!
//! * **Descriptor checkout** — [`HtmRuntime`] owns one reusable
//!   [`TxnScratch`] per thread slot. [`HtmRuntime::begin`] checks the
//!   calling thread's descriptor out of the pool and the finished
//!   transaction returns it on drop. The pool slots are single-slot
//!   lock-free queues (atomic take/put cells), so the only per-transaction
//!   costs are two uncontended atomic operations and an O(1) reset — no
//!   mutex is taken anywhere on the checkout path. If a thread begins a
//!   nested transaction while its descriptor is out (which no engine path
//!   does in steady state), a fresh descriptor is allocated for the inner
//!   transaction and dropped afterwards.
//! * **O(1) epoch clear** — the descriptor's read set and write buffer are
//!   open-addressed tables ([`GenSet`], [`GenMap`]) whose slots carry a
//!   generation stamp; clearing bumps the generation instead of touching
//!   the slots. Tables only allocate when they grow past the workload's
//!   observed footprint, so a warmed-up transaction allocates nothing —
//!   a property asserted by the `alloc_free_hot_path` integration test
//!   with a counting global allocator.
//! * **Incremental write-line dedup** — distinct written lines are tracked
//!   as writes arrive, so the commit's canonical lock ordering is a sort
//!   of an already-deduplicated reused buffer and the capacity check is
//!   O(1) per write, instead of rebuilding a `HashSet` per commit.
//! * **Per-thread RNG streams** — the spurious-abort ("zero abort")
//!   injector draws from a [`crafty_common::SplitMix64`] stream stored in
//!   the descriptor, seeded as `cfg.seed ^ 0x51_0D0A ^ (tid + 1) ·
//!   0x9E3779B97F4A7C15`. Each thread's abort schedule is a pure function
//!   of `(seed, tid)`: reruns with the same configuration reproduce the
//!   same per-thread schedules regardless of interleaving, and no global
//!   RNG lock is taken at `begin`.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use crafty_common::{BreakdownRecorder, PAddr};
//! use crafty_pmem::{MemorySpace, PmemConfig};
//! use crafty_htm::{HtmConfig, HtmRuntime};
//!
//! let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
//! let htm = HtmRuntime::new(mem.clone(), HtmConfig::skylake(), Arc::new(BreakdownRecorder::new()));
//!
//! let slot = mem.reserve_persistent(1);
//! let mut txn = htm.begin(0);
//! let v = txn.read(slot)?;
//! txn.write(slot, v + 1)?;
//! txn.commit()?;
//! assert_eq!(mem.read(slot), 1);
//! # Ok::<(), crafty_htm::AbortCode>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fallback;
pub mod retry;
pub mod runtime;
pub mod scratch;

pub use config::HtmConfig;
pub use fallback::FallbackTxn;
pub use retry::{run_with_retries, RetryPolicy, RetryResult};
pub use runtime::{AbortCode, HtmRuntime, HwTxn, LockWordGuard};
pub use scratch::{GenMap, GenSet, TxnScratch};
