//! Software fallback transactions with **per-line write locking**.
//!
//! The classic HTM fallback is a single global lock: the fallback path
//! takes it, and every hardware transaction subscribes to it, so one
//! capacity abort serializes the whole system. This module provides the
//! scalable alternative (cf. *Persistent HyTM via Fast Path Fine-Grained
//! Locking*): a [`FallbackTxn`] acquires write locks on **exactly the
//! lines in its write set**, using the versioned line locks the runtime
//! already maintains for hardware commits, and validates its read
//! versions before publishing. Hardware transactions need no global
//! subscription — their per-line reads already watch the lock word of
//! every line they touch, and the fallback's `FALLBACK_BIT` aborts them
//! exactly as a committing transaction's transient lock bit would.
//!
//! # Lock word layout
//!
//! ```text
//!   bit 63  LOCK_BIT      transient: held by a hardware commit or a
//!                         non-transactional operation, bounded hold
//!   bit 62  FALLBACK_BIT  fallback write lock: held across the fallback's
//!                         undo-durability and publish windows
//!   bits 61..0            version (global version-clock value)
//! ```
//!
//! # Protocol
//!
//! 1. **Begin** — snapshot the global version clock (`rv`), exactly like a
//!    hardware transaction.
//! 2. **Read** — a line is readable when neither lock bit is set and its
//!    version is at most `rv`; otherwise the caller must retry the whole
//!    body with a fresh snapshot (opacity: every value handed to the body
//!    is consistent at `rv`).
//! 3. **Write** — buffered in the descriptor, invisible until publish.
//! 4. **Lock** — [`FallbackTxn::lock_write_set`] acquires `FALLBACK_BIT`
//!    on the distinct write-set lines in **sorted line order** with
//!    bounded-exponential backoff. Sorted acquisition cannot deadlock
//!    against other fallbacks (they sort too), and the only other holders
//!    — hardware commits and non-transactional operations — never block
//!    while holding a line.
//! 5. **Validate** — every read-set line must still be at most `rv`
//!    (lock acquisition preserves the version bits, so this covers lines
//!    the transaction now write-locks itself) and free of foreign locks.
//! 6. **Publish / release** — the caller interleaves its durability
//!    actions (undo-log append, flush, drain) with
//!    [`FallbackTxn::publish`] while the locks are held, then
//!    [`FallbackTxn::commit_release`] stamps every held line with a fresh
//!    commit version.
//!
//! Each lock acquire, the validation pass, and the release advance the
//! fault clock ([`MemorySpace::fault_event`](crafty_pmem::MemorySpace::fault_event)),
//! so torture drivers enumerate crash points that land *inside* the
//! lock-hold window. The lock words themselves are volatile runtime state:
//! a crash image never contains them, and a rebooted heap starts with
//! every line unlocked by construction — the torture suites audit this by
//! running a second engine life over recovered images.

use std::sync::atomic::Ordering;

use crafty_common::{LineId, PAddr};
use crossbeam::utils::Backoff;

use crate::runtime::{AbortCode, HtmRuntime, FALLBACK_BIT, LOCKED_MASK, VERSION_MASK};
use crate::scratch::TxnScratch;

impl HtmRuntime {
    /// Begins a software fallback transaction for thread `tid`.
    ///
    /// Checks out the thread's reusable descriptor (sharing the pool with
    /// hardware transactions — the fallback hot path is equally
    /// allocation-free) and snapshots the version clock. Unlike
    /// [`HtmRuntime::begin`], this neither drains pending flushes nor
    /// consumes the thread's abort-injection schedule: the fallback is
    /// software, it cannot spuriously abort, and the caller sequences its
    /// own fences.
    pub fn begin_fallback(&self, tid: usize) -> FallbackTxn<'_> {
        let scratch = self.checkout_scratch(tid);
        FallbackTxn {
            rt: self,
            tid,
            rv: self.version_clock.load(Ordering::Acquire),
            scratch: Some(scratch),
            committed: false,
        }
    }
}

/// An in-flight software fallback transaction (see the module docs for the
/// protocol). Obtain one from [`HtmRuntime::begin_fallback`]; dropping it
/// before [`FallbackTxn::commit_release`] releases any held line locks
/// without bumping versions (abort), panic-safe.
pub struct FallbackTxn<'rt> {
    rt: &'rt HtmRuntime,
    tid: usize,
    rv: u64,
    /// The thread's checked-out descriptor; `Some` for the whole life of
    /// the transaction (`Drop` returns it to the runtime's pool).
    scratch: Option<Box<TxnScratch>>,
    committed: bool,
}

impl std::fmt::Debug for FallbackTxn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.scratch.as_ref().expect("descriptor present");
        f.debug_struct("FallbackTxn")
            .field("tid", &self.tid)
            .field("rv", &self.rv)
            .field("reads", &s.read_set.len())
            .field("writes", &s.write_buf.len())
            .field("locked", &s.locked.len())
            .finish()
    }
}

impl FallbackTxn<'_> {
    #[inline]
    fn s(&mut self) -> &mut TxnScratch {
        self.scratch.as_mut().expect("descriptor present")
    }

    /// The thread id this transaction belongs to.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Reads the word at `addr` with snapshot consistency at the begin
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`AbortCode::Conflict`] when the line is locked or has been
    /// committed past the snapshot; the caller must retry the whole body
    /// under a fresh [`HtmRuntime::begin_fallback`]. The transaction holds
    /// no locks at read time, so a conflicting retry never blocks anyone.
    pub fn read(&mut self, addr: PAddr) -> Result<u64, AbortCode> {
        if let Some(v) = self.s().write_buf.get(addr.word()) {
            return Ok(v);
        }
        let line = addr.line();
        let v1 = self.rt.version_of(line);
        if v1 & LOCKED_MASK != 0 || (v1 & VERSION_MASK) > self.rv {
            return Err(AbortCode::Conflict);
        }
        let value = self.rt.mem.read(addr);
        if self.rt.version_of(line) != v1 {
            return Err(AbortCode::Conflict);
        }
        let s = self.s();
        if s.read_set.insert(line.index()) {
            s.read_order.push(line.index());
        }
        Ok(value)
    }

    /// Buffers a write of `value` to `addr`; it becomes visible only at
    /// [`FallbackTxn::publish`]. The software path has no capacity limit —
    /// that is the point of a fallback.
    pub fn write(&mut self, addr: PAddr, value: u64) {
        let s = self.s();
        if s.write_buf.insert(addr.word(), value).is_none() {
            s.write_order.push(addr);
            let line = addr.line();
            if s.write_lines.insert(line.index()) {
                s.line_order.push(line);
            }
        }
    }

    /// True if the body buffered at least one write.
    pub fn has_writes(&self) -> bool {
        !self
            .scratch
            .as_ref()
            .expect("descriptor present")
            .write_order
            .is_empty()
    }

    /// The distinct written words, in first-write order.
    pub fn write_order(&self) -> &[PAddr] {
        &self
            .scratch
            .as_ref()
            .expect("descriptor present")
            .write_order
    }

    /// Acquires the fallback write lock on every distinct write-set line,
    /// in sorted line order (deadlock avoidance) with bounded-exponential
    /// backoff per line. Blocks until every lock is held; ticks the fault
    /// clock once per acquired line.
    pub fn lock_write_set(&mut self) {
        let rt = self.rt;
        let s = self.scratch.as_mut().expect("descriptor present");
        s.line_order.sort_unstable();
        s.locked.clear();
        for &line in &s.line_order {
            let slot = rt.line_versions.get(line.index());
            let mut backoff = Backoff::new();
            loop {
                let v = slot.load(Ordering::Acquire);
                if v & LOCKED_MASK != 0 {
                    backoff.snooze();
                    continue;
                }
                if slot
                    .compare_exchange(v, v | FALLBACK_BIT, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
                backoff.spin();
            }
            s.locked.push(line);
            rt.mem.fault_event();
        }
    }

    /// Validates the read set while the write locks are held: every line
    /// this transaction read must be unchanged since the begin snapshot,
    /// and unlocked unless this transaction itself holds its write lock.
    ///
    /// Lines both read and written get the version check too — acquisition
    /// preserves the version bits under `FALLBACK_BIT`, so a commit that
    /// slipped in between our read and our lock is still visible here.
    /// Skipping them would publish values derived from a stale read.
    ///
    /// # Errors
    ///
    /// Returns [`AbortCode::Conflict`] after releasing every held write
    /// lock (versions unchanged — nothing was published); the caller
    /// retries the whole body.
    pub fn validate_reads(&mut self) -> Result<(), AbortCode> {
        let rt = self.rt;
        let rv = self.rv;
        let s = self.scratch.as_mut().expect("descriptor present");
        for &line_idx in &s.read_order {
            let v = rt.version_of(LineId::new(line_idx));
            let foreign_lock = if s.write_lines.contains(line_idx) {
                // We hold this line's FALLBACK_BIT; only a concurrent
                // LOCK_BIT holder (impossible while we hold the line, but
                // checked for robustness) would be foreign.
                v & LOCKED_MASK & !FALLBACK_BIT != 0
            } else {
                v & LOCKED_MASK != 0
            };
            if foreign_lock || (v & VERSION_MASK) > rv {
                release_locked(rt, s);
                rt.mem.fault_event();
                return Err(AbortCode::Conflict);
            }
        }
        rt.mem.fault_event();
        Ok(())
    }

    /// Reads a word directly from memory while the write locks are held —
    /// the pre-publish ("old") value of a write-set word, for undo-log
    /// entries. Sound only between [`FallbackTxn::lock_write_set`] and
    /// [`FallbackTxn::publish`]: the held `FALLBACK_BIT` excludes every
    /// writer (hardware commits abort, non-transactional stores wait).
    pub fn read_locked(&self, addr: PAddr) -> u64 {
        self.rt.mem.read(addr)
    }

    /// Publishes every buffered write in place, while the write locks are
    /// held. Deliberately a plain store per word — taking the line locks
    /// here (as `nontx_write` would) would self-deadlock on our own held
    /// `FALLBACK_BIT`; exclusion is already guaranteed by the held locks,
    /// and concurrent readers see either the lock bit (abort/wait) or,
    /// after release, the new commit version.
    pub fn publish(&mut self) {
        let rt = self.rt;
        let s = self.scratch.as_mut().expect("descriptor present");
        for addr in &s.write_order {
            let value = s
                .write_buf
                .get(addr.word())
                .expect("buffered write present");
            rt.mem.write(*addr, value);
        }
    }

    /// Draws a fresh commit version, stamps every held line with it
    /// (releasing the locks), and returns it. Ticks the fault clock once —
    /// the last crash point of the lock-hold window.
    pub fn commit_release(&mut self) -> u64 {
        let rt = self.rt;
        let s = self.scratch.as_mut().expect("descriptor present");
        let wv = rt.version_clock.fetch_add(1, Ordering::AcqRel) + 1;
        for &line in &s.locked {
            rt.line_versions
                .get(line.index())
                .store(wv, Ordering::Release);
        }
        s.locked.clear();
        self.committed = true;
        rt.mem.fault_event();
        wv
    }
}

/// Releases every held fallback lock *without* bumping versions (the abort
/// path: nothing was published, so readers must not be invalidated).
fn release_locked(rt: &HtmRuntime, s: &mut TxnScratch) {
    for &line in &s.locked {
        let slot = rt.line_versions.get(line.index());
        let v = slot.load(Ordering::Acquire);
        slot.store(v & !FALLBACK_BIT, Ordering::Release);
    }
    s.locked.clear();
}

impl Drop for FallbackTxn<'_> {
    fn drop(&mut self) {
        if let Some(mut scratch) = self.scratch.take() {
            if !self.committed && !scratch.locked.is_empty() {
                // Abandoned mid-commit (abort or panic): free the lines,
                // versions unchanged, so no reader is wedged or invalidated.
                release_locked(self.rt, &mut scratch);
                self.rt.mem.fault_event();
            }
            self.rt.return_scratch(self.tid, scratch);
        }
    }
}
