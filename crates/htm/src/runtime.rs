//! The simulated HTM runtime and hardware transactions.
//!
//! # What is being simulated
//!
//! Crafty relies on four properties of commodity RTM (Section 2.3, 3, 4):
//!
//! 1. **Write containment** — a hardware transaction's stores are invisible
//!    to other threads *and to the persistence domain* until the transaction
//!    commits. This is the property nondestructive undo logging exploits:
//!    the Log phase can write and roll back freely, knowing nothing leaked.
//! 2. **Conflict detection** — concurrently conflicting transactions abort.
//! 3. **No progress guarantee** — any transaction may abort for capacity or
//!    spurious reasons, so a software fallback is required.
//! 4. **Fence semantics** — `xbegin`/`xend` behave like `SFENCE` for the
//!    issuing thread's outstanding CLWBs.
//!
//! [`HtmRuntime`] provides all four with a TL2-style software
//! implementation: per-cache-line versioned locks, a global version clock,
//! lazy write buffering in the [`HwTxn`], commit-time lock acquisition and
//! read-set validation, plus configurable capacity limits and probabilistic
//! "zero" aborts. It is *not* a high-performance STM — it is a faithful
//! stand-in for the hardware interface on machines without working TSX.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crafty_common::trace::{
    self, AbortCause, TraceEventKind, ABORT_REDO_TS_CHECK, ABORT_VALIDATE_MISMATCH,
};
use crafty_common::{BreakdownRecorder, HwTxnOutcome, LazyAtomicArray, LineId, PAddr};
use crafty_pmem::MemorySpace;
use crossbeam::queue::ArrayQueue;
use crossbeam::utils::Backoff;

use crate::config::HtmConfig;
use crate::scratch::TxnScratch;

/// Why a hardware transaction aborted.
///
/// Matches the abort classification in the paper's appendix: conflict,
/// capacity, explicit (`xabort` with a code), and "zero" aborts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortCode {
    /// Another transaction or a non-transactional store touched a line in
    /// this transaction's footprint.
    Conflict,
    /// The transaction's read or write footprint exceeded HTM capacity.
    Capacity,
    /// The program explicitly aborted the transaction with a code
    /// (Crafty's failed Redo/Validate checks use this).
    Explicit(u32),
    /// A spurious abort (interrupt, page fault, ...).
    Zero,
}

impl AbortCode {
    /// The breakdown category this abort falls into.
    pub fn outcome(self) -> HwTxnOutcome {
        match self {
            AbortCode::Conflict => HwTxnOutcome::Conflict,
            AbortCode::Capacity => HwTxnOutcome::Capacity,
            AbortCode::Explicit(_) => HwTxnOutcome::Explicit,
            AbortCode::Zero => HwTxnOutcome::Zero,
        }
    }

    /// The structured abort-cause taxonomy entry this abort falls into.
    ///
    /// Unlike [`AbortCode::outcome`] (which mirrors the raw RTM status
    /// word), this classifies the two protocol-level explicit codes —
    /// failed `gLastRedoTS` and Validate checks — as
    /// [`AbortCause::PersistentDoomed`]: the hardware transaction itself
    /// was fine, its persistent context was stale. SGL subscriptions,
    /// abandoned transactions, and spurious zero aborts all fold into
    /// [`AbortCause::Explicit`] (the event ring's argument still carries
    /// the raw code for anyone who needs the distinction).
    pub fn cause(self) -> AbortCause {
        match self {
            AbortCode::Conflict => AbortCause::Conflict,
            AbortCode::Capacity => AbortCause::Capacity,
            AbortCode::Explicit(ABORT_REDO_TS_CHECK)
            | AbortCode::Explicit(ABORT_VALIDATE_MISMATCH) => AbortCause::PersistentDoomed,
            AbortCode::Explicit(_) | AbortCode::Zero => AbortCause::Explicit,
        }
    }
}

/// Transient lock bit: set while a hardware commit (or a non-transactional
/// operation) holds a line for a bounded critical section. Holders never
/// block while it is set, so waiting on it is deadlock-free.
pub(crate) const LOCK_BIT: u64 = 1 << 63;

/// Fallback write-lock bit: set by a software fallback transaction
/// ([`HtmRuntime::begin_fallback`]) on each line of its write set, and held
/// across the fallback's undo-durability and publish windows — arbitrarily
/// long. Hardware transactions treat it exactly like [`LOCK_BIT`]
/// (subscribe-and-abort); other fallbacks wait on it in sorted line order.
pub(crate) const FALLBACK_BIT: u64 = 1 << 62;

/// Either lock bit: a line is unavailable when any of these is set.
pub(crate) const LOCKED_MASK: u64 = LOCK_BIT | FALLBACK_BIT;

/// The version number carried by a lock word, lock bits stripped.
pub(crate) const VERSION_MASK: u64 = !LOCKED_MASK;

/// The portion of a line's lock word the HTM fast path *subscribes to*.
/// Normally the whole word, so a fallback acquiring [`FALLBACK_BIT`] on a
/// line aborts every hardware transaction that read it. The
/// `no-fallback-subscription` teeth feature masks the fallback bit out of
/// the fast path's view — and out of the fast path's view ONLY; the
/// non-transactional paths always honor both bits — so the conflict
/// stress tests can prove they fail without the subscription.
#[cfg(not(feature = "no-fallback-subscription"))]
pub(crate) const SUBSCRIBE_VIEW: u64 = u64::MAX;
/// Teeth-mode subscribe view: the fallback lock bit is invisible to
/// hardware transactions (see the non-feature doc above).
#[cfg(feature = "no-fallback-subscription")]
pub(crate) const SUBSCRIBE_VIEW: u64 = !FALLBACK_BIT;

/// The shared state of the simulated HTM: one versioned lock per cache line
/// plus a global version clock.
pub struct HtmRuntime {
    pub(crate) mem: Arc<MemorySpace>,
    cfg: HtmConfig,
    /// One versioned lock per cache line, sharded into lazily-allocated
    /// segments: an untouched segment reads as version 0 (unlocked, older
    /// than every snapshot), so a 256 MiB space no longer allocates tens of
    /// megabytes of dense lock words up front.
    pub(crate) line_versions: LazyAtomicArray,
    pub(crate) version_clock: AtomicU64,
    recorder: Arc<BreakdownRecorder>,
    /// One reusable transaction descriptor per thread slot, held in a
    /// single-slot lock-free queue used as an atomic take/put cell:
    /// `begin(tid)` pops the descriptor out and the transaction pushes it
    /// back on drop — no mutex anywhere on the checkout path (the previous
    /// implementation took an uncontended `parking_lot::Mutex` per
    /// transaction). In the (non-steady-state) event that a thread begins a
    /// second transaction while its descriptor is out, a fresh descriptor
    /// is allocated for the inner transaction and discarded afterwards.
    scratch_pool: Box<[ArrayQueue<Box<TxnScratch>>]>,
}

impl std::fmt::Debug for HtmRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HtmRuntime")
            .field("lines", &self.line_versions.len())
            .field("line_segments", &self.line_versions.allocated_segments())
            .field("config", &self.cfg)
            .finish()
    }
}

impl HtmRuntime {
    /// Creates an HTM runtime over `mem`, recording hardware-transaction
    /// outcomes into `recorder`.
    pub fn new(mem: Arc<MemorySpace>, cfg: HtmConfig, recorder: Arc<BreakdownRecorder>) -> Self {
        let lines = mem
            .config()
            .total_words()
            .div_ceil(crafty_common::WORDS_PER_LINE);
        let threads = mem.config().max_threads;
        HtmRuntime {
            mem,
            cfg,
            line_versions: LazyAtomicArray::new(lines),
            version_clock: AtomicU64::new(0),
            recorder,
            scratch_pool: (0..threads).map(|_| ArrayQueue::new(1)).collect(),
        }
    }

    /// The seed of thread `tid`'s spurious-abort stream: the configured
    /// seed XORed with a per-thread multiplicative spread, so streams are
    /// independent yet each is a pure function of `(cfg.seed, tid)` —
    /// reruns with the same configuration reproduce the same per-thread
    /// abort schedule regardless of thread interleaving.
    fn zero_rng_seed(&self, tid: usize) -> u64 {
        self.cfg.seed ^ 0x51_0D0A ^ (tid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Checks out thread `tid`'s reusable descriptor (creating it on first
    /// use), reset and ready for a new transaction. A single atomic pop on
    /// the slot's lock-free cell — no lock is taken.
    pub(crate) fn checkout_scratch(&self, tid: usize) -> Box<TxnScratch> {
        let mut scratch = self.scratch_pool[tid]
            .pop()
            .unwrap_or_else(|| Box::new(TxnScratch::new(self.zero_rng_seed(tid))));
        scratch.reset();
        scratch
    }

    /// Returns a descriptor to its thread slot. In the nested-begin case
    /// the slot may already hold the inner transaction's descriptor; the
    /// one returned later (the outer transaction's, which carries the
    /// thread's cumulative spurious-abort RNG stream) wins — `force_push`
    /// evicts the inner descriptor, which is then dropped — so descriptor
    /// reuse never rewinds a thread's abort schedule.
    pub(crate) fn return_scratch(&self, tid: usize, scratch: Box<TxnScratch>) {
        drop(self.scratch_pool[tid].force_push(scratch));
    }

    /// The memory space transactions operate on.
    pub fn mem(&self) -> &Arc<MemorySpace> {
        &self.mem
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &HtmConfig {
        &self.cfg
    }

    /// The recorder hardware-transaction outcomes are reported to.
    pub fn recorder(&self) -> &Arc<BreakdownRecorder> {
        &self.recorder
    }

    /// Begins a hardware transaction for thread `tid`.
    ///
    /// Like `xbegin`, this has SFENCE semantics for the issuing thread: any
    /// CLWBs it issued earlier are drained (completing their persistence)
    /// before the transaction starts.
    pub fn begin(&self, tid: usize) -> HwTxn<'_> {
        if self.mem.pending_flushes(tid) > 0 {
            let t0 = trace::phase_start();
            self.mem.drain(tid);
            self.recorder.record_drain();
            if let Some(t0) = t0 {
                self.recorder
                    .record_phase_cycles(crafty_common::TxnPhase::Drain, trace::phase_elapsed(t0));
            }
        }
        self.begin_inner(tid, false)
    }

    /// Begins a hardware transaction **without** the begin/commit SFENCE
    /// drains: the issuing thread's outstanding CLWBs stay pending across
    /// the whole transaction.
    ///
    /// This is the group-commit relaxation. The engine's durability drains
    /// are deliberately deferred — Crafty's Log phase uses it for a
    /// durability-deferred transaction, so the previous transaction's
    /// commit write-backs are drained by this transaction's mandatory
    /// pre-Redo drain (or by the group's final
    /// [`crafty_common::TmThread::flush_deferred`] barrier) instead of
    /// paying their own fence here. It is only a *latency* relaxation:
    /// everything enqueued stays pending and is covered by the next drain
    /// of this thread's queue, from whichever thread issues it. Callers
    /// that need a transaction's undo entries durable before acting on
    /// them must still drain explicitly before doing so.
    pub fn begin_deferred(&self, tid: usize) -> HwTxn<'_> {
        self.begin_inner(tid, true)
    }

    fn begin_inner(&self, tid: usize, deferred_fence: bool) -> HwTxn<'_> {
        let mut scratch = self.checkout_scratch(tid);
        let storm_doomed = {
            let burst = self.cfg.storm_burst;
            if burst > 0 {
                // Clamp so every cycle has at least one clean begin:
                // internal commit paths retry hardware transactions in
                // bounded loops and need an abort-free window to stay live.
                let period = u64::from(self.cfg.storm_period.max(burst + 1));
                let phase = scratch.begin_count % period;
                scratch.begin_count += 1;
                phase < u64::from(burst)
            } else {
                false
            }
        };
        let doomed_after = if storm_doomed {
            let rng = &mut scratch.zero_rng;
            Some(rng.next_below(24) as u32 + 1)
        } else {
            let p = self.cfg.zero_abort_probability;
            if p > 0.0 {
                let rng = &mut scratch.zero_rng;
                if rng.chance(p) {
                    Some(rng.next_below(24) as u32 + 1)
                } else {
                    None
                }
            } else {
                None
            }
        };
        trace::record(tid, TraceEventKind::HtmAttempt, 0);
        HwTxn {
            rt: self,
            tid,
            rv: self.version_clock.load(Ordering::Acquire),
            scratch: Some(scratch),
            failed: None,
            finished: false,
            doomed_after,
            deferred_fence,
        }
    }

    /// Draws a fresh commit-order version outside any transaction. The
    /// returned value is greater than the commit version of every
    /// transaction that has already committed and smaller than that of any
    /// transaction that commits later, so it can be published (with
    /// [`HtmRuntime::nontx_write`]) wherever code running under a global
    /// lock needs a value ordered consistently with transactional commits.
    pub fn nontx_commit_version(&self) -> u64 {
        self.version_clock.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Draws a fresh commit-order version and stores it at `addr` in one
    /// versioned-lock critical section: the containing line is locked, the
    /// version drawn *while the line is held*, the word written, and the
    /// line released at that version.
    ///
    /// [`HtmRuntime::nontx_commit_version`] followed by a separate
    /// [`HtmRuntime::nontx_write`] is only monotonic when the caller holds
    /// a global lock (two racing callers can interleave draw/store and
    /// publish a *smaller* version last). The per-line fallback has no
    /// global lock, so its `gLastRedoTS` bump goes through this combined
    /// operation; hardware transactions subscribed to the line abort the
    /// moment it is taken, exactly as with `nontx_write`.
    pub fn nontx_bump_commit_version(&self, addr: PAddr) -> u64 {
        let slot = self.lock_line(addr.line());
        let wv = self.version_clock.fetch_add(1, Ordering::AcqRel) + 1;
        self.mem.write(addr, wv);
        slot.store(wv, Ordering::Release);
        wv
    }

    /// Performs a non-transactional store that is still visible to the
    /// conflict-detection machinery (running transactions that have the
    /// line in their footprint will abort, as they would under RTM's strong
    /// atomicity). Crafty's SGL acquisition/release and its thread-unsafe
    /// mode use this for writes performed outside hardware transactions.
    pub fn nontx_write(&self, addr: PAddr, value: u64) {
        let slot = self.lock_line(addr.line());
        self.mem.write(addr, value);
        let wv = self.version_clock.fetch_add(1, Ordering::AcqRel) + 1;
        slot.store(wv, Ordering::Release);
    }

    /// Performs a non-transactional compare-and-swap that participates in
    /// the versioned-lock machinery, mirroring [`HtmRuntime::nontx_write`]:
    /// the containing line is locked for the duration of the CAS, running
    /// transactions with the line in their footprint abort (strong
    /// atomicity), and a successful swap bumps the line's version.
    ///
    /// This is what the engines build their single-global-lock acquisition
    /// on: the SGL is just a word in simulated memory, and CASing it
    /// through this method gives mutual exclusion *and* HTM subscription
    /// without any host-level mutex.
    pub fn nontx_compare_exchange(&self, addr: PAddr, current: u64, new: u64) -> Result<u64, u64> {
        let slot = self.lock_line(addr.line());
        let result = self.mem.compare_exchange(addr, current, new);
        match result {
            Ok(_) => {
                let wv = self.version_clock.fetch_add(1, Ordering::AcqRel) + 1;
                slot.store(wv, Ordering::Release);
            }
            Err(_) => {
                // Nothing was written: release the lock bit, leaving the
                // version unchanged so readers are not spuriously aborted.
                let v = slot.load(Ordering::Acquire);
                slot.store(v & !LOCK_BIT, Ordering::Release);
            }
        }
        result
    }

    /// Acquires a lock *word* in simulated memory (0 = free, 1 = held) —
    /// the engines' single-global-lock acquisition. The CAS goes through
    /// [`HtmRuntime::nontx_compare_exchange`], so subscribed hardware
    /// transactions abort the moment the word is taken; between failed
    /// attempts the waiter spins with plain versioned reads
    /// (test-and-test-and-set), because a CAS retry loop would transiently
    /// lock the word's line on every failed attempt and spuriously abort
    /// the very transactions that are still making progress.
    ///
    /// The returned guard releases the word when dropped — including
    /// during unwinding, so a panic inside the locked section cannot wedge
    /// the word at 1 and leave every other thread spinning forever (the
    /// liveness the old host `Mutex` provided through its own guard).
    #[must_use = "the lock word is released when the guard drops"]
    pub fn nontx_acquire_lock_word(&self, addr: PAddr) -> LockWordGuard<'_> {
        loop {
            if self.nontx_compare_exchange(addr, 0, 1).is_ok() {
                return LockWordGuard { rt: self, addr };
            }
            while self.nontx_read(addr) != 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Acquires the versioned lock of `line` for a non-transactional
    /// operation and returns its slot (with the lock bit set).
    ///
    /// The wait between attempts uses bounded exponential backoff
    /// ([`Backoff::snooze`]): spin-loop hints whose pause doubles per
    /// retry up to a cap, then thread yields — a tight unpaced spin here
    /// hammers the lock holder's cache line, and on a host with fewer
    /// cores than threads it can be precisely what keeps the holder from
    /// running (the starvation pattern documented in the ROADMAP).
    fn lock_line(&self, line: LineId) -> &AtomicU64 {
        let slot = self.line_versions.get(line.index());
        let mut backoff = Backoff::new();
        loop {
            let v = slot.load(Ordering::Acquire);
            if v & LOCKED_MASK != 0 {
                backoff.snooze();
                continue;
            }
            if slot
                .compare_exchange(v, v | LOCK_BIT, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return slot;
            }
            backoff.spin();
        }
    }

    /// Reads a word non-transactionally. The read is atomic with respect to
    /// committing transactions (it never observes a commit's partially
    /// published write set), mirroring the strong atomicity of real RTM:
    /// if the containing line is locked by an in-flight commit, the read
    /// waits for the commit to finish.
    /// The wait for an in-flight commit to release the line uses the same
    /// bounded exponential backoff as the internal line-locking path:
    /// capped doubling spin-loop pauses, then yields.
    pub fn nontx_read(&self, addr: PAddr) -> u64 {
        let line = addr.line();
        let mut backoff = Backoff::new();
        loop {
            let v1 = self.version_of(line);
            if v1 & LOCKED_MASK != 0 {
                backoff.snooze();
                continue;
            }
            let value = self.mem.read(addr);
            if self.version_of(line) == v1 {
                return value;
            }
            backoff.spin();
        }
    }

    /// The line's current versioned-lock word. Lines whose metadata segment
    /// was never touched are at version 0: unlocked and older than every
    /// snapshot, so readers need not materialize the segment.
    pub(crate) fn version_of(&self, line: LineId) -> u64 {
        self.line_versions.load_or_zero(line.index())
    }

    /// The line's lock word as the HTM fast path observes it — the full
    /// word normally, the fallback bit masked out under the
    /// `no-fallback-subscription` teeth feature (see [`SUBSCRIBE_VIEW`]).
    #[inline]
    fn subscribed_version_of(&self, line: LineId) -> u64 {
        self.version_of(line) & SUBSCRIBE_VIEW
    }
}

/// Holds a lock word in simulated memory acquired through
/// [`HtmRuntime::nontx_acquire_lock_word`]; releases it (a versioned
/// non-transactional store of 0) when dropped, panic-safe.
#[derive(Debug)]
pub struct LockWordGuard<'rt> {
    rt: &'rt HtmRuntime,
    addr: PAddr,
}

impl Drop for LockWordGuard<'_> {
    fn drop(&mut self) {
        self.rt.nontx_write(self.addr, 0);
    }
}

/// An in-flight simulated hardware transaction.
///
/// Obtain one from [`HtmRuntime::begin`]; use [`HwTxn::read`] and
/// [`HwTxn::write`] for every shared-memory access inside the transaction;
/// finish with [`HwTxn::commit`] or [`HwTxn::abort_explicit`]. Once a read,
/// write, or commit reports an [`AbortCode`], the transaction is dead: its
/// buffered writes are discarded and it must be dropped.
pub struct HwTxn<'rt> {
    rt: &'rt HtmRuntime,
    tid: usize,
    rv: u64,
    /// The thread's checked-out descriptor; `Some` for the whole life of
    /// the transaction (taken only transiently inside `commit` and finally
    /// by `Drop`, which returns it to the runtime's pool).
    scratch: Option<Box<TxnScratch>>,
    failed: Option<AbortCode>,
    finished: bool,
    doomed_after: Option<u32>,
    /// True for transactions begun with [`HtmRuntime::begin_deferred`]:
    /// neither begin nor commit drains the thread's pending flushes (the
    /// group-commit relaxation).
    deferred_fence: bool,
}

impl std::fmt::Debug for HwTxn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.scratch.as_ref().expect("descriptor present");
        f.debug_struct("HwTxn")
            .field("tid", &self.tid)
            .field("reads", &s.read_set.len())
            .field("writes", &s.write_buf.len())
            .field("failed", &self.failed)
            .finish()
    }
}

impl<'rt> HwTxn<'rt> {
    fn fail(&mut self, code: AbortCode) -> AbortCode {
        if self.failed.is_none() {
            self.failed = Some(code);
            self.finished = true;
            self.rt.recorder.record_hw(code.outcome());
            self.rt.recorder.record_abort_cause(code.cause());
            trace::record(self.tid, TraceEventKind::Abort, code.cause().index() as u64);
        }
        code
    }

    fn tick_doom(&mut self) -> Option<AbortCode> {
        if let Some(left) = self.doomed_after.as_mut() {
            if *left == 0 {
                return Some(AbortCode::Zero);
            }
            *left -= 1;
        }
        None
    }

    #[inline]
    fn s(&mut self) -> &mut TxnScratch {
        self.scratch.as_mut().expect("descriptor present")
    }

    /// Number of distinct words written so far.
    pub fn write_set_len(&self) -> usize {
        self.scratch
            .as_ref()
            .expect("descriptor present")
            .write_buf
            .len()
    }

    /// The thread id this transaction belongs to.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Transactionally reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the abort code if the transaction must abort (conflict,
    /// capacity, or spurious abort). The transaction is dead afterwards.
    pub fn read(&mut self, addr: PAddr) -> Result<u64, AbortCode> {
        if let Some(code) = self.failed {
            return Err(code);
        }
        if let Some(code) = self.tick_doom() {
            return Err(self.fail(code));
        }
        if let Some(v) = self.s().write_buf.get(addr.word()) {
            return Ok(v);
        }
        let line = addr.line();
        // Per-line subscription: the fast path watches exactly this line's
        // lock word — both the transient commit lock and the fallback
        // write lock — instead of any global fallback indicator. A line
        // locked either way, or versioned past the snapshot, aborts.
        let v1 = self.rt.subscribed_version_of(line);
        if v1 & LOCKED_MASK != 0 || (v1 & VERSION_MASK) > self.rv {
            return Err(self.fail(AbortCode::Conflict));
        }
        let value = self.rt.mem.read(addr);
        let v2 = self.rt.subscribed_version_of(line);
        if v2 != v1 {
            return Err(self.fail(AbortCode::Conflict));
        }
        let read_capacity = self.rt.cfg.read_capacity_lines;
        let s = self.s();
        if s.read_set.insert(line.index()) {
            s.read_order.push(line.index());
            if s.read_order.len() > read_capacity {
                return Err(self.fail(AbortCode::Capacity));
            }
        }
        Ok(value)
    }

    /// Transactionally writes `value` to the word at `addr`. The store is
    /// buffered and becomes visible (and evictable to persistent memory)
    /// only if the transaction commits.
    ///
    /// # Errors
    ///
    /// Returns the abort code if the transaction must abort.
    pub fn write(&mut self, addr: PAddr, value: u64) -> Result<(), AbortCode> {
        if let Some(code) = self.failed {
            return Err(code);
        }
        if let Some(code) = self.tick_doom() {
            return Err(self.fail(code));
        }
        let write_capacity = self.rt.cfg.write_capacity_lines;
        let s = self.s();
        if s.write_buf.insert(addr.word(), value).is_none() {
            s.write_order.push(addr);
            // Deduplicate write lines incrementally, so commit never has to
            // rebuild the distinct-line set and the capacity check is O(1).
            let line = addr.line();
            if s.write_lines.insert(line.index()) {
                s.line_order.push(line);
            }
            // Capacity counts *data* lines only (version-sink lines are
            // lock-ordering entries in `write_lines`, not HTM footprint),
            // matching the pre-descriptor accounting exactly.
            if s.data_lines.insert(line.index()) && s.data_lines.len() > write_capacity {
                return Err(self.fail(AbortCode::Capacity));
            }
        }
        Ok(())
    }

    /// Explicitly aborts the transaction (the simulated `xabort`), carrying
    /// `code` back to the fallback handler. All buffered writes are
    /// discarded.
    pub fn abort_explicit(&mut self, code: u32) -> AbortCode {
        self.fail(AbortCode::Explicit(code))
    }

    /// Arranges for this transaction's *commit version* — the value the
    /// global version clock is advanced to when the transaction commits —
    /// to be stored at `addr` as part of the commit. The commit version is
    /// assigned inside the commit's critical section, so values published
    /// this way are ordered consistently with the order in which
    /// transactions' writes become visible (something a timestamp read
    /// earlier inside the transaction cannot guarantee under a software
    /// TM). Crafty uses this for `gLastRedoTS`.
    ///
    /// # Errors
    ///
    /// Returns the abort code if the transaction has already aborted.
    pub fn publish_commit_version(&mut self, addr: PAddr) -> Result<(), AbortCode> {
        if let Some(code) = self.failed {
            return Err(code);
        }
        let s = self.s();
        s.version_sinks.push(addr);
        // The sink's line must be locked at commit like any written line.
        let line = addr.line();
        if s.write_lines.insert(line.index()) {
            s.line_order.push(line);
        }
        Ok(())
    }

    /// Requests a CLWB of the line containing `addr`, to be issued as part
    /// of a successful commit (after the buffered writes are published,
    /// while the commit is still atomic with respect to other
    /// transactions). The flush is *not* drained — exactly the
    /// flush-without-drain pattern Crafty's Redo/Validate phases use — but
    /// because it is enqueued atomically with the commit, any other thread
    /// that later drains this thread's flush queue is guaranteed to cover
    /// it if it observed the commit.
    ///
    /// Requests are deduplicated per line as they arrive: a transaction
    /// that writes several words of one line issues a single commit-time
    /// CLWB for it. Word precision is not lost — each buffered word store
    /// published at commit marks exactly its word in the line's dirty
    /// mask, so the eventual drain copies the words this transaction
    /// wrote, not the whole line.
    ///
    /// # Errors
    ///
    /// Returns the abort code if the transaction has already aborted.
    pub fn flush_on_commit(&mut self, addr: PAddr) -> Result<(), AbortCode> {
        if let Some(code) = self.failed {
            return Err(code);
        }
        let s = self.s();
        if s.flush_lines.insert(addr.line().index()) {
            s.flush_requests.push(addr);
        }
        Ok(())
    }

    /// Attempts to commit. On success all buffered writes are published
    /// atomically to the memory space, the thread's outstanding flushes
    /// are drained (SFENCE semantics), and the transaction's commit
    /// version is returned.
    ///
    /// # Errors
    ///
    /// Returns the abort code if validation fails or the transaction had
    /// already aborted.
    pub fn commit(mut self) -> Result<u64, AbortCode> {
        if let Some(code) = self.failed {
            return Err(code);
        }
        if let Some(code) = self.tick_doom() {
            return Err(self.fail(code));
        }
        // Operate on the descriptor directly while keeping `self` free for
        // the abort bookkeeping; `Drop` puts it back in the pool.
        let mut scratch = self.scratch.take().expect("descriptor present");
        let result = self.commit_with(&mut scratch);
        self.scratch = Some(scratch);
        result
    }

    fn commit_with(&mut self, s: &mut TxnScratch) -> Result<u64, AbortCode> {
        // The distinct write lines were deduplicated as writes arrived;
        // sorting the reused buffer in place gives the canonical lock
        // order (avoids deadlock between concurrent committers).
        s.line_order.sort_unstable();

        let release = |rt: &HtmRuntime, locked: &[LineId], version: Option<u64>| {
            for &line in locked {
                let slot = rt.line_versions.get(line.index());
                match version {
                    Some(wv) => slot.store(wv, Ordering::Release),
                    None => {
                        let v = slot.load(Ordering::Acquire);
                        slot.store(v & !LOCK_BIT, Ordering::Release);
                    }
                }
            }
        };

        s.locked.clear();
        for &line in &s.line_order {
            let slot = self.rt.line_versions.get(line.index());
            let v = slot.load(Ordering::Acquire);
            let lockable = v & SUBSCRIBE_VIEW & LOCKED_MASK == 0 && (v & VERSION_MASK) <= self.rv;
            let acquired = lockable
                && slot
                    .compare_exchange(v, v | LOCK_BIT, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
            if !acquired {
                release(self.rt, &s.locked, None);
                return Err(self.fail(AbortCode::Conflict));
            }
            s.locked.push(line);
        }

        // Validate the read set (lines we only read must not have advanced).
        // Walks the insertion-order list, not the table: its length is the
        // transaction's actual read-line count, while the table's slot
        // count is the *largest* footprint this descriptor has ever seen.
        for &line_idx in &s.read_order {
            if s.write_lines.contains(line_idx) {
                continue;
            }
            let v = self.rt.subscribed_version_of(LineId::new(line_idx));
            if v & LOCKED_MASK != 0 || (v & VERSION_MASK) > self.rv {
                release(self.rt, &s.locked, None);
                return Err(self.fail(AbortCode::Conflict));
            }
        }

        // Assign the commit version and publish buffered writes (and the
        // commit version itself into any registered sinks).
        let wv = self.rt.version_clock.fetch_add(1, Ordering::AcqRel) + 1;
        for addr in &s.write_order {
            let value = s
                .write_buf
                .get(addr.word())
                .expect("buffered write present");
            self.rt.mem.write(*addr, value);
        }
        for addr in &s.version_sinks {
            self.rt.mem.write(*addr, wv);
        }
        // Fence semantics for flushes issued before the transaction (they
        // were normally already drained at begin), then enqueue the
        // commit-time flush requests — still inside the critical section so
        // that the enqueue is atomic with the publication of the writes.
        // Durability-deferred transactions skip the fence: their pending
        // flushes are covered by the group's shared drain barrier instead.
        if !self.deferred_fence && self.rt.mem.pending_flushes(self.tid) > 0 {
            self.rt.mem.drain(self.tid);
            self.rt.recorder.record_drain();
        }
        for addr in &s.flush_requests {
            self.rt.mem.clwb(self.tid, *addr);
        }
        release(self.rt, &s.locked, Some(wv));

        self.finished = true;
        self.rt.recorder.record_hw(HwTxnOutcome::Commit);
        trace::record(
            self.tid,
            TraceEventKind::HtmCommit,
            s.write_buf.len() as u64,
        );
        Ok(wv)
    }
}

impl Drop for HwTxn<'_> {
    fn drop(&mut self) {
        // A transaction abandoned without commit or explicit abort counts
        // as an explicit abort: the program chose not to finish it.
        if !self.finished {
            self.failed = Some(AbortCode::Explicit(0));
            self.rt.recorder.record_hw(HwTxnOutcome::Explicit);
            self.rt.recorder.record_abort_cause(AbortCause::Explicit);
            trace::record(
                self.tid,
                TraceEventKind::Abort,
                AbortCause::Explicit.index() as u64,
            );
        }
        // Hand the descriptor back for the thread's next transaction.
        if let Some(scratch) = self.scratch.take() {
            self.rt.return_scratch(self.tid, scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::PmemConfig;

    fn runtime(cfg: HtmConfig) -> HtmRuntime {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        HtmRuntime::new(mem, cfg, Arc::new(BreakdownRecorder::new()))
    }

    #[test]
    fn committed_writes_become_visible() {
        let rt = runtime(HtmConfig::skylake());
        let a = PAddr::new(64);
        let mut t = rt.begin(0);
        assert_eq!(t.read(a).unwrap(), 0);
        t.write(a, 5).unwrap();
        assert_eq!(
            t.read(a).unwrap(),
            5,
            "reads must observe own buffered writes"
        );
        assert_eq!(rt.mem().read(a), 0, "buffered writes must stay invisible");
        t.commit().unwrap();
        assert_eq!(rt.mem().read(a), 5);
        let s = rt.recorder().snapshot();
        assert_eq!(s.hw(HwTxnOutcome::Commit), 1);
    }

    #[test]
    fn aborted_writes_are_discarded() {
        let rt = runtime(HtmConfig::skylake());
        let a = PAddr::new(64);
        let mut t = rt.begin(0);
        t.write(a, 5).unwrap();
        let code = t.abort_explicit(3);
        assert_eq!(code, AbortCode::Explicit(3));
        drop(t);
        assert_eq!(rt.mem().read(a), 0);
        let s = rt.recorder().snapshot();
        assert_eq!(s.hw(HwTxnOutcome::Explicit), 1);
        assert_eq!(s.hw(HwTxnOutcome::Commit), 0);
    }

    #[test]
    fn conflicting_writer_aborts_reader_at_commit() {
        let rt = runtime(HtmConfig::skylake());
        let a = PAddr::new(64);
        let mut reader = rt.begin(0);
        assert_eq!(reader.read(a).unwrap(), 0);
        // Another thread commits a write to the same line in between.
        let mut writer = rt.begin(1);
        writer.write(a, 9).unwrap();
        writer.commit().unwrap();
        // The reader's commit must now fail validation.
        let err = reader.commit().unwrap_err();
        assert_eq!(err, AbortCode::Conflict);
    }

    #[test]
    fn reader_aborts_eagerly_after_conflicting_commit() {
        let rt = runtime(HtmConfig::skylake());
        let a = PAddr::new(64);
        let b = PAddr::new(256);
        let mut t = rt.begin(0);
        t.read(a).unwrap();
        let mut other = rt.begin(1);
        other.write(b, 1).unwrap();
        other.commit().unwrap();
        // Line of `b` now has a newer version than t's snapshot.
        assert_eq!(t.read(b).unwrap_err(), AbortCode::Conflict);
    }

    #[test]
    fn write_write_conflicts_abort_one_transaction() {
        let rt = runtime(HtmConfig::skylake());
        let a = PAddr::new(64);
        let mut t1 = rt.begin(0);
        let mut t2 = rt.begin(1);
        t1.write(a, 1).unwrap();
        t2.write(a, 2).unwrap();
        t1.commit().unwrap();
        assert_eq!(t2.commit().unwrap_err(), AbortCode::Conflict);
        assert_eq!(rt.mem().read(a), 1);
    }

    /// Runs one transaction doing `ops` reads and reports whether it
    /// committed.
    fn try_txn(rt: &HtmRuntime, ops: u64) -> bool {
        let mut t = rt.begin(0);
        for i in 0..ops {
            if t.read(PAddr::new(64 + i * 8)).is_err() {
                drop(t);
                return false;
            }
        }
        t.commit().is_ok()
    }

    #[test]
    fn abort_storm_dooms_bursts_but_leaves_clean_windows() {
        let rt = runtime(HtmConfig::skylake().with_abort_storm(2, 3, 11));
        // Phase repeats doomed, doomed, clean; 30 reads each guarantees
        // every doomed transaction hits its injected abort (doom fires
        // within the first 24 operations).
        let outcomes: Vec<bool> = (0..9).map(|_| try_txn(&rt, 30)).collect();
        let expected: Vec<bool> = (0..9).map(|i| i % 3 == 2).collect();
        assert_eq!(outcomes, expected, "storm phase must be deterministic");
    }

    #[test]
    fn storm_period_is_clamped_to_keep_a_clean_window() {
        // period <= burst would doom every begin; the clamp to burst + 1
        // must leave one clean begin per cycle.
        let rt = runtime(HtmConfig::skylake().with_abort_storm(3, 0, 11));
        let outcomes: Vec<bool> = (0..8).map(|_| try_txn(&rt, 30)).collect();
        let expected: Vec<bool> = (0..8).map(|i| i % 4 == 3).collect();
        assert_eq!(outcomes, expected);
    }

    #[test]
    fn capacity_abort_when_write_set_exceeds_budget() {
        let rt = runtime(HtmConfig::tiny());
        let mut t = rt.begin(0);
        let mut result = Ok(());
        for i in 0..64 {
            result = t.write(PAddr::new(64 + i * 8), i);
            if result.is_err() {
                break;
            }
        }
        assert_eq!(result.unwrap_err(), AbortCode::Capacity);
    }

    #[test]
    fn version_sinks_do_not_count_toward_write_capacity() {
        let rt = runtime(HtmConfig::tiny()); // write capacity: 4 lines
        let mut t = rt.begin(0);
        for i in 0..4 {
            t.write(PAddr::new(64 + i * 8), i).unwrap();
        }
        // A sink on a fifth line is a lock-ordering entry, not HTM write
        // footprint: it must not trip the capacity check.
        t.publish_commit_version(PAddr::new(64 + 4 * 8)).unwrap();
        // A fifth *data* line still does — even though its line is already
        // tracked for locking via the sink.
        assert_eq!(
            t.write(PAddr::new(64 + 4 * 8), 9).unwrap_err(),
            AbortCode::Capacity
        );
    }

    #[test]
    fn zero_aborts_are_injected_probabilistically() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let rt = HtmRuntime::new(
            mem,
            HtmConfig::skylake().with_zero_aborts(1.0, 3),
            Arc::new(BreakdownRecorder::new()),
        );
        let mut zero_seen = false;
        for _ in 0..8 {
            let mut t = rt.begin(0);
            let mut failed = None;
            for i in 0..64 {
                if let Err(e) = t.write(PAddr::new(64 + i), 1) {
                    failed = Some(e);
                    break;
                }
            }
            let outcome = match failed {
                Some(code) => Err(code),
                None => t.commit(),
            };
            if outcome == Err(AbortCode::Zero) {
                zero_seen = true;
            }
        }
        assert!(
            zero_seen,
            "with probability 1.0 every transaction is doomed"
        );
    }

    #[test]
    fn nontx_write_aborts_concurrent_transactions_on_that_line() {
        let rt = runtime(HtmConfig::skylake());
        let a = PAddr::new(64);
        let mut t = rt.begin(0);
        t.read(a).unwrap();
        rt.nontx_write(a, 77);
        assert_eq!(rt.nontx_read(a), 77);
        assert_eq!(t.commit().unwrap_err(), AbortCode::Conflict);
    }

    #[test]
    fn commit_drains_pending_flushes() {
        let rt = runtime(HtmConfig::skylake());
        let a = PAddr::new(64);
        // A previous transaction-ish store, flushed but not drained.
        rt.mem().write(a, 5);
        rt.mem().clwb(0, a);
        assert_eq!(rt.mem().read_persisted(a), 0);
        let mut t = rt.begin(0); // xbegin has SFENCE semantics
        assert_eq!(rt.mem().read_persisted(a), 5);
        t.write(PAddr::new(128), 1).unwrap();
        t.commit().unwrap();
    }

    #[test]
    fn abandoned_transaction_counts_as_explicit_abort() {
        let rt = runtime(HtmConfig::skylake());
        {
            let mut t = rt.begin(0);
            t.write(PAddr::new(64), 1).unwrap();
            // dropped without commit
        }
        let s = rt.recorder().snapshot();
        assert_eq!(s.hw(HwTxnOutcome::Explicit), 1);
    }

    #[test]
    fn failed_transaction_rejects_further_use() {
        let rt = runtime(HtmConfig::skylake());
        let mut t = rt.begin(0);
        t.abort_explicit(1);
        assert!(t.read(PAddr::new(64)).is_err());
        assert!(t.write(PAddr::new(64), 1).is_err());
    }

    #[test]
    fn concurrent_increments_preserve_atomicity() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let rt = Arc::new(HtmRuntime::new(
            Arc::clone(&mem),
            HtmConfig::skylake(),
            Arc::new(BreakdownRecorder::new()),
        ));
        let counter = PAddr::new(64);
        let threads = 4;
        let increments_per_thread = 500;
        crossbeam::scope(|s| {
            for tid in 0..threads {
                let rt = Arc::clone(&rt);
                s.spawn(move |_| {
                    for _ in 0..increments_per_thread {
                        loop {
                            let mut t = rt.begin(tid);
                            let ok = (|| {
                                let v = t.read(counter)?;
                                t.write(counter, v + 1)?;
                                Ok::<_, AbortCode>(())
                            })();
                            if ok.is_ok() && t.commit().is_ok() {
                                break;
                            }
                        }
                    }
                });
            }
        })
        .expect("scoped threads");
        assert_eq!(mem.read(counter), (threads * increments_per_thread) as u64);
    }
}
