//! Retry helpers for speculative execution with a software fallback.
//!
//! Commodity HTM gives no progress guarantee, so every use of it needs a
//! retry-then-fall-back policy (Section 4.4). Engines implement their own
//! policies where the structure is complex (Crafty's phase machine); this
//! module provides the simple "retry N times, then report" loop used by the
//! Non-durable baseline and by tests.

use crafty_common::TxAbort;

use crate::runtime::{AbortCode, HtmRuntime, HwTxn};

/// How many times to retry a hardware transaction before giving up.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Maximum attempts (including the first) before falling back.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// The default used throughout the reproduction: 8 attempts, matching
    /// the "retries an aborted transaction several times" behaviour in the
    /// paper before taking the SGL.
    pub const fn standard() -> Self {
        RetryPolicy { max_attempts: 8 }
    }

    /// A policy with a custom attempt budget.
    pub const fn attempts(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// The result of [`run_with_retries`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RetryResult {
    /// The body committed in a hardware transaction after `attempts` tries.
    Committed {
        /// Number of hardware transactions attempted (≥ 1).
        attempts: u32,
    },
    /// All attempts aborted; the last abort code is reported and the caller
    /// must fall back (e.g. to a global lock).
    ExhaustedRetries {
        /// Number of hardware transactions attempted.
        attempts: u32,
        /// The abort code of the final attempt.
        last: AbortCode,
    },
}

impl RetryResult {
    /// True if the body committed speculatively.
    pub fn committed(&self) -> bool {
        matches!(self, RetryResult::Committed { .. })
    }

    /// Number of hardware transactions attempted.
    pub fn attempts(&self) -> u32 {
        match self {
            RetryResult::Committed { attempts }
            | RetryResult::ExhaustedRetries { attempts, .. } => *attempts,
        }
    }
}

/// Runs `body` inside a hardware transaction, retrying up to the policy's
/// budget. The body receives the live transaction and should return
/// `Ok(())` to request a commit or `Err(TxAbort)` to abort explicitly.
pub fn run_with_retries(
    htm: &HtmRuntime,
    tid: usize,
    policy: RetryPolicy,
    body: &mut dyn FnMut(&mut HwTxn<'_>) -> Result<(), TxAbort>,
) -> RetryResult {
    let mut last = AbortCode::Zero;
    for attempt in 1..=policy.max_attempts.max(1) {
        let mut txn = htm.begin(tid);
        match body(&mut txn) {
            Ok(()) => match txn.commit() {
                Ok(_) => return RetryResult::Committed { attempts: attempt },
                Err(code) => last = code,
            },
            Err(_) => {
                last = txn.abort_explicit(u32::MAX);
            }
        }
    }
    RetryResult::ExhaustedRetries {
        attempts: policy.max_attempts.max(1),
        last,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_common::{BreakdownRecorder, PAddr};
    use crafty_pmem::{MemorySpace, PmemConfig};
    use std::sync::Arc;

    fn runtime() -> HtmRuntime {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        HtmRuntime::new(
            mem,
            crate::HtmConfig::skylake(),
            Arc::new(BreakdownRecorder::new()),
        )
    }

    #[test]
    fn body_commits_on_first_attempt() {
        let rt = runtime();
        let a = PAddr::new(64);
        let result = run_with_retries(&rt, 0, RetryPolicy::standard(), &mut |t| {
            let v = t.read(a).map_err(|_| TxAbort::hardware())?;
            t.write(a, v + 1).map_err(|_| TxAbort::hardware())?;
            Ok(())
        });
        assert_eq!(result, RetryResult::Committed { attempts: 1 });
        assert_eq!(rt.mem().read(a), 1);
    }

    #[test]
    fn persistent_user_abort_exhausts_retries() {
        let rt = runtime();
        let result = run_with_retries(&rt, 0, RetryPolicy::attempts(3), &mut |_t| {
            Err(TxAbort::user())
        });
        assert_eq!(result.attempts(), 3);
        assert!(!result.committed());
        match result {
            RetryResult::ExhaustedRetries { last, .. } => {
                assert!(matches!(last, AbortCode::Explicit(_)));
            }
            RetryResult::Committed { .. } => panic!("must not commit"),
        }
    }

    #[test]
    fn transient_aborts_are_retried() {
        let rt = runtime();
        let a = PAddr::new(64);
        let mut failures_left = 2;
        let result = run_with_retries(&rt, 0, RetryPolicy::standard(), &mut |t| {
            if failures_left > 0 {
                failures_left -= 1;
                return Err(TxAbort::user());
            }
            t.write(a, 9).map_err(|_| TxAbort::hardware())?;
            Ok(())
        });
        assert_eq!(result, RetryResult::Committed { attempts: 3 });
        assert_eq!(rt.mem().read(a), 9);
    }

    #[test]
    fn policy_defaults() {
        assert_eq!(RetryPolicy::default(), RetryPolicy::standard());
        assert_eq!(RetryPolicy::attempts(5).max_attempts, 5);
    }
}
