//! Reusable per-thread transaction descriptor state.
//!
//! Real HTM/STM runtimes keep one transaction descriptor per thread and
//! reuse it across transactions (cf. phasedTM's `__thread`-local descriptor
//! state); allocating a fresh read set and write buffer per `xbegin` would
//! dwarf the cost of the transaction itself. This module provides the
//! same discipline for the simulated RTM:
//!
//! * [`GenSet`] / [`GenMap`] — generation-stamped open-addressed tables
//!   with O(1) clear. They originated here and now live in
//!   [`crafty_common::genset`], shared with the persistence domain's
//!   flush-queue dedup; they are re-exported for compatibility.
//! * [`TxnScratch`] — everything a hardware transaction needs (read set,
//!   write buffer, write order, distinct-write-line tracking, commit lock
//!   buffer, per-thread RNG), checked out of the runtime at
//!   [`crate::HtmRuntime::begin`] and returned when the transaction ends.
//!
//! In steady state a committed transaction performs **zero heap
//! allocations**: every structure here retains its capacity across reuse.

use crafty_common::{LineId, PAddr, SplitMix64};

pub use crafty_common::{GenMap, GenSet};

const INITIAL_CAPACITY: usize = 64;

/// A reusable hardware-transaction descriptor: the read set, write buffer,
/// and commit-time buffers of one in-flight transaction, plus the thread's
/// spurious-abort RNG stream.
///
/// One `TxnScratch` lives per thread slot in the runtime; `begin(tid)`
/// checks it out (resetting it in O(1)) and the transaction returns it when
/// dropped. All capacity survives reuse, so steady-state transactions
/// allocate nothing.
#[derive(Debug)]
pub struct TxnScratch {
    /// Distinct lines read (keys are `LineId::index` values).
    pub(crate) read_set: GenSet,
    /// The same distinct read lines in insertion order, so commit-time
    /// read validation walks exactly `len` entries instead of scanning the
    /// whole table (which never shrinks after a large transaction).
    pub(crate) read_order: Vec<u64>,
    /// Buffered word writes (`PAddr::word` → value).
    pub(crate) write_buf: GenMap,
    /// First-write order of distinct written words (publication order).
    pub(crate) write_order: Vec<PAddr>,
    /// Distinct lines to lock at commit (data writes and version sinks),
    /// deduplicated incrementally as writes arrive.
    pub(crate) write_lines: GenSet,
    /// Distinct lines written by *data* writes only — the set the HTM
    /// write-capacity check counts, matching the pre-descriptor semantics
    /// where version-sink lines never counted toward capacity.
    pub(crate) data_lines: GenSet,
    /// The same distinct lines in insertion order; sorted in place at
    /// commit to give the canonical lock order.
    pub(crate) line_order: Vec<LineId>,
    /// Addresses to receive the commit version.
    pub(crate) version_sinks: Vec<PAddr>,
    /// CLWBs to enqueue atomically with the commit, at most one per line
    /// (deduplicated incrementally through `flush_lines`).
    pub(crate) flush_requests: Vec<PAddr>,
    /// Distinct lines already covered by `flush_requests`: a transaction
    /// that writes several words of one line requests a single commit-time
    /// CLWB for it, so the commit's critical section performs one
    /// flush-queue interaction per touched line (the line's dirty-word
    /// mask, maintained by the memory space, records which words the
    /// eventual drain must copy).
    pub(crate) flush_lines: GenSet,
    /// Lines locked so far during a commit attempt (for rollback).
    pub(crate) locked: Vec<LineId>,
    /// The thread's private spurious-abort stream (see
    /// [`crate::HtmRuntime::begin`] for the seeding discipline).
    pub(crate) zero_rng: SplitMix64,
    /// Lifetime count of hardware transactions begun by this thread —
    /// *not* cleared by `reset`. Drives the phase of abort-storm
    /// injection ([`crate::HtmConfig::storm_burst`]).
    pub(crate) begin_count: u64,
}

impl TxnScratch {
    /// Creates a descriptor whose zero-abort stream is seeded for one
    /// thread. `rng_seed` must be unique per thread for independent
    /// streams; the runtime derives it from the configured seed and the
    /// thread id.
    pub(crate) fn new(rng_seed: u64) -> Self {
        TxnScratch {
            read_set: GenSet::new(),
            read_order: Vec::with_capacity(INITIAL_CAPACITY),
            write_buf: GenMap::new(),
            write_order: Vec::with_capacity(INITIAL_CAPACITY),
            write_lines: GenSet::new(),
            data_lines: GenSet::new(),
            line_order: Vec::with_capacity(INITIAL_CAPACITY),
            version_sinks: Vec::with_capacity(4),
            flush_requests: Vec::with_capacity(INITIAL_CAPACITY),
            flush_lines: GenSet::new(),
            locked: Vec::with_capacity(INITIAL_CAPACITY),
            zero_rng: SplitMix64::new(rng_seed),
            begin_count: 0,
        }
    }

    /// Readies the descriptor for a fresh transaction. O(1): the hash
    /// tables clear by generation bump and the `Vec`s keep their capacity.
    pub(crate) fn reset(&mut self) {
        self.read_set.clear();
        self.read_order.clear();
        self.write_buf.clear();
        self.write_order.clear();
        self.write_lines.clear();
        self.data_lines.clear();
        self.line_order.clear();
        self.version_sinks.clear();
        self.flush_requests.clear();
        self.flush_lines.clear();
        self.locked.clear();
    }

    /// Total slot capacity across the descriptor's tables and buffers.
    /// Stable across transactions once the workload's footprint has been
    /// seen — asserted by the zero-allocation tests.
    pub fn capacity_signature(&self) -> usize {
        self.read_set.slot_capacity()
            + self.write_buf.slot_capacity()
            + self.write_lines.slot_capacity()
            + self.data_lines.slot_capacity()
            + self.read_order.capacity()
            + self.write_order.capacity()
            + self.line_order.capacity()
            + self.version_sinks.capacity()
            + self.flush_requests.capacity()
            + self.flush_lines.slot_capacity()
            + self.locked.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_reset_preserves_capacity_signature() {
        let mut scratch = TxnScratch::new(7);
        for k in 0..300u64 {
            scratch.read_set.insert(k);
            scratch.write_buf.insert(k, k);
            scratch.write_order.push(PAddr::new(k));
            scratch.write_lines.insert(k);
            scratch.line_order.push(LineId::new(k));
        }
        scratch.reset();
        let sig = scratch.capacity_signature();
        for _ in 0..1000 {
            scratch.reset();
            scratch.read_set.insert(3);
            scratch.write_buf.insert(3, 4);
        }
        assert_eq!(scratch.capacity_signature(), sig);
    }
}
