//! Reusable per-thread transaction descriptor state.
//!
//! Real HTM/STM runtimes keep one transaction descriptor per thread and
//! reuse it across transactions (cf. phasedTM's `__thread`-local descriptor
//! state); allocating a fresh read set and write buffer per `xbegin` would
//! dwarf the cost of the transaction itself. This module provides the
//! same discipline for the simulated RTM:
//!
//! * [`GenSet`] / [`GenMap`] — open-addressed hash tables backed by plain
//!   `Vec`s whose slots are stamped with a *generation* counter. Clearing
//!   is O(1): bump the generation and every slot becomes logically empty.
//!   Growth doubles the table (the only allocation, and only until the
//!   table reaches the workload's steady-state footprint).
//! * [`TxnScratch`] — everything a hardware transaction needs (read set,
//!   write buffer, write order, distinct-write-line tracking, commit lock
//!   buffer, per-thread RNG), checked out of the runtime at
//!   [`crate::HtmRuntime::begin`] and returned when the transaction ends.
//!
//! In steady state a committed transaction performs **zero heap
//! allocations**: every structure here retains its capacity across reuse.

use crafty_common::{LineId, PAddr, SplitMix64};

/// Multiplicative hash spreading keys across the table (Fibonacci hashing).
#[inline]
fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

const INITIAL_CAPACITY: usize = 64;
/// Grow when occupancy passes 3/4.
const LOAD_NUM: usize = 3;
const LOAD_DEN: usize = 4;

/// An open-addressed hash set of `u64` keys with O(1) generation clear.
#[derive(Clone, Debug)]
pub struct GenSet {
    /// Generation stamp per slot; a slot is occupied iff its stamp equals
    /// the set's current generation.
    gens: Vec<u64>,
    keys: Vec<u64>,
    gen: u64,
    len: usize,
}

impl GenSet {
    /// Creates an empty set with the default initial capacity.
    pub fn new() -> Self {
        GenSet::with_capacity(INITIAL_CAPACITY)
    }

    /// Creates an empty set able to hold roughly `capacity` keys before
    /// growing. The table size is the next power of two above
    /// `capacity * 4/3`.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(4) * LOAD_DEN / LOAD_NUM).next_power_of_two();
        GenSet {
            gens: vec![0; slots],
            // Generation 0 is never "current" (gen starts at 1), so fresh
            // slots read as empty without an extra init pass.
            keys: vec![0; slots],
            gen: 1,
            len: 0,
        }
    }

    /// Number of keys currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set holds no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The table's slot count (stable across [`GenSet::clear`]; used by
    /// tests asserting steady-state capacity stability).
    pub fn slot_capacity(&self) -> usize {
        self.gens.len()
    }

    /// Logically empties the set in O(1) by advancing the generation.
    #[inline]
    pub fn clear(&mut self) {
        self.gen += 1;
        self.len = 0;
    }

    /// The slot holding `key`, or the empty slot where it would go.
    /// Termination is guaranteed because the load factor stays below 1.
    #[inline]
    fn find_slot(&self, key: u64) -> (usize, bool) {
        let mask = (self.gens.len() - 1) as u64;
        let mut i = (spread(key) & mask) as usize;
        loop {
            if self.gens[i] != self.gen {
                return (i, false);
            }
            if self.keys[i] == key {
                return (i, true);
            }
            i = (i + 1) & mask as usize;
        }
    }

    /// Inserts `key`; returns `true` if it was not already present.
    /// Probes before the load check, so a duplicate insert never grows the
    /// table.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        let (mut slot, found) = self.find_slot(key);
        if found {
            return false;
        }
        if (self.len + 1) * LOAD_DEN >= self.gens.len() * LOAD_NUM {
            self.grow();
            slot = self.find_slot(key).0;
        }
        self.gens[slot] = self.gen;
        self.keys[slot] = key;
        self.len += 1;
        true
    }

    /// True if `key` is in the set.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.find_slot(key).1
    }

    /// Iterates the keys (in table order, not insertion order).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.gens
            .iter()
            .zip(&self.keys)
            .filter(move |(g, _)| **g == self.gen)
            .map(|(_, k)| *k)
    }

    #[cold]
    fn grow(&mut self) {
        let new_slots = self.gens.len() * 2;
        let mut bigger = GenSet {
            gens: vec![0; new_slots],
            keys: vec![0; new_slots],
            gen: 1,
            len: 0,
        };
        for key in self.iter() {
            // Re-insert without the load check: the doubled table fits.
            let mask = (new_slots - 1) as u64;
            let mut i = (spread(key) & mask) as usize;
            while bigger.gens[i] == bigger.gen {
                i = (i + 1) & mask as usize;
            }
            bigger.gens[i] = bigger.gen;
            bigger.keys[i] = key;
            bigger.len += 1;
        }
        *self = bigger;
    }
}

impl Default for GenSet {
    fn default() -> Self {
        GenSet::new()
    }
}

/// An open-addressed `u64 → u64` hash map with O(1) generation clear.
#[derive(Clone, Debug)]
pub struct GenMap {
    gens: Vec<u64>,
    keys: Vec<u64>,
    vals: Vec<u64>,
    gen: u64,
    len: usize,
}

impl GenMap {
    /// Creates an empty map with the default initial capacity.
    pub fn new() -> Self {
        GenMap::with_capacity(INITIAL_CAPACITY)
    }

    /// Creates an empty map able to hold roughly `capacity` entries before
    /// growing.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(4) * LOAD_DEN / LOAD_NUM).next_power_of_two();
        GenMap {
            gens: vec![0; slots],
            keys: vec![0; slots],
            vals: vec![0; slots],
            gen: 1,
            len: 0,
        }
    }

    /// Number of entries currently in the map.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The table's slot count (stable across [`GenMap::clear`]).
    pub fn slot_capacity(&self) -> usize {
        self.gens.len()
    }

    /// Logically empties the map in O(1) by advancing the generation.
    #[inline]
    pub fn clear(&mut self) {
        self.gen += 1;
        self.len = 0;
    }

    /// The slot holding `key`, or the empty slot where it would go.
    /// Termination is guaranteed because the load factor stays below 1.
    #[inline]
    fn find_slot(&self, key: u64) -> (usize, bool) {
        let mask = (self.gens.len() - 1) as u64;
        let mut i = (spread(key) & mask) as usize;
        loop {
            if self.gens[i] != self.gen {
                return (i, false);
            }
            if self.keys[i] == key {
                return (i, true);
            }
            i = (i + 1) & mask as usize;
        }
    }

    /// Inserts or overwrites; returns the previous value if the key was
    /// present. Probes before the load check, so an overwrite never grows
    /// the table.
    #[inline]
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        let (mut slot, found) = self.find_slot(key);
        if found {
            let old = self.vals[slot];
            self.vals[slot] = value;
            return Some(old);
        }
        if (self.len + 1) * LOAD_DEN >= self.gens.len() * LOAD_NUM {
            self.grow();
            slot = self.find_slot(key).0;
        }
        self.gens[slot] = self.gen;
        self.keys[slot] = key;
        self.vals[slot] = value;
        self.len += 1;
        None
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        let (slot, found) = self.find_slot(key);
        found.then(|| self.vals[slot])
    }

    #[cold]
    fn grow(&mut self) {
        let new_slots = self.gens.len() * 2;
        let mut bigger = GenMap {
            gens: vec![0; new_slots],
            keys: vec![0; new_slots],
            vals: vec![0; new_slots],
            gen: 1,
            len: 0,
        };
        for i in 0..self.gens.len() {
            if self.gens[i] != self.gen {
                continue;
            }
            let mask = (new_slots - 1) as u64;
            let mut j = (spread(self.keys[i]) & mask) as usize;
            while bigger.gens[j] == bigger.gen {
                j = (j + 1) & mask as usize;
            }
            bigger.gens[j] = bigger.gen;
            bigger.keys[j] = self.keys[i];
            bigger.vals[j] = self.vals[i];
            bigger.len += 1;
        }
        *self = bigger;
    }
}

impl Default for GenMap {
    fn default() -> Self {
        GenMap::new()
    }
}

/// A reusable hardware-transaction descriptor: the read set, write buffer,
/// and commit-time buffers of one in-flight transaction, plus the thread's
/// spurious-abort RNG stream.
///
/// One `TxnScratch` lives per thread slot in the runtime; `begin(tid)`
/// checks it out (resetting it in O(1)) and the transaction returns it when
/// dropped. All capacity survives reuse, so steady-state transactions
/// allocate nothing.
#[derive(Debug)]
pub struct TxnScratch {
    /// Distinct lines read (keys are `LineId::index` values).
    pub(crate) read_set: GenSet,
    /// The same distinct read lines in insertion order, so commit-time
    /// read validation walks exactly `len` entries instead of scanning the
    /// whole table (which never shrinks after a large transaction).
    pub(crate) read_order: Vec<u64>,
    /// Buffered word writes (`PAddr::word` → value).
    pub(crate) write_buf: GenMap,
    /// First-write order of distinct written words (publication order).
    pub(crate) write_order: Vec<PAddr>,
    /// Distinct lines to lock at commit (data writes and version sinks),
    /// deduplicated incrementally as writes arrive.
    pub(crate) write_lines: GenSet,
    /// Distinct lines written by *data* writes only — the set the HTM
    /// write-capacity check counts, matching the pre-descriptor semantics
    /// where version-sink lines never counted toward capacity.
    pub(crate) data_lines: GenSet,
    /// The same distinct lines in insertion order; sorted in place at
    /// commit to give the canonical lock order.
    pub(crate) line_order: Vec<LineId>,
    /// Addresses to receive the commit version.
    pub(crate) version_sinks: Vec<PAddr>,
    /// CLWBs to enqueue atomically with the commit.
    pub(crate) flush_requests: Vec<PAddr>,
    /// Lines locked so far during a commit attempt (for rollback).
    pub(crate) locked: Vec<LineId>,
    /// The thread's private spurious-abort stream (see
    /// [`crate::HtmRuntime::begin`] for the seeding discipline).
    pub(crate) zero_rng: SplitMix64,
}

impl TxnScratch {
    /// Creates a descriptor whose zero-abort stream is seeded for one
    /// thread. `rng_seed` must be unique per thread for independent
    /// streams; the runtime derives it from the configured seed and the
    /// thread id.
    pub(crate) fn new(rng_seed: u64) -> Self {
        TxnScratch {
            read_set: GenSet::new(),
            read_order: Vec::with_capacity(INITIAL_CAPACITY),
            write_buf: GenMap::new(),
            write_order: Vec::with_capacity(INITIAL_CAPACITY),
            write_lines: GenSet::new(),
            data_lines: GenSet::new(),
            line_order: Vec::with_capacity(INITIAL_CAPACITY),
            version_sinks: Vec::with_capacity(4),
            flush_requests: Vec::with_capacity(INITIAL_CAPACITY),
            locked: Vec::with_capacity(INITIAL_CAPACITY),
            zero_rng: SplitMix64::new(rng_seed),
        }
    }

    /// Readies the descriptor for a fresh transaction. O(1): the hash
    /// tables clear by generation bump and the `Vec`s keep their capacity.
    pub(crate) fn reset(&mut self) {
        self.read_set.clear();
        self.read_order.clear();
        self.write_buf.clear();
        self.write_order.clear();
        self.write_lines.clear();
        self.data_lines.clear();
        self.line_order.clear();
        self.version_sinks.clear();
        self.flush_requests.clear();
        self.locked.clear();
    }

    /// Total slot capacity across the descriptor's tables and buffers.
    /// Stable across transactions once the workload's footprint has been
    /// seen — asserted by the zero-allocation tests.
    pub fn capacity_signature(&self) -> usize {
        self.read_set.slot_capacity()
            + self.write_buf.slot_capacity()
            + self.write_lines.slot_capacity()
            + self.data_lines.slot_capacity()
            + self.read_order.capacity()
            + self.write_order.capacity()
            + self.line_order.capacity()
            + self.version_sinks.capacity()
            + self.flush_requests.capacity()
            + self.locked.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genset_insert_contains_and_clear() {
        let mut s = GenSet::new();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert!(s.insert(0), "zero must be a usable key");
        assert_eq!(s.len(), 2);
        s.clear();
        assert_eq!(s.len(), 0);
        assert!(!s.contains(7));
        assert!(!s.contains(0));
        assert!(s.insert(7), "cleared keys are insertable again");
    }

    #[test]
    fn genset_grows_past_initial_capacity() {
        let mut s = GenSet::with_capacity(4);
        let initial = s.slot_capacity();
        for k in 0..1000 {
            assert!(s.insert(k * 3));
        }
        assert_eq!(s.len(), 1000);
        assert!(s.slot_capacity() > initial);
        for k in 0..1000 {
            assert!(s.contains(k * 3), "key {} lost in growth", k * 3);
        }
        let mut collected: Vec<u64> = s.iter().collect();
        collected.sort_unstable();
        assert_eq!(collected, (0..1000).map(|k| k * 3).collect::<Vec<_>>());
    }

    #[test]
    fn genmap_insert_get_overwrite_clear() {
        let mut m = GenMap::new();
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 20), Some(10));
        assert_eq!(m.get(1), Some(20));
        assert_eq!(m.get(2), None);
        assert_eq!(m.insert(0, 5), None, "zero must be a usable key");
        m.clear();
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(0), None);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn genmap_grows_and_keeps_entries() {
        let mut m = GenMap::with_capacity(4);
        for k in 0..500 {
            assert_eq!(m.insert(k, k + 1), None);
        }
        for k in 0..500 {
            assert_eq!(m.get(k), Some(k + 1));
        }
        assert_eq!(m.len(), 500);
    }

    #[test]
    fn clear_is_constant_time_capacity_preserving() {
        let mut s = GenSet::new();
        for k in 0..200 {
            s.insert(k);
        }
        let cap = s.slot_capacity();
        for _ in 0..10_000 {
            s.clear();
            s.insert(1);
        }
        assert_eq!(s.slot_capacity(), cap, "clear must never shrink or grow");
    }

    #[test]
    fn scratch_reset_preserves_capacity_signature() {
        let mut scratch = TxnScratch::new(7);
        for k in 0..300u64 {
            scratch.read_set.insert(k);
            scratch.write_buf.insert(k, k);
            scratch.write_order.push(PAddr::new(k));
            scratch.write_lines.insert(k);
            scratch.line_order.push(LineId::new(k));
        }
        scratch.reset();
        let sig = scratch.capacity_signature();
        for _ in 0..1000 {
            scratch.reset();
            scratch.read_set.insert(3);
            scratch.write_buf.insert(3, 4);
        }
        assert_eq!(scratch.capacity_signature(), sig);
    }
}
