//! Property tests for the open-addressed scratch structures: arbitrary
//! interleavings of insert / lookup / epoch-clear / growth must agree with
//! the std `HashSet` / `HashMap` reference behaviour the structures
//! replaced on the transaction hot path.

use std::collections::{HashMap, HashSet};

use crafty_htm::{GenMap, GenSet};
use proptest::prelude::*;

/// One scripted operation against both the scratch structure and its
/// reference model.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u64, u64),
    Lookup(u64),
    Clear,
}

/// Decodes a draw into an operation. Keys are confined to a small domain
/// so that collisions, duplicate inserts, and probe chains actually occur;
/// every 64th value also throws in a huge key to exercise hashing of sparse
/// addresses.
fn decode_op(raw: u64, value: u64) -> Op {
    let key_small = raw % 97;
    let key = if raw % 64 == 63 {
        key_small.wrapping_mul(0x0040_0000_0000_1001)
    } else {
        key_small
    };
    match raw % 13 {
        // Clears are rare so runs between them grow long enough to force
        // table growth.
        0 => Op::Clear,
        1..=6 => Op::Insert(key, value),
        _ => Op::Lookup(key),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GenSet behaves exactly like a HashSet under arbitrary op sequences.
    #[test]
    fn genset_agrees_with_hashset(seed: u64, ops in 1usize..400) {
        let mut rng = crafty_common::SplitMix64::new(seed);
        let mut ours = GenSet::with_capacity(4); // tiny: forces growth
        let mut reference: HashSet<u64> = HashSet::new();
        for step in 0..ops {
            match decode_op(rng.next_u64(), 0) {
                Op::Insert(key, _) => {
                    let inserted = ours.insert(key);
                    prop_assert_eq!(inserted, reference.insert(key), "step {}", step);
                }
                Op::Lookup(key) => {
                    prop_assert_eq!(ours.contains(key), reference.contains(&key), "step {}", step);
                }
                Op::Clear => {
                    ours.clear();
                    reference.clear();
                }
            }
            prop_assert_eq!(ours.len(), reference.len(), "step {}", step);
        }
        let mut collected: Vec<u64> = ours.iter().collect();
        collected.sort_unstable();
        let mut expected: Vec<u64> = reference.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(collected, expected);
    }

    /// GenMap behaves exactly like a HashMap under arbitrary op sequences,
    /// including overwrite semantics (returning the previous value).
    #[test]
    fn genmap_agrees_with_hashmap(seed: u64, ops in 1usize..400) {
        let mut rng = crafty_common::SplitMix64::new(seed);
        let mut ours = GenMap::with_capacity(4); // tiny: forces growth
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for step in 0..ops {
            let value = rng.next_u64();
            match decode_op(rng.next_u64(), value) {
                Op::Insert(key, value) => {
                    prop_assert_eq!(
                        ours.insert(key, value),
                        reference.insert(key, value),
                        "step {}", step
                    );
                }
                Op::Lookup(key) => {
                    prop_assert_eq!(
                        ours.get(key),
                        reference.get(&key).copied(),
                        "step {}", step
                    );
                }
                Op::Clear => {
                    ours.clear();
                    reference.clear();
                }
            }
            prop_assert_eq!(ours.len(), reference.len(), "step {}", step);
        }
        for (&key, &value) in &reference {
            prop_assert_eq!(ours.get(key), Some(value));
        }
    }

    /// Epoch-clearing never resurrects previous-epoch entries, even after
    /// thousands of generations (the generation counter must not alias).
    #[test]
    fn generations_never_alias(seed: u64) {
        let mut rng = crafty_common::SplitMix64::new(seed);
        let mut set = GenSet::with_capacity(8);
        let mut map = GenMap::with_capacity(8);
        for _gen in 0..2000 {
            let key = rng.next_u64() % 31;
            prop_assert!(!set.contains(key), "stale key visible after clear");
            prop_assert_eq!(map.get(key), None, "stale entry visible after clear");
            set.insert(key);
            map.insert(key, key + 1);
            prop_assert!(set.contains(key));
            prop_assert_eq!(map.get(key), Some(key + 1));
            set.clear();
            map.clear();
        }
    }
}
