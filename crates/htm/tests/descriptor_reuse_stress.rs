//! Multi-thread stress test: transaction isolation is unchanged by
//! descriptor reuse. Threads repeatedly run read-modify-write transactions
//! through the same per-thread descriptors (thousands of checkouts each),
//! with overlapping footprints, and every invariant a fresh-allocation
//! implementation provided must still hold.

use std::sync::Arc;

use crafty_common::{BreakdownRecorder, SplitMix64};
use crafty_htm::{AbortCode, HtmConfig, HtmRuntime};
use crafty_pmem::{MemorySpace, PmemConfig};

#[test]
fn isolation_holds_across_descriptor_reuse() {
    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    let rt = Arc::new(HtmRuntime::new(
        Arc::clone(&mem),
        HtmConfig::skylake(),
        Arc::new(BreakdownRecorder::new()),
    ));
    // Shared counters on distinct lines plus one hot shared cell.
    let hot = mem.reserve_persistent(1);
    let cells = mem.reserve_persistent(4 * 8);
    let threads = 4;
    let txns_per_thread = 2_000;

    crossbeam::scope(|s| {
        for tid in 0..threads {
            let rt = Arc::clone(&rt);
            s.spawn(move |_| {
                let mut rng = SplitMix64::new(tid as u64 + 99);
                for _ in 0..txns_per_thread {
                    loop {
                        let mut txn = rt.begin(tid);
                        let ok = (|| {
                            // Increment the hot cell and a random per-line
                            // cell inside one transaction; read a third cell
                            // to keep a non-trivial read set.
                            let h = txn.read(hot)?;
                            let pick = rng.next_below(4);
                            let cell = cells.add(pick * 8);
                            let c = txn.read(cell)?;
                            let _ = txn.read(cells.add(((pick + 1) % 4) * 8))?;
                            txn.write(hot, h + 1)?;
                            txn.write(cell, c + 1)?;
                            Ok::<_, AbortCode>(())
                        })();
                        if ok.is_ok() && txn.commit().is_ok() {
                            break;
                        }
                    }
                }
            });
        }
    })
    .expect("stress workers");

    // Atomicity: the hot counter saw every increment exactly once, and the
    // per-cell counters sum to the same transaction count.
    let expected = (threads * txns_per_thread) as u64;
    assert_eq!(
        mem.read(hot),
        expected,
        "lost or duplicated hot-cell updates"
    );
    let cell_sum: u64 = (0..4).map(|i| mem.read(cells.add(i * 8))).sum();
    assert_eq!(cell_sum, expected, "lost or duplicated cell updates");
}

#[test]
fn abandoned_and_aborted_transactions_leave_clean_descriptors() {
    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    let rt = HtmRuntime::new(
        Arc::clone(&mem),
        HtmConfig::skylake(),
        Arc::new(BreakdownRecorder::new()),
    );
    let a = mem.reserve_persistent(1);
    let b = mem.reserve_persistent(1);
    for round in 0..500u64 {
        // Abandon a transaction with buffered state...
        {
            let mut txn = rt.begin(0);
            txn.write(a, round).unwrap();
            txn.write(b, round).unwrap();
            let _ = txn.read(a).unwrap();
            // dropped uncommitted
        }
        // ...then explicitly abort one...
        {
            let mut txn = rt.begin(0);
            txn.write(a, 4_000 + round).unwrap();
            txn.abort_explicit(7);
        }
        // ...and verify the reused descriptor carries nothing over: the
        // next transaction sees only committed state and commits cleanly.
        let mut txn = rt.begin(0);
        assert_eq!(
            txn.read(a).unwrap(),
            if round == 0 { 0 } else { round - 1 + 1000 }
        );
        txn.write(a, round + 1000).unwrap();
        txn.commit().unwrap();
        assert_eq!(mem.read(a), round + 1000);
        assert_eq!(mem.read(b), 0, "abandoned buffered write leaked");
    }
}
