//! Teeth test for the hardware fast path's fallback-lock subscription.
//!
//! The per-line fallback's correctness argument has one load-bearing HTM
//! ingredient: hardware transactions **subscribe to the lock words of the
//! lines they read**, so a fallback holding [`FALLBACK_BIT`] on a line
//! aborts every hardware transaction that touches it — exactly as the old
//! design's global SGL subscription did, but only where the fallback
//! actually writes.
//!
//! Tests that only exercise the protected configuration cannot tell a
//! working subscription from a workload that never conflicts. So, like
//! `no-session-dedup` for the server's replay dedup, the
//! `no-fallback-subscription` cargo feature compiles the fallback bit OUT
//! of the fast path's subscription (reads, commit locking, and commit
//! validation stop observing it; the non-transactional paths still honor
//! it), and this file flips polarity with the feature:
//!
//! * default build — the conflict choreography and the mixed
//!   fallback/hardware stress must PASS (locked lines abort hardware
//!   readers; counts stay exact);
//! * `--features no-fallback-subscription` — the same choreography must
//!   produce the failure the subscription exists to prevent: a hardware
//!   transaction reads straight through a held fallback lock, commits,
//!   and its update is lost when the fallback publishes. The test asserts
//!   the lost update *happens*, deterministically — proving the teeth are
//!   real and the protection is the subscription, not an accident of
//!   scheduling.

use std::sync::Arc;

use crafty_common::BreakdownRecorder;
use crafty_htm::{HtmConfig, HtmRuntime};
use crafty_pmem::{MemorySpace, PmemConfig};

fn runtime() -> (Arc<MemorySpace>, HtmRuntime) {
    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    let rt = HtmRuntime::new(
        Arc::clone(&mem),
        HtmConfig::skylake(),
        Arc::new(BreakdownRecorder::new()),
    );
    (mem, rt)
}

/// The conflict choreography both builds share, probing the lock-hold
/// window that only the subscription protects. A fallback blind-writes
/// `x` (no read — so its own commit-time validation is out of play),
/// locks it, publishes, and *while the lock is still held*:
///
/// 1. a hardware transaction reads `x` — with the subscription this is a
///    conflict abort; without it, a **dirty read** of the not-yet-stamped
///    publish (`60`);
/// 2. a hardware transaction blind-writes `x = 70` and commits — with the
///    subscription its commit-time try-lock sees the held line and
///    aborts; without it, the commit **clobbers** the fallback's write
///    inside the lock window.
///
/// Returns `(final_x, dirty_read, clobber_committed)`.
fn run_choreography() -> (u64, Option<u64>, bool) {
    let (mem, rt) = runtime();
    let x = mem.reserve_persistent(1);
    rt.nontx_write(x, 100);

    let mut fb = rt.begin_fallback(0);
    fb.write(x, 60);
    fb.lock_write_set();
    fb.validate_reads()
        .expect("empty read set always validates");
    fb.publish();

    // Probe 1: a hardware read of the locked, just-published line.
    let dirty_read = {
        let mut txn = rt.begin(1);
        txn.read(x).ok()
        // Dropped uncommitted either way; only the read outcome matters.
    };

    // Probe 2: a hardware blind write trying to commit into the window.
    let clobber_committed = {
        let mut txn = rt.begin(1);
        txn.write(x, 70).expect("buffered write never conflicts");
        txn.commit().is_ok()
    };

    fb.commit_release();
    (rt.nontx_read(x), dirty_read, clobber_committed)
}

/// Protected build: both probes must abort — the held fallback lock is
/// part of every hardware transaction's read subscription and commit
/// try-lock — and the fallback's write is the only update that lands.
#[cfg(not(feature = "no-fallback-subscription"))]
#[test]
fn fallback_held_lines_abort_hardware_readers_and_committers() {
    let (final_x, dirty_read, clobber_committed) = run_choreography();
    assert_eq!(
        dirty_read, None,
        "a hardware transaction read straight through a held fallback lock"
    );
    assert!(
        !clobber_committed,
        "a hardware commit write-locked a line the fallback holds"
    );
    assert_eq!(final_x, 60, "only the fallback's write applies");
}

/// Teeth build: with the subscription compiled out, the identical
/// choreography MUST exhibit both failures — the hardware read observes
/// the uncommitted publish (dirty read), and the hardware commit clobbers
/// the fallback's write inside its lock window (lost update). If this
/// test ever fails, the feature no longer disables anything and the
/// protected-build test proves nothing.
#[cfg(feature = "no-fallback-subscription")]
#[test]
fn missing_subscription_admits_dirty_reads_and_lost_updates() {
    let (final_x, dirty_read, clobber_committed) = run_choreography();
    assert_eq!(
        dirty_read,
        Some(60),
        "the hardware read was expected to observe the uncommitted publish"
    );
    assert!(
        clobber_committed,
        "the hardware commit was expected to lock through the fallback's hold"
    );
    assert_eq!(
        final_x, 70,
        "the fallback's write must be clobbered inside its own lock window \
         (a lost update) — got {final_x}"
    );
}

/// Protected build only: a mixed stress — hardware increments racing
/// software fallback increments on shared cells — must keep counts exact.
/// Under `no-fallback-subscription` this invariant does not hold (that is
/// the point of the feature), so the stress is compiled out rather than
/// left to fail nondeterministically; the deterministic choreography
/// above is the teeth assertion.
#[cfg(not(feature = "no-fallback-subscription"))]
#[test]
fn mixed_fallback_and_hardware_stress_keeps_counts_exact() {
    use crafty_common::SplitMix64;

    let (mem, rt) = runtime();
    let rt = Arc::new(rt);
    let cells = mem.reserve_persistent(4 * 8);
    let threads = 4;
    let txns_per_thread = 1_000;

    crossbeam::scope(|s| {
        for tid in 0..threads {
            let rt = Arc::clone(&rt);
            s.spawn(move |_| {
                let mut rng = SplitMix64::new(0xBEA7 + tid as u64);
                for i in 0..txns_per_thread {
                    let cell = cells.add(rng.next_below(4) * 8);
                    // Half the threads go through the software fallback,
                    // half through hardware transactions, all contending.
                    if tid % 2 == 0 {
                        loop {
                            let mut fb = rt.begin_fallback(tid);
                            let Ok(v) = fb.read(cell) else { continue };
                            fb.write(cell, v + 1);
                            fb.lock_write_set();
                            if fb.validate_reads().is_err() {
                                continue;
                            }
                            fb.publish();
                            fb.commit_release();
                            break;
                        }
                    } else {
                        loop {
                            let mut txn = rt.begin(tid);
                            let Ok(v) = txn.read(cell) else { continue };
                            if txn.write(cell, v + 1).is_err() {
                                continue;
                            }
                            if txn.commit().is_ok() {
                                break;
                            }
                        }
                    }
                    // Keep the interleaving varied.
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }
    })
    .expect("stress workers");

    let total: u64 = (0..4).map(|i| mem.read(cells.add(i * 8))).sum();
    assert_eq!(
        total,
        (threads * txns_per_thread) as u64,
        "lost or duplicated updates in the fallback/hardware mix"
    );
}
