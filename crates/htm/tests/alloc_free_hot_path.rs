//! Verifies the headline property of the reusable descriptor design: in
//! steady state, a committed hardware transaction performs **zero heap
//! allocations**. A counting global allocator observes the begin → read →
//! write → commit cycle after a warmup phase that lets every scratch
//! structure reach its steady-state capacity.
//!
//! The counter is per-thread: the libtest harness's main thread blocks on
//! an event channel while the test thread runs and may allocate at any
//! moment (mpmc waker registration), so a process-global count races
//! against the harness on small machines.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use crafty_common::{BreakdownRecorder, PAddr};
use crafty_htm::{HtmConfig, HtmRuntime};
use crafty_pmem::{MemorySpace, PmemConfig};

std::thread_local! {
    /// Allocations made by the current thread. Const-initialized so the
    /// thread-local itself never allocates on first use.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// One bank-like transfer between two accounts spread over distinct lines,
/// through the full transactional API (reads, buffered writes, commit-time
/// flush requests).
fn transfer(rt: &HtmRuntime, tid: usize, accounts: PAddr, from: u64, to: u64) {
    loop {
        let mut txn = rt.begin(tid);
        let result = (|| {
            // Sequential read-modify-write pairs, so `from == to` is a
            // harmless no-op (the second read observes the buffered write).
            let a = txn.read(accounts.add(from * 8))?;
            txn.write(accounts.add(from * 8), a.wrapping_sub(1))?;
            let b = txn.read(accounts.add(to * 8))?;
            txn.write(accounts.add(to * 8), b.wrapping_add(1))?;
            txn.flush_on_commit(accounts.add(from * 8))?;
            txn.flush_on_commit(accounts.add(to * 8))?;
            Ok::<_, crafty_htm::AbortCode>(())
        })();
        if result.is_ok() && txn.commit().is_ok() {
            return;
        }
    }
}

#[test]
fn steady_state_transactions_do_not_allocate() {
    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    let rt = HtmRuntime::new(
        Arc::clone(&mem),
        HtmConfig::skylake(),
        Arc::new(BreakdownRecorder::new()),
    );
    let accounts = mem.reserve_persistent(64 * 8);
    for i in 0..64 {
        mem.write(accounts.add(i * 8), 1_000);
    }

    // Warmup: lets the descriptor tables, flush queues, and write-order
    // buffers grow to the workload's footprint.
    let mut key = 7u64;
    for _ in 0..1_000 {
        key = key.wrapping_mul(6364136223846793005).wrapping_add(1);
        transfer(&rt, 0, accounts, key % 64, (key >> 8) % 64);
    }
    mem.drain(0);

    let before = thread_allocations();
    for _ in 0..10_000 {
        key = key.wrapping_mul(6364136223846793005).wrapping_add(1);
        transfer(&rt, 0, accounts, key % 64, (key >> 8) % 64);
    }
    let after = thread_allocations();

    assert_eq!(
        after - before,
        0,
        "hot path allocated {} times over 10k steady-state transactions",
        after - before
    );

    // Sanity: the workload actually ran (conservation of the total).
    mem.drain(0);
    let total: u64 = (0..64).map(|i| mem.read(accounts.add(i * 8))).sum();
    assert_eq!(total, 64 * 1_000);
}
