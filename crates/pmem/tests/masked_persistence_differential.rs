//! Differential property tests: word-granular (masked) persistence is
//! observably identical to whole-line persistence, and coalesced (ranged)
//! drains are observably identical to per-line enqueue-order drains.
//!
//! The production pipeline ([`PersistGranularity::Word`]) copies only the
//! words of a line that were actually stored since its last write-back,
//! and resolves crashes over exactly those words. The claim that makes
//! this sound is an invariant, not a heuristic: *a word that is not
//! dirty-masked holds the same value in the volatile view and the
//! persistent image*, so skipping it changes nothing an observer can see.
//!
//! The batched drain pipeline adds a second relaxation with the same
//! shape: a drain sorts its claimed lines and writes them back as maximal
//! adjacent runs, so the *order* of the masked copies changes. Because
//! crash resolution is keyed per word and each line's mask is taken
//! atomically, order cannot be observed either — pinned here against the
//! [`DrainCoalescing::PerLine`] reference mode, alone and composed with
//! the granularity relaxation.
//!
//! These tests drive identical randomized write/clwb/drain/evict/crash
//! schedules against two spaces that differ **only** in the relaxation
//! under test — e.g. the masked pipeline vs the
//! [`PersistGranularity::Line`] reference mode (every store dirties its
//! whole line, write-backs copy whole lines, crashes resolve whole lines)
//! — and assert:
//!
//! * the persistent images agree word-for-word at every drain point, and
//! * the crash-visible images are bit-identical under the strict, relaxed,
//!   and adversarial models.
//!
//! Crash resolution draws each dirty word's persist coin from a stream
//! keyed by `(seed, word index)`, which is what makes the comparison
//! exact: the same word resolves the same way in both modes regardless of
//! how many other words are dirty. Evictions are likewise deterministic
//! per `(crash seed, store sequence)`, so the two spaces evict the same
//! lines at the same schedule steps.

use crafty_common::{PAddr, SplitMix64, WORDS_PER_LINE};
use crafty_pmem::{CrashModel, DrainCoalescing, MemorySpace, PersistGranularity, PmemConfig};
use proptest::prelude::*;

/// The word domain the schedules operate on: a handful of lines so that
/// partial-line dirtiness, re-flushes, and cross-line patterns are all
/// common.
const FIRST_WORD: u64 = 64;
const DOMAIN_WORDS: u64 = 12 * WORDS_PER_LINE;

/// Which pipeline relaxation a differential pair isolates: the production
/// space always runs the full pipeline (word masks + ranged coalescing);
/// the reference space selectively disables one (or both) dimensions.
#[derive(Clone, Copy)]
enum Reference {
    /// Whole-line granularity, coalescing kept: isolates the word masks.
    WholeLine,
    /// Per-line drains, word masks kept: isolates the coalescing.
    PerLineDrain,
    /// Both reference modes at once: whole-line, one-line-at-a-time
    /// enqueue-order write-back — the original pipeline.
    Original,
}

fn paired_spaces(
    crash: CrashModel,
    queue_capacity: usize,
    reference: Reference,
) -> (MemorySpace, MemorySpace) {
    let cfg = PmemConfig::small_for_tests()
        .with_crash(crash)
        .with_flush_queue_capacity(queue_capacity);
    let reference_cfg = match reference {
        Reference::WholeLine => cfg.with_granularity(PersistGranularity::Line),
        Reference::PerLineDrain => cfg.with_coalescing(DrainCoalescing::PerLine),
        Reference::Original => cfg
            .with_granularity(PersistGranularity::Line)
            .with_coalescing(DrainCoalescing::PerLine),
    };
    // The production space: Word granularity + Ranged coalescing defaults.
    (MemorySpace::new(cfg), MemorySpace::new(reference_cfg))
}

/// One schedule step, derived from a raw random draw.
enum Op {
    Write { addr: PAddr, value: u64 },
    Clwb { tid: usize, addr: PAddr },
    Drain { tid: usize },
}

fn decode_op(raw: u64, step: usize) -> Op {
    let addr = PAddr::new(FIRST_WORD + (raw >> 8) % DOMAIN_WORDS);
    match raw % 10 {
        // Weighted towards writes so lines accumulate partial masks.
        0..=4 => Op::Write {
            addr,
            value: raw ^ ((step as u64) << 32) ^ 1,
        },
        5..=7 => Op::Clwb {
            tid: (raw >> 4) as usize % 2,
            addr,
        },
        _ => Op::Drain {
            tid: (raw >> 4) as usize % 2,
        },
    }
}

/// Asserts both spaces' persistent images agree over the whole domain.
fn assert_images_agree(word: &MemorySpace, line: &MemorySpace, step: usize) {
    for w in FIRST_WORD..FIRST_WORD + DOMAIN_WORDS {
        let a = word.read_persisted(PAddr::new(w));
        let b = line.read_persisted(PAddr::new(w));
        assert_eq!(
            a, b,
            "step {step}: persisted word {w} diverged (masked {a} vs whole-line {b})"
        );
    }
}

/// Runs one schedule on both spaces and checks agreement at every drain
/// and under every crash model at the end.
fn run_differential(seed: u64, ops: usize, crash: CrashModel, queue_capacity: usize) {
    run_differential_against(seed, ops, crash, queue_capacity, Reference::WholeLine);
}

fn run_differential_against(
    seed: u64,
    ops: usize,
    crash: CrashModel,
    queue_capacity: usize,
    reference: Reference,
) {
    let (word, line) = paired_spaces(crash, queue_capacity, reference);
    let mut rng = SplitMix64::new(seed);
    for step in 0..ops {
        match decode_op(rng.next_u64(), step) {
            Op::Write { addr, value } => {
                word.write(addr, value);
                line.write(addr, value);
            }
            Op::Clwb { tid, addr } => {
                word.clwb(tid, addr);
                line.clwb(tid, addr);
            }
            Op::Drain { tid } => {
                word.drain(tid);
                line.drain(tid);
                assert_images_agree(&word, &line, step);
            }
        }
    }
    // Crash-visible state must be bit-identical under every model, not
    // just the one that governed the run.
    for (label, model) in [
        ("strict", CrashModel::strict()),
        ("relaxed", CrashModel::relaxed(seed ^ 0xBEEF)),
        ("adversarial", CrashModel::adversarial(seed ^ 0xF00D)),
    ] {
        let img_word = word.crash_with(model);
        let img_line = line.crash_with(model);
        for w in 0..img_word.len_words() {
            assert_eq!(
                img_word.read(PAddr::new(w)),
                img_line.read(PAddr::new(w)),
                "{label} crash image diverged at word {w}"
            );
        }
    }
    // The whole point of the masked pipeline: it never copies more words
    // than the whole-line reference would.
    let (sw, sl) = (word.stats(), line.stats());
    assert!(
        sw.words_persisted <= sl.words_persisted,
        "masked mode persisted more words ({}) than whole lines ({})",
        sw.words_persisted,
        sl.words_persisted
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Strict model: nothing persists without an explicit flush + drain.
    #[test]
    fn masked_equals_whole_line_under_strict(seed: u64, ops in 1usize..300) {
        run_differential(seed, ops, CrashModel::strict(), 1 << 10);
    }

    /// Relaxed model: deterministic run, word-lossy crash.
    #[test]
    fn masked_equals_whole_line_under_relaxed(seed: u64, ops in 1usize..300) {
        run_differential(seed, ops, CrashModel::relaxed(seed ^ 0x51), 1 << 10);
    }

    /// Adversarial model: spontaneous evictions mid-run AND a word-lossy
    /// crash; eviction decisions are a pure function of the crash seed and
    /// store sequence, so both spaces evict identically.
    #[test]
    fn masked_equals_whole_line_under_adversarial(seed: u64, ops in 1usize..300) {
        run_differential(seed, ops, CrashModel::adversarial(seed ^ 0xA5), 1 << 10);
    }

    /// A deliberately tiny flush ring forces overflow write-backs, which
    /// must also be granularity-equivalent.
    #[test]
    fn masked_equals_whole_line_under_ring_overflow(seed: u64, ops in 1usize..300) {
        run_differential(seed, ops, CrashModel::strict(), 4);
    }

    /// Coalesced (ranged) drains vs the per-line enqueue-order reference:
    /// sorting the claimed lines into adjacent runs changes only the
    /// write-back order, so persistent images at every drain and crash
    /// images under every model must be bit-identical.
    #[test]
    fn coalesced_equals_per_line_under_strict(seed: u64, ops in 1usize..300) {
        run_differential_against(seed, ops, CrashModel::strict(), 1 << 10,
            Reference::PerLineDrain);
    }

    /// Coalesced vs per-line under the relaxed (word-lossy crash) model.
    #[test]
    fn coalesced_equals_per_line_under_relaxed(seed: u64, ops in 1usize..300) {
        run_differential_against(seed, ops, CrashModel::relaxed(seed ^ 0x77), 1 << 10,
            Reference::PerLineDrain);
    }

    /// Coalesced vs per-line under the adversarial model (mid-run
    /// evictions AND a word-lossy crash).
    #[test]
    fn coalesced_equals_per_line_under_adversarial(seed: u64, ops in 1usize..300) {
        run_differential_against(seed, ops, CrashModel::adversarial(seed ^ 0xC4), 1 << 10,
            Reference::PerLineDrain);
    }

    /// Coalesced vs per-line with a tiny ring: overflow write-backs and
    /// short claimed ranges interleave with coalesced drains.
    #[test]
    fn coalesced_equals_per_line_under_ring_overflow(seed: u64, ops in 1usize..300) {
        run_differential_against(seed, ops, CrashModel::strict(), 4,
            Reference::PerLineDrain);
    }

    /// The full production pipeline (word masks + ranged coalescing) vs
    /// the original whole-line, per-line-drain pipeline: both relaxations
    /// composed must still be observably identical.
    #[test]
    fn full_pipeline_equals_original_under_adversarial(seed: u64, ops in 1usize..300) {
        run_differential_against(seed, ops, CrashModel::adversarial(seed ^ 0x9A), 1 << 10,
            Reference::Original);
    }
}
