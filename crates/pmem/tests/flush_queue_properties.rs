//! Property and stress tests for the lock-free sharded flush path.
//!
//! The per-thread flush queues replaced a `Mutex<Vec<LineId>>` (with a
//! linear `contains` scan per flush) by a single-writer ring plus a
//! generation-stamped per-line dedup table. These tests pin the behaviours
//! the engines rely on:
//!
//! * the queue's pending set always agrees with a `HashSet` reference
//!   model under arbitrary clwb/drain interleavings (dedup is exact);
//! * a drain persists each pending line exactly once (no lost and no
//!   double-persisted lines), which the multi-thread stress test checks
//!   through the space's `lines_persisted` counter;
//! * foreign drains (the Section 5.2 forcing paths) complete another
//!   thread's queue correctly;
//! * ring overflow falls back to immediate write-back without losing data.

use std::collections::HashSet;
use std::sync::Arc;

use crafty_common::{PAddr, WORDS_PER_LINE};
use crafty_pmem::{MemorySpace, PmemConfig};
use proptest::prelude::*;

fn line_addr(line: u64) -> PAddr {
    PAddr::new(line * WORDS_PER_LINE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-owner clwb/drain sequences agree with a HashSet reference
    /// model of the pending set: duplicate flushes of a pending line are
    /// absorbed, drains persist exactly the distinct pending lines, and a
    /// line re-flushed after a drain is pending again.
    #[test]
    fn pending_set_agrees_with_hashset_reference(seed: u64, ops in 1usize..300) {
        let mem = MemorySpace::new(PmemConfig::small_for_tests());
        let mut rng = crafty_common::SplitMix64::new(seed);
        let mut reference: HashSet<u64> = HashSet::new();
        // Lines 8..40: small domain so duplicates are common; line values
        // are seeded uniquely per step so drains persist fresh data.
        for step in 0..ops {
            let raw = rng.next_u64();
            if raw.is_multiple_of(5) {
                let drained = mem.drain(0);
                prop_assert_eq!(
                    drained as usize,
                    reference.len(),
                    "step {}: drain count must equal the distinct pending lines",
                    step
                );
                for &line in &reference {
                    prop_assert_eq!(
                        mem.read_persisted(line_addr(line)),
                        mem.read(line_addr(line)),
                        "step {}: line {} not persisted with its latest value",
                        step, line
                    );
                }
                reference.clear();
            } else {
                let line = 8 + raw % 32;
                mem.write(line_addr(line), line * 1_000 + step as u64);
                mem.clwb(0, line_addr(line));
                reference.insert(line);
            }
            prop_assert_eq!(
                mem.pending_flushes(0),
                reference.len(),
                "step {}: pending count diverged from the reference model",
                step
            );
        }
    }
}

/// Counts the maximal runs of adjacent line ids in a pending set — the
/// reference partition the coalescing drain must reproduce exactly.
fn expected_runs(pending: &HashSet<u64>) -> u64 {
    let mut lines: Vec<u64> = pending.iter().copied().collect();
    lines.sort_unstable();
    let mut runs = 0u64;
    let mut prev = None;
    for &l in &lines {
        if prev != Some(l - 1) {
            runs += 1;
        }
        prev = Some(l);
    }
    runs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The coalesced run boundaries exactly partition each drain's claimed
    /// range: `range_lines` advances by exactly the distinct pending lines
    /// (no line skipped, none flushed twice — a double-flushed line would
    /// appear in two runs and overcount), and `flush_ranges` advances by
    /// exactly the number of maximal adjacent runs in the pending set,
    /// under random interleaved enqueues (with duplicates) and a tiny ring
    /// that forces overflow write-backs.
    #[test]
    fn coalesced_runs_partition_the_claimed_range(
        seed: u64,
        ops in 1usize..400,
        capacity_pow in 2u32..6,
    ) {
        let capacity = 1usize << capacity_pow;
        let mem = MemorySpace::new(
            PmemConfig::small_for_tests().with_flush_queue_capacity(capacity),
        );
        let mut rng = crafty_common::SplitMix64::new(seed);
        let mut pending: HashSet<u64> = HashSet::new();
        for step in 0..ops {
            let raw = rng.next_u64();
            if raw.is_multiple_of(7) {
                let before = mem.stats();
                let drained = mem.drain(0);
                let after = mem.stats();
                prop_assert_eq!(drained as usize, pending.len());
                prop_assert_eq!(
                    after.range_lines - before.range_lines,
                    pending.len() as u64,
                    "step {}: every claimed line in exactly one run",
                    step
                );
                prop_assert_eq!(
                    after.flush_ranges - before.flush_ranges,
                    expected_runs(&pending),
                    "step {}: run count must match the maximal-adjacent partition",
                    step
                );
                for &line in &pending {
                    prop_assert_eq!(
                        mem.read_persisted(line_addr(line)),
                        mem.read(line_addr(line)),
                        "step {}: line {} skipped by the coalesced drain",
                        step, line
                    );
                }
                pending.clear();
            } else {
                // A small, clustered domain (adjacent lines are common) so
                // runs of every length appear.
                let line = 8 + raw % 24;
                mem.write(line_addr(line), line * 1_000 + step as u64);
                if pending.contains(&line) {
                    mem.clwb(0, line_addr(line)); // dedup: mask merge only
                } else if pending.len() >= capacity {
                    // Ring full: the clwb completes as an overflow
                    // write-back and never becomes pending.
                    let before = mem.stats();
                    mem.clwb(0, line_addr(line));
                    prop_assert_eq!(
                        mem.stats().overflow_writebacks,
                        before.overflow_writebacks + 1
                    );
                    prop_assert_eq!(
                        mem.read_persisted(line_addr(line)),
                        mem.read(line_addr(line))
                    );
                } else {
                    mem.clwb(0, line_addr(line));
                    pending.insert(line);
                }
            }
            prop_assert_eq!(mem.pending_flushes(0), pending.len());
        }
        // Final drain: whatever is left still partitions exactly.
        let before = mem.stats();
        mem.drain(0);
        let after = mem.stats();
        prop_assert_eq!(after.range_lines - before.range_lines, pending.len() as u64);
        prop_assert_eq!(
            after.flush_ranges - before.flush_ranges,
            expected_runs(&pending)
        );
    }
}

/// Multi-thread stress: each thread owns a disjoint line range and runs
/// write-batch → clwb (with duplicates) → drain cycles. Afterwards every
/// written value is persisted, and `lines_persisted` equals the exact
/// number of distinct (thread, batch, line) persists — no lost lines, no
/// double persists from the dedup or the claim/retire protocol.
#[test]
fn concurrent_clwb_drain_cycles_lose_nothing_and_double_persist_nothing() {
    let threads = 4usize;
    let batches = 200u64;
    let lines_per_batch = 8u64;
    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    crossbeam::scope(|s| {
        for tid in 0..threads {
            let mem = Arc::clone(&mem);
            s.spawn(move |_| {
                let first_line = 16 + tid as u64 * 64;
                for batch in 0..batches {
                    for l in 0..lines_per_batch {
                        let addr = line_addr(first_line + l);
                        mem.write(addr, batch + 1);
                        // Duplicate flushes must be deduplicated.
                        mem.clwb(tid, addr);
                        mem.clwb(tid, addr.add(3));
                    }
                    mem.drain(tid);
                    for l in 0..lines_per_batch {
                        assert_eq!(
                            mem.read_persisted(line_addr(first_line + l)),
                            batch + 1,
                            "tid {tid} batch {batch}: line {l} lost"
                        );
                    }
                }
            });
        }
    })
    .expect("stress threads");
    let stats = mem.stats();
    assert_eq!(
        stats.lines_persisted,
        threads as u64 * batches * lines_per_batch,
        "every batch must persist exactly its distinct lines"
    );
    assert_eq!(stats.overflow_writebacks, 0);
    assert_eq!(
        stats.flushes,
        threads as u64 * batches * lines_per_batch * 2,
        "every clwb call is counted, deduplicated or not"
    );
    // Each batch's 8 lines are adjacent, so every drain coalesces them
    // into exactly one ranged flush — also under concurrency.
    assert_eq!(
        stats.flush_ranges,
        threads as u64 * batches,
        "adjacent batches must coalesce into one range per drain"
    );
    assert_eq!(stats.range_lines, stats.lines_persisted);
}

/// A foreign thread draining an owner's queue (the Section 5.2 forcing
/// path) races the owner's own drains without losing or double-persisting
/// lines: the total persisted count must be exact, and every line durable.
#[test]
fn foreign_drains_race_owner_drains_exactly() {
    let rounds = 300u64;
    let lines = 6u64;
    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    crossbeam::scope(|s| {
        // The owner enqueues `lines` lines per round, then drains.
        {
            let mem = Arc::clone(&mem);
            s.spawn(move |_| {
                for round in 0..rounds {
                    for l in 0..lines {
                        let addr = line_addr(16 + l);
                        mem.write(addr, round + 1);
                        mem.clwb(0, addr);
                    }
                    mem.drain(0);
                    for l in 0..lines {
                        assert!(
                            mem.read_persisted(line_addr(16 + l)) > round,
                            "owner drain must cover its own enqueues (round {round})"
                        );
                    }
                }
            });
        }
        // A forcing thread repeatedly completes the owner's queue.
        {
            let mem = Arc::clone(&mem);
            s.spawn(move |_| {
                for _ in 0..rounds {
                    mem.drain(0);
                    std::thread::yield_now();
                }
            });
        }
    })
    .expect("racing drains");
    let stats = mem.stats();
    // Dedup and disjoint claim ranges mean the total persisted count can
    // never exceed the enqueued count, and nothing pending remains.
    assert!(
        stats.lines_persisted <= rounds * lines,
        "claimed ranges overlapped: {} lines persisted for {} enqueues",
        stats.lines_persisted,
        rounds * lines
    );
    assert_eq!(mem.pending_flushes(0), 0);
    for l in 0..lines {
        assert_eq!(
            mem.read_persisted(line_addr(16 + l)),
            rounds,
            "final value of line {l} must be durable after the last drain"
        );
    }
}

/// The dedup path merges dirty-word masks instead of taking a second ring
/// slot: re-flushing a still-pending line after writing another of its
/// words leaves exactly one queue entry, and the single write-back covers
/// both words (the line's mask accumulated the second bit).
#[test]
fn dedup_merges_masks_instead_of_requeueing() {
    let mem = MemorySpace::new(PmemConfig::small_for_tests());
    let a = line_addr(8); // word 0 of line 8
    let b = a.add(3); // word 3, same line
    mem.write(a, 11);
    mem.clwb(0, a);
    mem.write(b, 22);
    mem.clwb(0, b); // stamp hit: mask-merge, no second slot
    assert_eq!(
        mem.pending_flushes(0),
        1,
        "the re-flush must be absorbed by the dedup stamp"
    );
    assert_eq!(mem.drain(0), 1, "one line persisted");
    assert_eq!(mem.read_persisted(a), 11);
    assert_eq!(mem.read_persisted(b), 22);
    let stats = mem.stats();
    assert_eq!(stats.lines_persisted, 1);
    assert_eq!(
        stats.words_persisted, 2,
        "exactly the two written words are copied — merged, not whole-line"
    );
    assert_eq!(stats.line_words_persisted, 8);
}

/// Word counters stay exact across drains, evictionless re-dirtying, and
/// queue-side dedup: every copied word is counted once.
#[test]
fn word_counters_track_exactly_what_was_copied() {
    let mem = MemorySpace::new(PmemConfig::small_for_tests());
    // Fully dirty line: 8 words.
    for i in 0..WORDS_PER_LINE {
        mem.write(line_addr(8).add(i), i + 1);
    }
    mem.clwb(0, line_addr(8));
    mem.drain(0);
    // Re-dirty one word of the now-clean line: 1 more word.
    mem.write(line_addr(8).add(5), 99);
    mem.clwb(0, line_addr(8));
    mem.drain(0);
    let stats = mem.stats();
    assert_eq!(stats.words_persisted, WORDS_PER_LINE + 1);
    assert_eq!(stats.line_words_persisted, 2 * WORDS_PER_LINE);
    assert_eq!(stats.lines_persisted, 2);
}

/// With a deliberately tiny ring, overflowing flushes complete immediately
/// instead of being dropped, and a final drain leaves everything durable.
#[test]
fn overflowing_queue_never_loses_lines() {
    let cfg = PmemConfig::small_for_tests().with_flush_queue_capacity(4);
    let mem = MemorySpace::new(cfg);
    let lines = 64u64;
    for l in 0..lines {
        let addr = line_addr(8 + l);
        mem.write(addr, l + 7);
        mem.clwb(0, addr);
    }
    let stats = mem.stats();
    assert_eq!(
        stats.overflow_writebacks,
        lines - 4,
        "all but a ringful must have written back eagerly"
    );
    mem.drain(0);
    for l in 0..lines {
        assert_eq!(mem.read_persisted(line_addr(8 + l)), l + 7);
    }
}
