//! Configuration of the simulated memory system.

use std::time::Duration;

/// How the write-back latency of the simulated NVM is charged.
///
/// The paper's methodology (Section 6) emulates non-volatile memory in DRAM
/// by busy-waiting 300 ns at each drain operation, i.e. at each SFENCE that
/// follows one or more CLWBs; the appendix repeats every experiment with
/// 100 ns. [`LatencyModel::drain_ns`] reproduces that; setting it to 0
/// disables the wait (useful in unit tests).
///
/// On top of the flat per-drain cost, the write-back traffic itself is
/// charged through **ranged flushes**: a drain coalesces the claimed lines
/// into maximal runs of adjacent line ids and pays
/// [`LatencyModel::clwb_range`] once per run — a per-run base
/// ([`LatencyModel::clwb_range_ns`], the flush instruction issue /
/// controller round trip a ranged CLWB amortizes across its lines), a
/// per-line component ([`LatencyModel::clwb_line_ns`], tag checks and
/// write-combining per covered line), and a per-word component
/// ([`LatencyModel::clwb_word_ns`], media write bandwidth for the words the
/// dirty-word masks actually copied). Adjacent lines therefore share one
/// base charge, and — as in the word-granular pipeline underneath — write
/// amplification at the persist boundary (the cost HTPM identifies as
/// dominating HTM-persistence overhead) is charged for what was written,
/// not for whole lines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyModel {
    /// Nanoseconds of busy-waiting charged to each drain operation.
    pub drain_ns: u64,
    /// Nanoseconds charged once per ranged flush a drain issues (the
    /// per-instruction base cost adjacent lines amortize).
    pub clwb_range_ns: u64,
    /// Nanoseconds charged per line a ranged flush covers.
    pub clwb_line_ns: u64,
    /// Nanoseconds charged, per word actually copied to the persistent
    /// image, on top of the flat drain cost (media write bandwidth).
    pub clwb_word_ns: u64,
}

impl LatencyModel {
    /// The per-word media-write cost that accompanies the NVM presets:
    /// a full 8-word line costs 200 ns of bandwidth on top of the drain's
    /// round trip, a single-word update 25 ns.
    pub const NVM_WORD_NS: u64 = 25;

    /// The per-ranged-flush base cost of the NVM presets. A drain that
    /// coalesces eight adjacent lines into one range pays this once; the
    /// per-line reference mode pays it eight times.
    pub const NVM_RANGE_NS: u64 = 60;

    /// The per-covered-line cost of the NVM presets.
    pub const NVM_LINE_NS: u64 = 10;

    /// The paper's default NVM round-trip latency (300 ns per drain).
    pub const fn nvm_300ns() -> Self {
        LatencyModel {
            drain_ns: 300,
            clwb_range_ns: Self::NVM_RANGE_NS,
            clwb_line_ns: Self::NVM_LINE_NS,
            clwb_word_ns: Self::NVM_WORD_NS,
        }
    }

    /// The appendix's optimistic latency (100 ns per drain), modelling an
    /// NVM controller whose buffer is inside the persistence domain.
    pub const fn nvm_100ns() -> Self {
        LatencyModel {
            drain_ns: 100,
            clwb_range_ns: Self::NVM_RANGE_NS,
            clwb_line_ns: Self::NVM_LINE_NS,
            clwb_word_ns: Self::NVM_WORD_NS,
        }
    }

    /// No emulated latency; drains are instantaneous. Used by unit tests
    /// and by correctness-only runs (crash/recovery fuzzing).
    pub const fn instant() -> Self {
        LatencyModel {
            drain_ns: 0,
            clwb_range_ns: 0,
            clwb_line_ns: 0,
            clwb_word_ns: 0,
        }
    }

    /// Returns the drain latency as a [`Duration`].
    pub const fn drain_duration(&self) -> Duration {
        Duration::from_nanos(self.drain_ns)
    }

    /// Cost of one ranged flush covering `lines` adjacent cache lines of
    /// which `words` words were actually copied: one base charge plus the
    /// per-line and per-word components. This is the unit a drain charges
    /// per coalesced run (and an overflow write-back charges with
    /// `lines = 1`); the flat [`LatencyModel::drain_ns`] comes on top, once
    /// per drain.
    pub const fn clwb_range(&self, lines: u64, words: u64) -> u64 {
        self.clwb_range_ns + lines * self.clwb_line_ns + words * self.clwb_word_ns
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::nvm_300ns()
    }
}

/// How aggressively the simulated cache persists data the program did not
/// ask to persist, and how a crash resolves in-flight state.
///
/// Real hardware may write a dirty line back to NVM at any time (cache
/// eviction), and at a power failure an unflushed line may have persisted
/// entirely, partially (at word granularity), or not at all. These are the
/// behaviours undo logging has to defend against, so the simulator makes
/// them explicit and seedable.
///
/// Three presets cover the useful points of the space (see
/// `ARCHITECTURE.md` for the full table of what each may lose):
///
/// * [`CrashModel::strict`] — nothing persists without an explicit
///   flush-and-drain; fully deterministic.
/// * [`CrashModel::relaxed`] — deterministic during the run (no
///   evictions), but each dirty *word* independently persists with
///   probability ½ at the crash itself: place the crash point exactly,
///   still face a lossy power failure.
/// * [`CrashModel::adversarial`] — spontaneous evictions mid-run *and*
///   the word lottery at the crash; the full fuzzing adversary.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CrashModel {
    /// Probability that any individual store immediately writes its line
    /// back to the persistent image (spontaneous eviction).
    pub eviction_probability: f64,
    /// Probability, per *word* of a dirty line, that the word's latest
    /// volatile value has reached the persistent image when a crash is
    /// taken. Flushed-and-drained lines always persist in full.
    pub dirty_word_persist_probability: f64,
    /// Seed for the fault-injection random stream.
    pub seed: u64,
}

impl CrashModel {
    /// A deterministic model in which nothing persists unless explicitly
    /// flushed and drained. Useful for tests that want exact control.
    pub const fn strict() -> Self {
        CrashModel {
            eviction_probability: 0.0,
            dirty_word_persist_probability: 0.0,
            seed: 0,
        }
    }

    /// An adversarial model for crash-consistency fuzzing: stores may leak
    /// to NVM at any time, and dirty words persist with probability ½ at a
    /// crash.
    pub const fn adversarial(seed: u64) -> Self {
        CrashModel {
            eviction_probability: 0.01,
            dirty_word_persist_probability: 0.5,
            seed,
        }
    }

    /// A relaxed model between [`CrashModel::strict`] and
    /// [`CrashModel::adversarial`]: during the run nothing persists without
    /// an explicit flush-and-drain (no spontaneous evictions), but at the
    /// crash itself each dirty *word* independently persists with
    /// probability ½ — the word-granular in-flight loss/leak behaviour of
    /// Section 5.2 without the mid-run eviction noise, so tests can place
    /// the crash point deterministically and still face a lossy power
    /// failure.
    pub const fn relaxed(seed: u64) -> Self {
        CrashModel {
            eviction_probability: 0.0,
            dirty_word_persist_probability: 0.5,
            seed,
        }
    }
}

impl Default for CrashModel {
    fn default() -> Self {
        CrashModel::strict()
    }
}

/// At what granularity write-backs copy data into the persistent image.
///
/// [`PersistGranularity::Word`] is the production pipeline: every store
/// marks exactly its word in the containing line's dirty mask, and a
/// write-back copies (and charges for) only the masked words.
/// [`PersistGranularity::Line`] is the whole-line reference model the
/// original implementation used — every store marks all words of its line —
/// kept so differential tests can assert the two are observably identical
/// under every crash model (they must be: a word that was never stored
/// holds the same value in the volatile view and the persistent image, so
/// copying it is a no-op).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PersistGranularity {
    /// Word-granular dirty masks: persist cost follows words written.
    #[default]
    Word,
    /// Whole-line reference mode: every store dirties its full line.
    Line,
}

/// How a drain issues the write-backs of the range it claimed.
///
/// [`DrainCoalescing::Ranged`] is the production pipeline: the claimed
/// lines are sorted and coalesced into maximal runs of *adjacent* line ids,
/// each run persisted as one ranged flush charged via
/// [`LatencyModel::clwb_range`] (one base cost per run). The runs exactly
/// partition the claimed range — no line is flushed twice and none is
/// skipped — a property pinned by the partition property tests in
/// `tests/flush_queue_properties.rs`.
///
/// [`DrainCoalescing::PerLine`] is the pre-coalescing reference mode:
/// write-backs happen one line at a time in enqueue order, each charged as
/// a single-line range. Differential tests assert the two modes produce
/// bit-identical persistent and crash images under every crash model (they
/// must: both persist exactly the claimed lines' masked words, and crash
/// resolution is keyed per word, independent of write-back order).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DrainCoalescing {
    /// Sort the claimed lines and issue one ranged flush per maximal run
    /// of adjacent lines (production).
    #[default]
    Ranged,
    /// One single-line flush per claimed position, in enqueue order (the
    /// reference mode differential tests compare against).
    PerLine,
}

/// A deterministic fault-injection plan, threaded through [`PmemConfig`].
///
/// When armed, every durability-relevant event in the space — a store to a
/// persistent word, a CLWB enqueue, a drain's claim, each per-line
/// write-back, and the drain's completing SFENCE — ticks the space's
/// **fault clock** (see [`crate::MemorySpace::fault_steps`]). If
/// [`FaultPlan::crash_at_step`] is set, the tick whose 1-based index equals
/// it additionally captures a crash image *at that exact point in the
/// pipeline* (resolved under [`FaultPlan::crash_model`], like
/// [`crate::MemorySpace::crash_with`]) into a side buffer the torture
/// driver retrieves with [`crate::MemorySpace::take_fault_image`]. The
/// capture is non-destructive: the run continues to completion, so a
/// single-threaded run is bit-for-bit reproducible for every chosen step.
///
/// The default (disarmed) plan is a single untaken branch on the store and
/// flush paths — the hot path stays unaffected, which the committed
/// benchmark gates enforce.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct FaultPlan {
    /// Whether durability events tick the fault clock at all. Disarmed
    /// (the default) costs one predictable branch per event.
    pub armed: bool,
    /// 1-based fault-clock step at which to capture a crash image
    /// mid-pipeline. `None` with `armed` counts steps only (the torture
    /// driver's first pass, which learns the run's total step count).
    pub crash_at_step: Option<u64>,
    /// Crash model used to resolve still-dirty words in the captured
    /// image (independent of the model the space itself runs under).
    pub crash_model: CrashModel,
}

impl FaultPlan {
    /// The disarmed plan: durability events are not counted.
    pub const fn inactive() -> Self {
        FaultPlan {
            armed: false,
            crash_at_step: None,
            crash_model: CrashModel::strict(),
        }
    }

    /// Counts durability events without ever capturing an image.
    pub const fn count_only() -> Self {
        FaultPlan {
            armed: true,
            crash_at_step: None,
            crash_model: CrashModel::strict(),
        }
    }

    /// Captures a crash image at fault-clock step `step` (1-based),
    /// resolving dirty words under `model`.
    pub const fn crash_at(step: u64, model: CrashModel) -> Self {
        FaultPlan {
            armed: true,
            crash_at_step: Some(step),
            crash_model: model,
        }
    }
}

/// Configuration for a [`crate::MemorySpace`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PmemConfig {
    /// Number of 64-bit words in the persistent region (survives crashes).
    pub persistent_words: u64,
    /// Number of 64-bit words in the volatile region (zeroed at a crash).
    pub volatile_words: u64,
    /// Maximum number of worker threads that will use the space. Flush
    /// queues and per-thread counters are sized from this.
    pub max_threads: usize,
    /// Capacity (in pending lines) of each per-thread flush-queue ring.
    /// Rounded up to a power of two. A full ring never blocks: additional
    /// flushes complete their write-back immediately (counted in
    /// [`crate::PmemStats::overflow_writebacks`]), which real hardware is
    /// free to do for any CLWB before the fence.
    pub flush_queue_capacity: usize,
    /// Latency charged to drain operations.
    pub latency: LatencyModel,
    /// Eviction and crash-resolution behaviour.
    pub crash: CrashModel,
    /// Whether write-backs copy masked words or whole lines (the latter is
    /// the reference model for differential testing).
    pub granularity: PersistGranularity,
    /// Whether drains coalesce adjacent claimed lines into ranged flushes
    /// or write back one line at a time (the latter is the reference mode
    /// for differential testing).
    pub coalescing: DrainCoalescing,
    /// Fault-injection plan: disarmed by default (zero-cost); armed plans
    /// tick the fault clock at every durability event and may capture a
    /// mid-pipeline crash image (see [`FaultPlan`]).
    pub fault: FaultPlan,
}

impl PmemConfig {
    /// A small space with no emulated latency, suitable for unit tests.
    pub fn small_for_tests() -> Self {
        PmemConfig {
            persistent_words: 1 << 16,
            volatile_words: 1 << 14,
            max_threads: 8,
            flush_queue_capacity: 1 << 10,
            latency: LatencyModel::instant(),
            crash: CrashModel::strict(),
            granularity: PersistGranularity::Word,
            coalescing: DrainCoalescing::Ranged,
            fault: FaultPlan::inactive(),
        }
    }

    /// The benchmark-sized configuration used by the figure harness
    /// (256 MiB persistent, 32 MiB volatile, 300 ns drains).
    pub fn benchmark() -> Self {
        PmemConfig {
            persistent_words: 1 << 25,
            volatile_words: 1 << 22,
            max_threads: 32,
            flush_queue_capacity: 1 << 12,
            latency: LatencyModel::nvm_300ns(),
            crash: CrashModel::strict(),
            granularity: PersistGranularity::Word,
            coalescing: DrainCoalescing::Ranged,
            fault: FaultPlan::inactive(),
        }
    }

    /// Sets the latency model (builder style).
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the crash model (builder style).
    pub fn with_crash(mut self, crash: CrashModel) -> Self {
        self.crash = crash;
        self
    }

    /// Sets the maximum number of worker threads (builder style).
    pub fn with_max_threads(mut self, max_threads: usize) -> Self {
        self.max_threads = max_threads;
        self
    }

    /// Sets the per-thread flush-queue ring capacity (builder style).
    pub fn with_flush_queue_capacity(mut self, capacity: usize) -> Self {
        self.flush_queue_capacity = capacity;
        self
    }

    /// Sets the persistence granularity (builder style). `Line` selects the
    /// whole-line reference model used by differential tests.
    pub fn with_granularity(mut self, granularity: PersistGranularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Sets the drain coalescing mode (builder style). `PerLine` selects
    /// the one-line-at-a-time reference mode used by differential tests.
    pub fn with_coalescing(mut self, coalescing: DrainCoalescing) -> Self {
        self.coalescing = coalescing;
        self
    }

    /// Sets the fault-injection plan (builder style).
    pub fn with_fault_plan(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Total words in the space (persistent + volatile).
    pub fn total_words(&self) -> u64 {
        self.persistent_words + self.volatile_words
    }
}

impl Default for PmemConfig {
    fn default() -> Self {
        PmemConfig::benchmark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_presets() {
        assert_eq!(LatencyModel::nvm_300ns().drain_ns, 300);
        assert_eq!(LatencyModel::nvm_100ns().drain_ns, 100);
        assert_eq!(LatencyModel::instant().drain_ns, 0);
        assert_eq!(LatencyModel::instant().clwb_word_ns, 0);
        assert_eq!(LatencyModel::instant().clwb_range_ns, 0);
        assert_eq!(LatencyModel::instant().clwb_line_ns, 0);
        assert_eq!(
            LatencyModel::nvm_300ns().drain_duration(),
            Duration::from_nanos(300)
        );
        assert_eq!(LatencyModel::default(), LatencyModel::nvm_300ns());
    }

    #[test]
    fn ranged_flush_cost_amortizes_the_base_across_adjacent_lines() {
        let m = LatencyModel::nvm_300ns();
        // One run of 8 adjacent lines pays the base once...
        let coalesced = m.clwb_range(8, 8);
        // ...where 8 single-line flushes of the same traffic pay it 8 times.
        let per_line = 8 * m.clwb_range(1, 1);
        assert_eq!(
            coalesced,
            LatencyModel::NVM_RANGE_NS
                + 8 * LatencyModel::NVM_LINE_NS
                + 8 * LatencyModel::NVM_WORD_NS
        );
        assert_eq!(per_line - coalesced, 7 * LatencyModel::NVM_RANGE_NS);
        // An empty range (all claimed lines already clean) still pays its
        // base and line components — the flush instruction was issued.
        assert_eq!(
            m.clwb_range(1, 0),
            LatencyModel::NVM_RANGE_NS + LatencyModel::NVM_LINE_NS
        );
    }

    #[test]
    fn granularity_defaults_to_word_masks() {
        assert_eq!(
            PmemConfig::small_for_tests().granularity,
            PersistGranularity::Word
        );
        let reference = PmemConfig::small_for_tests().with_granularity(PersistGranularity::Line);
        assert_eq!(reference.granularity, PersistGranularity::Line);
    }

    #[test]
    fn coalescing_defaults_to_ranged() {
        assert_eq!(
            PmemConfig::small_for_tests().coalescing,
            DrainCoalescing::Ranged
        );
        let reference = PmemConfig::small_for_tests().with_coalescing(DrainCoalescing::PerLine);
        assert_eq!(reference.coalescing, DrainCoalescing::PerLine);
    }

    #[test]
    fn crash_presets() {
        let strict = CrashModel::strict();
        assert_eq!(strict.eviction_probability, 0.0);
        assert_eq!(strict.dirty_word_persist_probability, 0.0);
        let adv = CrashModel::adversarial(7);
        assert!(adv.eviction_probability > 0.0);
        assert!(adv.dirty_word_persist_probability > 0.0);
        assert_eq!(adv.seed, 7);
        let rel = CrashModel::relaxed(9);
        assert_eq!(rel.eviction_probability, 0.0, "relaxed has no evictions");
        assert!(rel.dirty_word_persist_probability > 0.0);
        assert_eq!(rel.seed, 9);
    }

    #[test]
    fn fault_plans() {
        assert_eq!(PmemConfig::small_for_tests().fault, FaultPlan::inactive());
        assert_eq!(FaultPlan::default(), FaultPlan::inactive());
        assert!(!FaultPlan::inactive().armed);
        let count = FaultPlan::count_only();
        assert!(count.armed);
        assert_eq!(count.crash_at_step, None);
        let trap = FaultPlan::crash_at(42, CrashModel::relaxed(7));
        assert!(trap.armed);
        assert_eq!(trap.crash_at_step, Some(42));
        assert_eq!(trap.crash_model.seed, 7);
        let cfg = PmemConfig::small_for_tests().with_fault_plan(trap);
        assert_eq!(cfg.fault, trap);
    }

    #[test]
    fn config_builders_compose() {
        let cfg = PmemConfig::small_for_tests()
            .with_latency(LatencyModel::nvm_100ns())
            .with_crash(CrashModel::adversarial(3))
            .with_max_threads(4);
        assert_eq!(cfg.latency.drain_ns, 100);
        assert_eq!(cfg.crash.seed, 3);
        assert_eq!(cfg.max_threads, 4);
        assert_eq!(cfg.total_words(), (1 << 16) + (1 << 14));
    }
}
