//! The simulated memory space: a volatile (cache/DRAM) view over a
//! persistent image, with explicit flush/drain persist operations and a
//! **word-granular persistence pipeline**.
//!
//! # Model
//!
//! The space is an array of 64-bit words split into a *persistent region*
//! `[0, persistent_words)` and a *volatile region* above it. Every load and
//! store — transactional or not — operates on the **volatile view**, which
//! plays the role of the processor caches plus DRAM. A separate
//! **persistent image** holds what would survive a power failure.
//!
//! Data moves from the volatile view to the persistent image when:
//!
//! * a cache line is flushed ([`MemorySpace::clwb`]) and a subsequent drain
//!   ([`MemorySpace::drain`]) completes — the CLWB + SFENCE persist
//!   operation of Section 2.2; or
//! * the simulated cache spontaneously evicts a dirty line (controlled by
//!   [`CrashModel::eviction_probability`]) — the behaviour that makes
//!   unlogged in-place updates unsafe.
//!
//! A [`MemorySpace::crash`] resolves all remaining dirty words according to
//! the crash model (each dirty *word* persists with a configured
//! probability, since the hardware guarantees only word-granularity
//! persistence, Section 5.2) and returns the [`PersistentImage`] a recovery
//! observer would see.
//!
//! # Word-granular dirty masks
//!
//! Crafty's design argument — and the reason HTPM-style systems fight
//! write amplification at the persist boundary — is that persistence cost
//! should follow *words written*, not *lines touched*. The pipeline
//! therefore tracks one lazily-allocated `u64` **dirty-word mask per
//! persistent line** (bit *i* = word *i* of the line was stored since the
//! line's last write-back):
//!
//! * Every store ([`MemorySpace::write`], [`MemorySpace::compare_exchange`],
//!   [`MemorySpace::fetch_add`] — and through them every transactional
//!   publish and `nontx` write in the stack) ORs exactly its word's bit
//!   into the mask. The mask doubles as the dirty flag: mask ≠ 0 ⇔ dirty.
//! * A write-back (`persist_line`) atomically takes the mask (`swap(0)`)
//!   and copies only the masked words into the persistent image. Unmasked
//!   words are *provably identical* in both views (they have not been
//!   stored since the last write-back), so the result is observably
//!   identical to copying the whole line — a property pinned by the
//!   differential tests in `tests/masked_persistence_differential.rs`
//!   against the [`crate::PersistGranularity::Line`] reference mode.
//! * Re-flushing a line that is already pending does not take a second
//!   queue slot; the new store's bit is simply OR-merged into the line's
//!   mask, which the eventual drain reads. Dedup therefore *merges masks*.
//! * The crash models resolve only masked words, so strict / relaxed /
//!   adversarial crash states are exact over the words actually written.
//!   Each word's coin is drawn from its own seeded stream (keyed by the
//!   word index), so crash resolution is independent of mask iteration
//!   order — which is what lets the word- and line-granular modes produce
//!   bit-identical crash images for differential testing.
//! * Latency follows suit: a drain charges
//!   [`crate::LatencyModel::drain_ns`] plus one
//!   [`crate::LatencyModel::clwb_range`] per coalesced run it issues (see
//!   "Batched drains" below), whose per-word component covers only the
//!   words actually copied, and
//!   [`PmemStats::words_persisted`] / [`PmemStats::line_words_persisted`]
//!   report the measured write amplification
//!   (`words_persisted / line_words_persisted`; 1.0 means every persisted
//!   line was fully dirty).
//!
//! # Batched drains: ranged CLWB coalescing
//!
//! A drain claims its pending range with one CAS exactly as before, but the
//! write-back of the claimed lines is *batched*: the claimed line ids are
//! snapshotted into a reusable per-thread scratch buffer, sorted, and
//! coalesced into **maximal runs of adjacent lines**. For each run the
//! drain first performs all of the run's masked word copies, then charges a
//! single ranged-flush cost ([`crate::LatencyModel::clwb_range`]: a per-run
//! base, a per-line component, and the per-word media cost) — so a
//! transaction whose undo-log entries span four adjacent lines pays one
//! flush base instead of four. [`PmemStats::flush_ranges`] and
//! [`PmemStats::range_lines`] make the coalescing efficiency measurable
//! (`flush_ranges < lines_persisted` means runs longer than one line were
//! found; [`PmemStats::lines_per_range`] is the average run length).
//!
//! Two properties keep this a pure optimization:
//!
//! * **The runs exactly partition the claimed range.** Every claimed
//!   position's line is persisted exactly once; sorting changes only the
//!   *order* of the masked copies, and crash resolution is keyed per word
//!   (independent of write-back order), so the persistent and crash-visible
//!   images are bit-identical to the per-line reference mode
//!   ([`crate::DrainCoalescing::PerLine`], which preserves the
//!   pre-coalescing one-line-at-a-time enqueue-order write-back). Both are
//!   pinned by `tests/flush_queue_properties.rs` (partition property) and
//!   `tests/masked_persistence_differential.rs` (image equivalence), the
//!   same way `Word` ≡ `Line` granularity is pinned.
//! * **The scratch is allocation-free in steady state.** It is grown once
//!   to the flush-queue capacity (the upper bound of any claimed range) on
//!   a thread's first drain, so the commit path's zero-allocation guarantee
//!   holds through the batched pipeline.
//!
//! # The sharded, lock-free persistence domain
//!
//! Crafty's premise is that persistence tracking must never serialize the
//! HTM fast path, so the persist operations here are engineered the same
//! way:
//!
//! * **Per-thread single-writer flush queues.** Each thread slot owns a
//!   fixed-capacity ring of pending line ids ([`PmemConfig::flush_queue_capacity`]
//!   entries, allocated once at construction). Only the owning thread
//!   enqueues ([`MemorySpace::clwb`] with its own `tid`); *any* thread may
//!   drain, which the Section 5.2 forcing paths rely on. There is no mutex
//!   anywhere on the flush path.
//! * **O(1) generation-stamped dedup.** Duplicate flushes of a pending line
//!   are absorbed by a per-line *stamp table* holding the ring position of
//!   the owner's most recent enqueue (`pos + 1`; 0 = never flushed). A line
//!   is pending iff its stamp is at or past the queue's `claim` cursor, so
//!   the cursor acts as the stamp generation: a drain logically invalidates
//!   every stamp below it in O(1), exactly the [`crafty_common::GenSet`]
//!   discipline (the design this table generalizes), with no `Vec::contains`
//!   scan.
//! * **Lock-free drains.** [`MemorySpace::drain`] claims the pending range
//!   `[claim, tail)` with one CAS, persists it, then retires the range in
//!   order. Concurrent drains of one queue (owner + a Section 5.2 forcing
//!   thread) claim disjoint ranges, so every queued line is persisted
//!   exactly once; a drain does not return until everything up to the tail
//!   it observed is durably retired.
//! * **Ring overflow = early write-back.** If a queue is full, `clwb`
//!   writes the line back immediately instead of queueing it. Real hardware
//!   may complete a CLWB at any point before the fence, so persisting early
//!   is always legal; the event is counted in
//!   [`PmemStats::overflow_writebacks`].
//! * **Sharded, lazily-allocated line metadata.** Dirty-word masks and
//!   dedup stamps are [`crafty_common::LazyAtomicArray`] segments
//!   materialized on first touch, so a multi-gigabyte simulated space no
//!   longer pays dense up-front metadata proportional to its size.
//!
//! Concurrency contract: all methods are safe to call from any thread, but
//! `clwb(tid, ..)` calls for one `tid` must come from a single thread at a
//! time (the queues are single-writer; every engine in the workspace
//! already follows this discipline — a thread only flushes through its own
//! slot, and the NV-HTM checkpointer owns a dedicated slot). `drain(tid)`
//! carries no such restriction.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crafty_common::trace::{self, TraceEventKind};
use crafty_common::{mix64, LazyAtomicArray, LineId, PAddr, SplitMix64, WORDS_PER_LINE};

use crate::config::{CrashModel, DrainCoalescing, PersistGranularity, PmemConfig};
use crate::image::PersistentImage;

/// Counters describing the persist traffic a run generated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PmemStats {
    /// Number of drain (SFENCE-after-CLWB) operations performed.
    pub drains: u64,
    /// Number of cache-line flushes (CLWB) requested.
    pub flushes: u64,
    /// Number of lines written back to the persistent image by drains.
    pub lines_persisted: u64,
    /// Number of lines written back by spontaneous eviction.
    pub evictions: u64,
    /// Number of lines written back immediately because the issuing
    /// thread's flush queue was full (legal early CLWB completion).
    pub overflow_writebacks: u64,
    /// Number of words actually copied into the persistent image by
    /// write-backs (drains, evictions, and overflow write-backs): the
    /// numerator of the write-amplification ratio.
    pub words_persisted: u64,
    /// Number of words whole-line write-backs would have copied for the
    /// same events (the in-bounds line width, normally 8, per write-back):
    /// the denominator of the write-amplification ratio.
    pub line_words_persisted: u64,
    /// Number of ranged flushes issued by drains: one per maximal run of
    /// adjacent claimed lines in [`crate::DrainCoalescing::Ranged`] mode,
    /// one per claimed line in the `PerLine` reference mode. The gap
    /// between this and [`PmemStats::lines_persisted`] is the coalescing
    /// win — every run longer than one line saved a flush base cost.
    pub flush_ranges: u64,
    /// Number of distinct lines those ranged flushes covered.
    /// `range_lines / flush_ranges` is the average run length.
    pub range_lines: u64,
}

impl PmemStats {
    /// The traffic accumulated since an `earlier` snapshot of the same
    /// space (component-wise difference) — e.g. the steady-state portion
    /// of a benchmark, excluding setup/prefill persists.
    pub fn since(&self, earlier: &PmemStats) -> PmemStats {
        PmemStats {
            drains: self.drains - earlier.drains,
            flushes: self.flushes - earlier.flushes,
            lines_persisted: self.lines_persisted - earlier.lines_persisted,
            evictions: self.evictions - earlier.evictions,
            overflow_writebacks: self.overflow_writebacks - earlier.overflow_writebacks,
            words_persisted: self.words_persisted - earlier.words_persisted,
            line_words_persisted: self.line_words_persisted - earlier.line_words_persisted,
            flush_ranges: self.flush_ranges - earlier.flush_ranges,
            range_lines: self.range_lines - earlier.range_lines,
        }
    }

    /// Average number of adjacent lines each of the drains' ranged flushes
    /// covered (`range_lines / flush_ranges`): the measured coalescing
    /// efficiency. 1.0 means no two claimed lines were ever adjacent (or
    /// the `PerLine` reference mode is active); higher is better — each
    /// extra line in a run rode an already-paid flush base cost. Returns
    /// 1.0 when no ranged flush was issued.
    pub fn lines_per_range(&self) -> f64 {
        if self.flush_ranges == 0 {
            return 1.0;
        }
        self.range_lines as f64 / self.flush_ranges as f64
    }

    /// Measured write amplification of the persist traffic:
    /// `words_persisted / line_words_persisted`, i.e. the fraction of
    /// whole-line write-back bandwidth the word-granular pipeline actually
    /// used. 1.0 means every persisted line was fully dirty; a KV-style
    /// workload updating one or two words per 8-word line sits well below
    /// 0.5. Returns 1.0 when nothing was persisted.
    pub fn write_amplification(&self) -> f64 {
        if self.line_words_persisted == 0 {
            return 1.0;
        }
        self.words_persisted as f64 / self.line_words_persisted as f64
    }
}

#[derive(Default)]
struct StatCells {
    drains: AtomicU64,
    flushes: AtomicU64,
    lines_persisted: AtomicU64,
    evictions: AtomicU64,
    overflow_writebacks: AtomicU64,
    words_persisted: AtomicU64,
    line_words_persisted: AtomicU64,
    flush_ranges: AtomicU64,
    range_lines: AtomicU64,
}

/// One thread slot's pending-flush state. See the module docs for the
/// design; all fields are plain atomics — the queue takes no lock on either
/// the enqueue or the drain path.
struct FlushQueue {
    /// Ring of pending line ids; absolute position `p` lives in slot
    /// `p & (capacity - 1)`. Allocated eagerly (it is small and hot) so the
    /// steady-state flush path never allocates.
    slots: Box<[AtomicU64]>,
    /// Next absolute enqueue position. Written only by the owner thread.
    tail: AtomicU64,
    /// Positions below this have been claimed by some drain. Advanced by
    /// CAS; doubles as the dedup-stamp generation cursor.
    claim: AtomicU64,
    /// Positions below this have been persisted and retired (their ring
    /// slots are reusable). Advanced in order by the claiming drains.
    done: AtomicU64,
    /// Per-line dedup stamps: `pos + 1` of the owner's latest enqueue of
    /// that line (0 = never enqueued). Lazily sharded by line index.
    stamps: LazyAtomicArray,
}

impl FlushQueue {
    fn new(capacity: usize, persistent_lines: u64) -> Self {
        FlushQueue {
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            tail: AtomicU64::new(0),
            claim: AtomicU64::new(0),
            done: AtomicU64::new(0),
            stamps: LazyAtomicArray::new(persistent_lines),
        }
    }

    #[inline]
    fn slot(&self, pos: u64) -> &AtomicU64 {
        &self.slots[(pos & (self.slots.len() as u64 - 1)) as usize]
    }

    /// Lines enqueued but not yet durably retired. Counted against `done`,
    /// not `claim`: a range a concurrent drain has claimed but not finished
    /// persisting is still pending from the caller's point of view — the
    /// SFENCE paths (`HtmRuntime::begin`) use this to decide whether a
    /// drain (which waits for retirement) is needed.
    #[inline]
    fn pending(&self) -> u64 {
        let tail = self.tail.load(Ordering::Acquire);
        let done = self.done.load(Ordering::Acquire);
        tail.saturating_sub(done)
    }
}

/// The simulated memory system shared by all engines and workloads.
///
/// See the module documentation for the model and for the lock-free
/// persistence-domain design. Flush queues are indexed by the
/// caller-supplied thread id; enqueues are single-writer per id, drains may
/// come from any thread.
///
/// # Example: reserve → write → drain
///
/// The canonical persist operation — a store reaches the persistent image
/// only after its line is flushed (CLWB) *and* the flush is drained
/// (SFENCE):
///
/// ```
/// use crafty_pmem::{MemorySpace, PmemConfig};
///
/// let mem = MemorySpace::new(PmemConfig::small_for_tests());
/// let slot = mem.reserve_persistent(1); // line-aligned reservation
/// mem.write(slot, 42);
///
/// // Written but neither flushed nor drained: not durable yet.
/// assert_eq!(mem.read(slot), 42);
/// assert_eq!(mem.read_persisted(slot), 0);
///
/// mem.clwb(0, slot);     // request the write-back on thread 0's queue
/// assert_eq!(mem.read_persisted(slot), 0); // still pending
/// mem.drain(0);          // SFENCE: complete thread 0's flushes
/// assert_eq!(mem.read_persisted(slot), 42);
/// assert_eq!(mem.crash().read(slot), 42); // survives a power failure
/// ```
pub struct MemorySpace {
    cfg: PmemConfig,
    volatile_view: Box<[AtomicU64]>,
    persistent_image: Box<[AtomicU64]>,
    /// Dirty-word mask per persistent line (bit `i` = word `i` stored since
    /// the line's last write-back; 0 = clean), lazily sharded. Doubles as
    /// the dirty flag. In [`PersistGranularity::Line`] reference mode every
    /// store sets all bits of its line.
    line_masks: LazyAtomicArray,
    flush_queues: Box<[FlushQueue]>,
    /// Reservation cursors (word indices). Plain atomics: reservations are
    /// rare (setup-time) but formerly shared a mutex with the store hot
    /// path.
    reserve_persistent: AtomicU64,
    reserve_volatile: AtomicU64,
    /// Striped eviction-sampling RNG states, each a SplitMix64 stream
    /// seeded from this space's crash-model seed (see
    /// [`MemorySpace::evict_chance`]).
    evict_stripes: Box<[AtomicU64]>,
    stats: StatCells,
    /// Persistence-step counter for deterministic fault injection: every
    /// durability-relevant event (store to pmem, CLWB enqueue, drain claim,
    /// per-line persist, SFENCE) ticks this clock when the configured
    /// [`FaultPlan`](crate::FaultPlan) is armed. Disarmed plans cost one
    /// predictable branch per event.
    fault_step: AtomicU64,
    /// Crash image captured when the fault clock hits the plan's
    /// `crash_at_step` tick. Taken (once) via
    /// [`MemorySpace::take_fault_image`].
    fault_image: Mutex<Option<PersistentImage>>,
    /// Per-thread trace-event tails frozen at the same tick as
    /// `fault_image`, so a torture failure report can show what every
    /// thread was doing right before the injected crash. Empty unless the
    /// trace subsystem was at `Events` level when the trap fired.
    fault_trace: Mutex<Vec<trace::ThreadTrace>>,
    /// Set (and never cleared) the instant the fault trap fires. Cheap to
    /// poll, unlike the image mutex, so a live service can use it as a
    /// *power rail*: the run continues past the non-destructive trap, and
    /// any durability ack issued after this flag rises would be promising
    /// state the captured crash image does not contain.
    fault_tripped: AtomicBool,
    /// Set once the trap's image capture has finished. Between the trip
    /// and this flag, every *other* thread that reaches a fault tick parks
    /// (see [`MemorySpace::fault_tick_armed`]): the capture loop photographs
    /// the whole space word by word, and a concurrently running thread
    /// could otherwise complete further transactions *during* the
    /// photograph — leaking post-crash state into some regions of the
    /// image while others (already photographed) predate it, a torn,
    /// causally impossible crash state no real power failure can produce.
    fault_capture_done: AtomicBool,
}

/// Stripe count for eviction sampling; lines hash onto stripes, so
/// unrelated lines rarely contend on the same stream.
const EVICT_STRIPES: usize = 64;

impl std::fmt::Debug for MemorySpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySpace")
            .field("persistent_words", &self.cfg.persistent_words)
            .field("volatile_words", &self.cfg.volatile_words)
            .field("max_threads", &self.cfg.max_threads)
            .finish()
    }
}

impl MemorySpace {
    /// Creates a zero-initialized memory space.
    pub fn new(cfg: PmemConfig) -> Self {
        let total = cfg.total_words() as usize;
        let persistent = cfg.persistent_words as usize;
        let lines = persistent.div_ceil(WORDS_PER_LINE as usize) as u64;
        let queue_capacity = cfg.flush_queue_capacity.next_power_of_two().max(2);
        MemorySpace {
            volatile_view: (0..total).map(|_| AtomicU64::new(0)).collect(),
            persistent_image: (0..persistent).map(|_| AtomicU64::new(0)).collect(),
            line_masks: LazyAtomicArray::new(lines),
            flush_queues: (0..cfg.max_threads)
                .map(|_| FlushQueue::new(queue_capacity, lines))
                .collect(),
            reserve_persistent: AtomicU64::new(WORDS_PER_LINE), // word 0 / line 0 reserved
            reserve_volatile: AtomicU64::new(cfg.persistent_words),
            evict_stripes: (0..EVICT_STRIPES as u64)
                .map(|i| {
                    AtomicU64::new(
                        cfg.crash.seed ^ 0xE51C_7A0D ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    )
                })
                .collect(),
            stats: StatCells::default(),
            fault_step: AtomicU64::new(0),
            fault_image: Mutex::new(None),
            fault_trace: Mutex::new(Vec::new()),
            fault_tripped: AtomicBool::new(false),
            fault_capture_done: AtomicBool::new(false),
            cfg,
        }
    }

    /// Creates a memory space whose persistent region is initialized from a
    /// recovered [`PersistentImage`] — the post-restart state of the
    /// machine. The volatile region is zeroed and reservation cursors are
    /// reset; callers re-establish their layout exactly as a restarted
    /// program would.
    pub fn boot(image: &PersistentImage, cfg: PmemConfig) -> Self {
        assert_eq!(
            image.len_words(),
            cfg.persistent_words,
            "image size must match the configured persistent region"
        );
        let space = MemorySpace::new(cfg);
        for w in 0..image.len_words() {
            let v = image.read(PAddr::new(w));
            space.volatile_view[w as usize].store(v, Ordering::Relaxed);
            space.persistent_image[w as usize].store(v, Ordering::Relaxed);
        }
        space
    }

    /// Returns the configuration this space was built with.
    pub fn config(&self) -> &PmemConfig {
        &self.cfg
    }

    /// Number of words in the persistent region.
    pub fn persistent_words(&self) -> u64 {
        self.cfg.persistent_words
    }

    /// Returns true if `addr` lies in the persistent region.
    pub fn is_persistent(&self, addr: PAddr) -> bool {
        addr.word() < self.cfg.persistent_words
    }

    fn check_bounds(&self, addr: PAddr) {
        assert!(
            addr.word() < self.cfg.total_words(),
            "address {addr} out of bounds (total {} words)",
            self.cfg.total_words()
        );
    }

    /// Reads the word at `addr` from the volatile view (what the CPU sees).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    #[inline]
    pub fn read(&self, addr: PAddr) -> u64 {
        self.check_bounds(addr);
        self.volatile_view[addr.word() as usize].load(Ordering::Acquire)
    }

    /// The dirty-mask contribution of a store to `addr`: its word's bit in
    /// word-granular mode, the full line in the whole-line reference mode.
    #[inline]
    fn store_mask(&self, addr: PAddr) -> u64 {
        match self.cfg.granularity {
            PersistGranularity::Word => 1 << (addr.word() % WORDS_PER_LINE),
            PersistGranularity::Line => (1 << WORDS_PER_LINE) - 1,
        }
    }

    /// Marks `addr`'s word dirty in its line's mask. Must happen *after*
    /// the data store: a concurrent write-back that swaps the mask out
    /// before this OR lands re-dirties the word, so the next write-back or
    /// crash still covers the new value (the OR-after-store order makes the
    /// unmasked ⇒ views-identical invariant race-free; the reverse order
    /// could persist a stale value and then drop the bit).
    #[inline]
    fn mark_written(&self, addr: PAddr) {
        self.line_masks
            .get(addr.line().index())
            .fetch_or(self.store_mask(addr), Ordering::AcqRel);
    }

    /// Writes `value` to the word at `addr` in the volatile view.
    ///
    /// If `addr` is persistent its word is marked in the containing line's
    /// dirty mask and the line may be spontaneously evicted to the
    /// persistent image, per the crash model.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    #[inline]
    pub fn write(&self, addr: PAddr, value: u64) {
        self.check_bounds(addr);
        self.volatile_view[addr.word() as usize].store(value, Ordering::Release);
        if self.is_persistent(addr) {
            self.mark_written(addr);
            let line = addr.line();
            let p = self.cfg.crash.eviction_probability;
            if p > 0.0 && self.evict_chance(line, p) {
                self.persist_line(line);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
            self.fault_tick();
        }
    }

    /// Draws one eviction-sampling coin flip from one of this space's
    /// striped SplitMix64 streams, lock-free. SplitMix64 advances its state
    /// by a constant, so a single `fetch_add` *is* the stream step — no
    /// mutex is taken on the store hot path (the old implementation locked
    /// a global `Mutex<SplitMix64>` on every probabilistic store).
    ///
    /// The stripe is chosen by the *written line*, not the calling thread,
    /// so sampling is a pure function of the space's crash-model seed and
    /// the per-stripe draw order: a single-threaded run replays exactly
    /// given the same seed (no process-global state is involved). With
    /// several threads storing to lines of one stripe concurrently, the
    /// interleaving of their draws is scheduling-dependent — as it already
    /// was for the old single global stream under concurrency.
    fn evict_chance(&self, line: LineId, p: f64) -> bool {
        let stripe =
            (line.index().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize % EVICT_STRIPES;
        // SplitMix64's state step is `state += GOLDEN`; fetch_add returns
        // the previous state, and `chance` performs the same step before
        // mixing, so consecutive draws on a stripe reproduce the seeded
        // stream exactly.
        let prev = self.evict_stripes[stripe].fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        SplitMix64::new(prev).chance(p)
    }

    /// Atomically compare-and-swap the word at `addr` in the volatile view.
    /// Used for lock words (e.g. the single global lock) that live in the
    /// simulated memory. Returns the previous value on success, or the
    /// observed value on failure, matching [`AtomicU64::compare_exchange`].
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn compare_exchange(&self, addr: PAddr, current: u64, new: u64) -> Result<u64, u64> {
        self.check_bounds(addr);
        let r = self.volatile_view[addr.word() as usize].compare_exchange(
            current,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        if r.is_ok() && self.is_persistent(addr) {
            self.mark_written(addr);
        }
        r
    }

    /// Atomic fetch-add on the word at `addr` in the volatile view.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn fetch_add(&self, addr: PAddr, delta: u64) -> u64 {
        self.check_bounds(addr);
        let old = self.volatile_view[addr.word() as usize].fetch_add(delta, Ordering::AcqRel);
        if self.is_persistent(addr) {
            self.mark_written(addr);
        }
        old
    }

    /// Requests a write-back (CLWB) of the line containing `addr`. The line
    /// is persisted when thread `tid`'s queue next drains. Flushing a
    /// volatile address is a no-op, as on real hardware where it simply
    /// would not reach a persistence domain.
    ///
    /// Lock-free and O(1): a per-line generation stamp absorbs duplicate
    /// flushes of a still-pending line, and the enqueue is two plain atomic
    /// stores. Calls for one `tid` must come from a single thread at a time
    /// (see the module docs); every `tid` may flush concurrently with every
    /// other.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds or `tid >= max_threads`.
    pub fn clwb(&self, tid: usize, addr: PAddr) {
        self.check_bounds(addr);
        if !self.is_persistent(addr) {
            return;
        }
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        self.fault_tick();
        let line = addr.line();
        let q = &self.flush_queues[tid];
        let stamp = q.stamps.get(line.index());
        let s = stamp.load(Ordering::Relaxed);
        if s != 0 {
            // The stamp holds `pos + 1` of this queue's latest enqueue of
            // the line (0 = never enqueued). If that enqueue is still
            // unclaimed, the write-back its drain performs covers this
            // flush too and nothing needs to be queued.
            //
            // The fence pairs with the one a claiming drain issues between
            // its claim CAS and its persist loads (store-buffering
            // pattern): either the load below observes the claim — the
            // skip is not taken and the line is re-enqueued — or the
            // drain's persist is guaranteed to read the data store that
            // preceded this clwb. Without it, this thread's data store
            // could still sit in its store buffer while a concurrent
            // foreign drain claims the old enqueue and persists the stale
            // value, losing the write.
            std::sync::atomic::fence(Ordering::SeqCst);
            if s > q.claim.load(Ordering::Relaxed) {
                return;
            }
        }
        let pos = q.tail.load(Ordering::Relaxed);
        if pos - q.done.load(Ordering::Acquire) >= q.slots.len() as u64 {
            // Ring full: complete the write-back immediately. CLWB may
            // finish at any point before the fence on real hardware, so an
            // early write-back is always legal; it is just not
            // deduplicated, and — unlike an asynchronous eviction — the
            // issuing thread is stalled on the full buffer, so it pays the
            // per-word media-write cost here instead of at a later drain.
            let words = self.persist_line(line);
            self.stats
                .overflow_writebacks
                .fetch_add(1, Ordering::Relaxed);
            self.busy_wait_ns(self.cfg.latency.clwb_range(1, words));
            return;
        }
        q.slot(pos).store(line.index(), Ordering::Release);
        q.tail.store(pos + 1, Ordering::Release);
        stamp.store(pos + 1, Ordering::Release);
        trace::record(tid, TraceEventKind::Enqueue, line.index());
    }

    /// Completes all of thread `tid`'s outstanding flushes (SFENCE) and
    /// charges the configured drain latency. Returns the number of lines
    /// this call persisted.
    ///
    /// Any thread may drain any queue (the Section 5.2 forcing paths drain
    /// other threads' queues). Concurrent drains of one queue claim
    /// disjoint ranges, so no line is persisted twice; the call returns
    /// only after every position up to the tail it observed has been
    /// durably retired, even if a concurrent drain claimed part of the
    /// range.
    ///
    /// In the default [`crate::DrainCoalescing::Ranged`] mode the claimed
    /// lines are written back as coalesced ranged flushes — see the module
    /// docs ("Batched drains") for the pipeline and the latency accounting.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= max_threads`.
    pub fn drain(&self, tid: usize) -> u64 {
        let q = &self.flush_queues[tid];
        let mut count = 0u64;
        let mut cost_ns = 0u64;
        let target = q.tail.load(Ordering::Acquire);
        loop {
            let claim = q.claim.load(Ordering::Acquire);
            if claim >= target {
                break;
            }
            if q.claim
                .compare_exchange(claim, target, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // This call owns positions [claim, target): persist them, then
            // retire the range in order so ring slots are never reused
            // while a drain is still reading them. The fence pairs with
            // the one in `clwb`'s dedup skip (see there): it guarantees
            // that any flusher whose skip check did not observe this claim
            // has its preceding data store visible to the persist loads
            // below.
            std::sync::atomic::fence(Ordering::SeqCst);
            self.fault_tick();
            cost_ns = match self.cfg.coalescing {
                DrainCoalescing::Ranged => self.persist_claimed_ranged(tid, q, claim, target),
                DrainCoalescing::PerLine => self.persist_claimed_per_line(q, claim, target),
            };
            count = target - claim;
            // Both retirement waits yield rather than pure-spin: the drain
            // being waited on needs a core to finish persisting, and on a
            // few-core host a spinning waiter is what keeps it descheduled
            // (the same starvation pattern fixed in the NV-HTM
            // checkpointer). Uncontended drains never enter either loop
            // body, so the hot path pays nothing.
            while q.done.load(Ordering::Acquire) != claim {
                std::thread::yield_now();
            }
            q.done.store(target, Ordering::Release);
            break;
        }
        // SFENCE semantics: even when a concurrent drain claimed (part of)
        // the range, do not return before it is durably retired.
        while q.done.load(Ordering::Acquire) < target {
            std::thread::yield_now();
        }
        self.stats.drains.fetch_add(1, Ordering::Relaxed);
        self.fault_tick();
        self.stats
            .lines_persisted
            .fetch_add(count, Ordering::Relaxed);
        self.busy_wait_ns(self.cfg.latency.drain_ns + cost_ns);
        trace::record(tid, TraceEventKind::Drain, count);
        count
    }

    /// Reference write-back: persists the claimed positions one line at a
    /// time in enqueue order, each charged as a single-line ranged flush.
    /// Returns the accumulated flush cost in nanoseconds (charged by the
    /// caller after retirement, alongside the flat drain cost).
    fn persist_claimed_per_line(&self, q: &FlushQueue, claim: u64, target: u64) -> u64 {
        let mut cost_ns = 0u64;
        for pos in claim..target {
            let line = LineId::new(q.slot(pos).load(Ordering::Acquire));
            let words = self.persist_line(line);
            cost_ns += self.cfg.latency.clwb_range(1, words);
        }
        self.note_ranges(target - claim, target - claim);
        cost_ns
    }

    /// Batched write-back (the production pipeline): snapshots the claimed
    /// positions' line ids into a reusable thread-local scratch buffer,
    /// sorts them, and walks maximal runs of adjacent line ids — performing
    /// every run's masked word copies, then charging one
    /// [`crate::LatencyModel::clwb_range`] for the whole run. The runs
    /// exactly partition the claimed range: each position's line is
    /// persisted exactly once (duplicate ids, which the dedup stamps make
    /// impossible within one claimed range, would be skipped defensively).
    /// Returns the accumulated flush cost in nanoseconds.
    fn persist_claimed_ranged(&self, tid: usize, q: &FlushQueue, claim: u64, target: u64) -> u64 {
        thread_local! {
            /// Per-thread drain scratch: claimed line ids awaiting the
            /// coalescing sort. Grown once to the queue capacity (the upper
            /// bound of any claimed range), so steady-state drains stay
            /// allocation-free — the guarantee the counting-allocator tests
            /// enforce across the whole commit path.
            static DRAIN_SCRATCH: std::cell::RefCell<Vec<u64>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        DRAIN_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.clear();
            let want = q.slots.len();
            if scratch.capacity() < want {
                scratch.reserve_exact(want);
            }
            for pos in claim..target {
                scratch.push(q.slot(pos).load(Ordering::Acquire));
            }
            scratch.sort_unstable();
            let mut cost_ns = 0u64;
            let mut ranges = 0u64;
            let mut lines = 0u64;
            let mut i = 0usize;
            while i < scratch.len() {
                let mut prev = scratch[i];
                let mut run_lines = 1u64;
                let mut run_words = self.persist_line(LineId::new(prev));
                i += 1;
                while i < scratch.len() {
                    let id = scratch[i];
                    if id == prev {
                        i += 1; // defensive: never persist a line twice
                        continue;
                    }
                    if id != prev + 1 {
                        break;
                    }
                    run_words += self.persist_line(LineId::new(id));
                    run_lines += 1;
                    prev = id;
                    i += 1;
                }
                cost_ns += self.cfg.latency.clwb_range(run_lines, run_words);
                ranges += 1;
                lines += run_lines;
                trace::record(tid, TraceEventKind::RangedClwb, run_lines);
            }
            self.note_ranges(ranges, lines);
            cost_ns
        })
    }

    /// Records that a drain issued `ranges` ranged flushes covering `lines`
    /// distinct lines.
    fn note_ranges(&self, ranges: u64, lines: u64) {
        if ranges == 0 {
            return;
        }
        self.stats.flush_ranges.fetch_add(ranges, Ordering::Relaxed);
        self.stats.range_lines.fetch_add(lines, Ordering::Relaxed);
    }

    /// Convenience: flush the line of `addr` and drain immediately (a full
    /// persist operation for one location).
    pub fn persist(&self, tid: usize, addr: PAddr) {
        self.clwb(tid, addr);
        self.drain(tid);
    }

    /// Number of lines queued by `tid` and not yet durably retired by a
    /// completed drain.
    pub fn pending_flushes(&self, tid: usize) -> usize {
        self.flush_queues[tid].pending() as usize
    }

    fn busy_wait_ns(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    /// Completes a write-back of `line`: atomically takes the line's
    /// dirty-word mask and copies exactly the masked words from the
    /// volatile view into the persistent image. Returns the number of
    /// words copied (0 for a clean line — its views are already
    /// identical). Invoked by drains, spontaneous evictions, and ring
    /// overflows; updates the word-granular persist counters.
    ///
    /// Taking the mask with a `swap(0)` *before* copying means a store
    /// racing this write-back either lands its value in time to be copied
    /// or re-ORs its bit after the swap and stays dirty — no combination
    /// loses a word (see `mark_written`).
    fn persist_line(&self, line: LineId) -> u64 {
        let Some(slot) = self.line_masks.peek(line.index()) else {
            return 0; // untouched segment: the whole line is clean
        };
        let mask = slot.swap(0, Ordering::AcqRel);
        if mask == 0 {
            return 0;
        }
        let mut words = 0u64;
        let mut line_words = 0u64;
        for (i, addr) in line.words().enumerate() {
            if addr.word() >= self.cfg.persistent_words {
                break;
            }
            line_words += 1;
            if mask & (1 << i) == 0 {
                continue;
            }
            let v = self.volatile_view[addr.word() as usize].load(Ordering::Acquire);
            self.persistent_image[addr.word() as usize].store(v, Ordering::Release);
            words += 1;
        }
        self.stats
            .words_persisted
            .fetch_add(words, Ordering::Relaxed);
        self.stats
            .line_words_persisted
            .fetch_add(line_words, Ordering::Relaxed);
        self.fault_tick();
        words
    }

    /// Reads the *persistent image* (not the volatile view) at `addr`.
    /// Useful in tests to check what would survive a crash right now,
    /// without actually crashing.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a persistent address.
    pub fn read_persisted(&self, addr: PAddr) -> u64 {
        assert!(self.is_persistent(addr), "{addr} is not persistent");
        self.persistent_image[addr.word() as usize].load(Ordering::Acquire)
    }

    /// Simulates a crash / power failure and returns the memory a recovery
    /// observer would find after restart.
    ///
    /// Words already written back are present exactly. Every still-dirty
    /// (masked) word is resolved individually: it keeps its persisted value
    /// or takes its latest volatile value with
    /// [`CrashModel::dirty_word_persist_probability`]. Only masked words
    /// are considered — clean words hold the same value in both views, so
    /// the crash state is exact over the words actually written. The
    /// volatile region is lost entirely.
    pub fn crash(&self) -> PersistentImage {
        self.crash_with(self.cfg.crash)
    }

    /// Like [`MemorySpace::crash`], with an explicit crash model (e.g. to
    /// sweep the persist probability in property tests).
    ///
    /// Each dirty word's persist coin comes from its own seeded stream,
    /// keyed by `(model.seed, word index)`: the resolution of one word is
    /// independent of how many other words are dirty or in which order the
    /// masks are walked, so two spaces that differ only in persist
    /// granularity resolve identical crash states for the words they both
    /// consider dirty.
    pub fn crash_with(&self, model: CrashModel) -> PersistentImage {
        let words = self.cfg.persistent_words;
        let mut image = vec![0u64; words as usize];
        for w in 0..words {
            image[w as usize] = self.persistent_image[w as usize].load(Ordering::Acquire);
        }
        let p = model.dirty_word_persist_probability;
        for line_idx in 0..self.line_masks.len() {
            // Unallocated metadata segments mean every line in them is
            // clean; `load_or_zero` never materializes them.
            let mask = self.line_masks.load_or_zero(line_idx);
            if mask == 0 {
                continue;
            }
            for (i, addr) in LineId::new(line_idx).words().enumerate() {
                if addr.word() >= words {
                    break;
                }
                if mask & (1 << i) == 0 {
                    continue;
                }
                let mut coin = SplitMix64::new(model.seed ^ 0xC2A5_11FE ^ mix64(addr.word()));
                if coin.chance(p) {
                    image[addr.word() as usize] =
                        self.volatile_view[addr.word() as usize].load(Ordering::Acquire);
                }
            }
        }
        PersistentImage::from_words(image)
    }

    /// Advances the fault clock by one persistence step and, when the
    /// armed [`FaultPlan`](crate::FaultPlan) names this step, captures the
    /// crash image of this exact moment. The run then *continues* — the
    /// trap is non-destructive, so a driver replays a deterministic
    /// workload once per step and harvests the image afterwards with
    /// [`MemorySpace::take_fault_image`].
    ///
    /// Disarmed plans (the default) return after a single predictable
    /// branch, keeping the hot path cost-free.
    #[inline]
    fn fault_tick(&self) {
        if !self.cfg.fault.armed {
            return;
        }
        self.fault_tick_armed();
    }

    /// Cold half of [`MemorySpace::fault_tick`], kept out of line so the
    /// disarmed fast path stays a lone branch.
    #[cold]
    fn fault_tick_armed(&self) {
        let step = self.fault_step.fetch_add(1, Ordering::Relaxed) + 1;
        let Some(target) = self.cfg.fault.crash_at_step else {
            return;
        };
        if step == target {
            // Raise the power rail FIRST. The capture loop below runs
            // concurrently with other threads' drains and fences; a fence
            // that completes while the image is being photographed may be
            // only partially in it. Flag-first makes the ack rule sound:
            // a fence that then polls the rail reads `true` and withholds
            // its ack, while a fence whose poll read `false` completed
            // strictly before this store — and therefore before every
            // capture read — so its write-backs are all in the image.
            self.fault_tripped.store(true, Ordering::SeqCst);
            // SC-fence pairing with [`MemorySpace::fault_tripped`]: the
            // flag store alone does not order this thread's *subsequent
            // capture loads* against another thread's write-backs (the
            // store-buffer litmus — both sides may read old). With a
            // SeqCst fence here and one before the poller's load, either
            // the poller reads `true`, or every write-back it issued
            // before its fence is visible to the capture loads below.
            std::sync::atomic::fence(Ordering::SeqCst);
            // Freeze the flight recorders before the image: the image is
            // the "capture complete" signal ([`MemorySpace::take_fault_image`]
            // returning `Some` implies the trace is already in place).
            *self.fault_trace.lock().unwrap() = trace::ring_snapshot_all();
            let image = self.crash_with(self.cfg.fault.crash_model);
            *self.fault_image.lock().unwrap() = Some(image);
            self.fault_capture_done.store(true, Ordering::Release);
        } else if step > target {
            // Capture barrier. The trap is non-destructive and other
            // threads keep running, but the photograph must be a *moment*:
            // a thread that kept mutating pmem while the capture loop
            // walked the space would leak post-crash transactions into the
            // regions photographed late, while regions photographed early
            // still predate them — a torn image whose log can even miss
            // sequences whose effects it contains. Parking every
            // subsequent tick until the capture finishes bounds the leak
            // to at most each thread's single in-flight operation, and an
            // in-flight store is exactly a dirty word at crash — the coin
            // resolution the model already applies. Single-threaded
            // suites never spin here: the capturing thread sets the flag
            // before its own next tick.
            while !self.fault_capture_done.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
        }
    }

    /// Advances the fault clock for an event that is *not* a persistence
    /// action on this space — a lock-word transition in the simulated HTM
    /// runtime, for example. Fallback transactions hold per-line write
    /// locks across their undo-durability and publish windows; ticking at
    /// lock acquire / validate / release lets torture drivers enumerate
    /// crash points that land *inside* a lock-hold window, even though the
    /// lock words themselves are volatile and never appear in a crash
    /// image. Disarmed plans (the default) return after a single
    /// predictable branch, exactly like the internal persistence ticks.
    pub fn fault_event(&self) {
        self.fault_tick();
    }

    /// Number of persistence steps the fault clock has counted so far.
    /// Always 0 when the configured plan is disarmed.
    pub fn fault_steps(&self) -> u64 {
        self.fault_step.load(Ordering::Relaxed)
    }

    /// Takes the crash image captured at the plan's `crash_at_step` tick,
    /// if that step was reached. Returns `None` for disarmed or count-only
    /// plans, when the run finished before the chosen step, or when the
    /// image was already taken.
    pub fn take_fault_image(&self) -> Option<PersistentImage> {
        self.fault_image.lock().unwrap().take()
    }

    /// Takes the per-thread trace-event tails frozen at the same tick as
    /// the [`MemorySpace::take_fault_image`] crash image. Empty when no
    /// trap fired, or when event tracing was disarmed during the run.
    pub fn take_fault_trace(&self) -> Vec<trace::ThreadTrace> {
        std::mem::take(&mut self.fault_trace.lock().unwrap())
    }

    /// Whether the armed plan's crash step has been reached. The trap is
    /// non-destructive — the run continues — so this is the *power rail* a
    /// live service polls: a fence whose post-fence poll reads `false`
    /// completed strictly before the image capture began and is fully in
    /// the image; once a poll reads `true`, the fence may have raced the
    /// capture, so no durability ack may be issued from that point on.
    /// The flag is raised *before* the capture runs, so a supervisor that
    /// observes it must wait for [`MemorySpace::take_fault_image`] to
    /// return `Some` (the capture-complete signal; the frozen trace is in
    /// place by then too). Stays `true` even after the image is taken;
    /// always `false` under disarmed or count-only plans.
    pub fn fault_tripped(&self) -> bool {
        // SC-fence pairing with the capture in `fault_tick_armed`: drain
        // this thread's preceding write-backs before reading the flag. A
        // SeqCst *load* alone may be satisfied before earlier stores
        // leave the store buffer (x86-TSO store→load reordering), which
        // would let a fence poll `false` while the concurrent capture
        // missed its write-backs — an acked-but-lost batch. With fences
        // on both sides, reading `false` guarantees the capture sees
        // every store this thread issued before the poll.
        std::sync::atomic::fence(Ordering::SeqCst);
        self.fault_tripped.load(Ordering::SeqCst)
    }

    /// Reserves `words` consecutive words of persistent memory for a static
    /// structure (a log, a data array). Reservations are line-aligned so
    /// that unrelated structures never share a cache line.
    ///
    /// # Panics
    ///
    /// Panics if the persistent region is exhausted.
    pub fn reserve_persistent(&self, words: u64) -> PAddr {
        let aligned = words.div_ceil(WORDS_PER_LINE) * WORDS_PER_LINE;
        let start = self
            .reserve_persistent
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                cur.checked_add(aligned)
                    .filter(|&end| end <= self.cfg.persistent_words)
            })
            .unwrap_or_else(|cur| {
                panic!(
                    "persistent region exhausted: need {aligned} words at {cur}, have {}",
                    self.cfg.persistent_words
                )
            });
        PAddr::new(start)
    }

    /// Reserves `words` consecutive words of volatile memory (line-aligned).
    ///
    /// # Panics
    ///
    /// Panics if the volatile region is exhausted.
    pub fn reserve_volatile(&self, words: u64) -> PAddr {
        let aligned = words.div_ceil(WORDS_PER_LINE) * WORDS_PER_LINE;
        let start = self
            .reserve_volatile
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                cur.checked_add(aligned)
                    .filter(|&end| end <= self.cfg.total_words())
            })
            .unwrap_or_else(|cur| {
                panic!(
                    "volatile region exhausted: need {aligned} words at {cur}, have {}",
                    self.cfg.total_words()
                )
            });
        PAddr::new(start)
    }

    /// Returns the persist-traffic counters accumulated so far.
    pub fn stats(&self) -> PmemStats {
        PmemStats {
            drains: self.stats.drains.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            lines_persisted: self.stats.lines_persisted.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            overflow_writebacks: self.stats.overflow_writebacks.load(Ordering::Relaxed),
            words_persisted: self.stats.words_persisted.load(Ordering::Relaxed),
            line_words_persisted: self.stats.line_words_persisted.load(Ordering::Relaxed),
            flush_ranges: self.stats.flush_ranges.load(Ordering::Relaxed),
            range_lines: self.stats.range_lines.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyModel;

    fn space() -> MemorySpace {
        MemorySpace::new(PmemConfig::small_for_tests())
    }

    #[test]
    fn read_write_round_trip() {
        let m = space();
        let a = PAddr::new(64);
        assert_eq!(m.read(a), 0);
        m.write(a, 0xDEAD_BEEF);
        assert_eq!(m.read(a), 0xDEAD_BEEF);
    }

    #[test]
    fn disarmed_fault_plan_counts_nothing() {
        let m = space();
        let a = PAddr::new(64);
        m.write(a, 1);
        m.persist(0, a);
        assert_eq!(m.fault_steps(), 0);
        assert!(m.take_fault_image().is_none());
    }

    /// Runs one write+persist of `ops` locations under the given plan and
    /// returns the step count.
    fn counted_run(plan: crate::FaultPlan, ops: u64) -> (MemorySpace, u64) {
        let m = MemorySpace::new(PmemConfig::small_for_tests().with_fault_plan(plan));
        for i in 0..ops {
            let a = PAddr::new(64 + i * WORDS_PER_LINE);
            m.write(a, i + 1);
            m.clwb(0, a);
        }
        m.drain(0);
        let steps = m.fault_steps();
        (m, steps)
    }

    #[test]
    fn fault_clock_counts_deterministically() {
        let (_, a) = counted_run(crate::FaultPlan::count_only(), 5);
        let (_, b) = counted_run(crate::FaultPlan::count_only(), 5);
        assert_eq!(a, b, "same single-threaded run, same step count");
        // 5 writes + 5 clwbs + claim + 5 persists + sfence = 17 ticks.
        assert_eq!(a, 17);
    }

    #[test]
    fn fault_trap_captures_the_mid_pipeline_image() {
        let (_, total) = counted_run(crate::FaultPlan::count_only(), 3);
        // Crash at every step: the image captured before the final drain
        // must miss at least the last value; the final step has everything.
        let (m, _) = counted_run(crate::FaultPlan::crash_at(1, CrashModel::strict()), 3);
        let img = m.take_fault_image().expect("step 1 is reached");
        assert_eq!(img.read(PAddr::new(64)), 0, "nothing drained at step 1");
        let (m, _) = counted_run(crate::FaultPlan::crash_at(total, CrashModel::strict()), 3);
        let img = m.take_fault_image().expect("final step is reached");
        for i in 0..3 {
            assert_eq!(img.read(PAddr::new(64 + i * WORDS_PER_LINE)), i + 1);
        }
        // A step beyond the run captures nothing.
        let (m, _) = counted_run(
            crate::FaultPlan::crash_at(total + 1, CrashModel::strict()),
            3,
        );
        assert!(m.take_fault_image().is_none());
    }

    #[test]
    fn writes_do_not_persist_without_flush_and_drain() {
        let m = space();
        let a = PAddr::new(64);
        m.write(a, 7);
        assert_eq!(m.read_persisted(a), 0);
        let img = m.crash();
        assert_eq!(
            img.read(a),
            0,
            "unflushed write must not persist under strict model"
        );
    }

    #[test]
    fn flush_alone_does_not_persist_but_drain_does() {
        let m = space();
        let a = PAddr::new(64);
        m.write(a, 7);
        m.clwb(0, a);
        assert_eq!(m.read_persisted(a), 0);
        assert_eq!(m.pending_flushes(0), 1);
        let persisted = m.drain(0);
        assert_eq!(persisted, 1);
        assert_eq!(m.read_persisted(a), 7);
        assert_eq!(m.pending_flushes(0), 0);
        assert_eq!(m.crash().read(a), 7);
    }

    #[test]
    fn drain_only_affects_calling_threads_queue() {
        let m = space();
        let a = PAddr::new(64);
        let b = PAddr::new(128);
        m.write(a, 1);
        m.write(b, 2);
        m.clwb(0, a);
        m.clwb(1, b);
        m.drain(0);
        assert_eq!(m.read_persisted(a), 1);
        assert_eq!(m.read_persisted(b), 0);
        m.drain(1);
        assert_eq!(m.read_persisted(b), 2);
    }

    #[test]
    fn duplicate_flushes_of_same_line_are_deduplicated() {
        let m = space();
        let a = PAddr::new(64);
        let b = PAddr::new(65); // same line
        m.write(a, 1);
        m.write(b, 2);
        m.clwb(0, a);
        m.clwb(0, b);
        assert_eq!(m.pending_flushes(0), 1);
        assert_eq!(m.drain(0), 1);
        assert_eq!(m.read_persisted(a), 1);
        assert_eq!(m.read_persisted(b), 2);
    }

    #[test]
    fn reflushing_after_a_drain_enqueues_again() {
        let m = space();
        let a = PAddr::new(64);
        m.write(a, 1);
        m.clwb(0, a);
        assert_eq!(m.drain(0), 1);
        // The stamp from the first enqueue is now below the claim cursor,
        // so a fresh flush of the same line must re-enqueue it.
        m.write(a, 2);
        m.clwb(0, a);
        assert_eq!(m.pending_flushes(0), 1);
        assert_eq!(m.drain(0), 1);
        assert_eq!(m.read_persisted(a), 2);
    }

    #[test]
    fn full_queue_overflow_writes_back_immediately() {
        let cfg = PmemConfig::small_for_tests().with_flush_queue_capacity(8);
        let m = MemorySpace::new(cfg);
        let lines = 20u64;
        for i in 0..lines {
            let a = PAddr::new(64 + i * WORDS_PER_LINE);
            m.write(a, i + 1);
            m.clwb(0, a);
        }
        let s = m.stats();
        assert!(
            s.overflow_writebacks > 0,
            "a 8-deep queue cannot hold 20 lines"
        );
        assert_eq!(m.pending_flushes(0), 8);
        m.drain(0);
        for i in 0..lines {
            assert_eq!(
                m.read_persisted(PAddr::new(64 + i * WORDS_PER_LINE)),
                i + 1,
                "line {i} lost (queued and overflowed lines must both persist)"
            );
        }
    }

    #[test]
    fn foreign_thread_can_drain_another_queue() {
        let m = space();
        let a = PAddr::new(64);
        m.write(a, 5);
        m.clwb(2, a);
        // A different caller completes thread 2's flushes (the Section 5.2
        // forcing path).
        assert_eq!(m.drain(2), 1);
        assert_eq!(m.read_persisted(a), 5);
        assert_eq!(m.pending_flushes(2), 0);
    }

    #[test]
    fn volatile_addresses_are_never_persisted_and_lost_on_crash() {
        let m = space();
        let v = PAddr::new(m.persistent_words()); // first volatile word
        assert!(!m.is_persistent(v));
        m.write(v, 42);
        m.clwb(0, v);
        m.drain(0);
        assert_eq!(m.read(v), 42);
        let img = m.crash();
        assert_eq!(img.len_words(), m.persistent_words());
    }

    #[test]
    fn persist_helper_flushes_and_drains() {
        let m = space();
        let a = PAddr::new(72);
        m.write(a, 9);
        m.persist(0, a);
        assert_eq!(m.read_persisted(a), 9);
    }

    #[test]
    fn whole_line_persists_on_drain() {
        let m = space();
        // Words 64..72 share a line; flushing any one persists all eight.
        for i in 0..8 {
            m.write(PAddr::new(64 + i), 100 + i);
        }
        m.persist(0, PAddr::new(67));
        for i in 0..8 {
            assert_eq!(m.read_persisted(PAddr::new(64 + i)), 100 + i);
        }
    }

    #[test]
    fn adversarial_crash_persists_some_dirty_words() {
        let cfg = PmemConfig::small_for_tests().with_crash(CrashModel {
            eviction_probability: 0.0,
            dirty_word_persist_probability: 0.5,
            seed: 11,
        });
        let m = MemorySpace::new(cfg);
        let n = 512u64;
        for i in 0..n {
            m.write(PAddr::new(64 + i), 1);
        }
        let img = m.crash();
        let persisted: u64 = (0..n).map(|i| img.read(PAddr::new(64 + i))).sum();
        assert!(persisted > 0, "some dirty words should persist");
        assert!(persisted < n, "not all dirty words should persist");
    }

    #[test]
    fn eviction_can_persist_unflushed_writes() {
        let cfg = PmemConfig::small_for_tests().with_crash(CrashModel {
            eviction_probability: 1.0,
            dirty_word_persist_probability: 0.0,
            seed: 5,
        });
        let m = MemorySpace::new(cfg);
        let a = PAddr::new(64);
        m.write(a, 3);
        assert_eq!(
            m.read_persisted(a),
            3,
            "eviction should have written the line back"
        );
        assert!(m.stats().evictions >= 1);
    }

    #[test]
    fn boot_restores_persistent_region_and_clears_volatile() {
        let m = space();
        let a = PAddr::new(64);
        m.write(a, 77);
        m.persist(0, a);
        let v = PAddr::new(m.persistent_words() + 8);
        m.write(v, 123);
        let img = m.crash();
        let rebooted = MemorySpace::boot(&img, *m.config());
        assert_eq!(rebooted.read(a), 77);
        assert_eq!(rebooted.read_persisted(a), 77);
        assert_eq!(rebooted.read(v), 0);
    }

    #[test]
    fn reservations_are_line_aligned_and_disjoint() {
        let m = space();
        let a = m.reserve_persistent(3);
        let b = m.reserve_persistent(9);
        let c = m.reserve_volatile(1);
        assert_eq!(a.word() % WORDS_PER_LINE, 0);
        assert_eq!(b.word() % WORDS_PER_LINE, 0);
        assert!(b.word() >= a.word() + WORDS_PER_LINE);
        assert!(c.word() >= m.persistent_words());
        assert!(a.word() >= WORDS_PER_LINE, "line 0 is reserved");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let m = space();
        m.read(PAddr::new(m.config().total_words()));
    }

    #[test]
    fn compare_exchange_and_fetch_add_work() {
        let m = space();
        let a = PAddr::new(64);
        assert_eq!(m.compare_exchange(a, 0, 5), Ok(0));
        assert_eq!(m.compare_exchange(a, 0, 9), Err(5));
        assert_eq!(m.fetch_add(a, 3), 5);
        assert_eq!(m.read(a), 8);
    }

    #[test]
    fn stats_count_persist_traffic() {
        let m = space();
        let a = PAddr::new(64);
        m.write(a, 1);
        m.clwb(0, a);
        m.drain(0);
        m.drain(0); // empty drain still counts as a drain
        let s = m.stats();
        assert_eq!(s.flushes, 1);
        assert_eq!(s.drains, 2);
        assert_eq!(s.lines_persisted, 1);
        assert_eq!(s.overflow_writebacks, 0);
        // One word of an 8-word line was written, so the word-granular
        // pipeline copied exactly one word where whole lines would have
        // copied eight.
        assert_eq!(s.words_persisted, 1);
        assert_eq!(s.line_words_persisted, 8);
        assert!((s.write_amplification() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn write_amplification_is_full_in_line_reference_mode() {
        let cfg = PmemConfig::small_for_tests().with_granularity(PersistGranularity::Line);
        let m = MemorySpace::new(cfg);
        let a = PAddr::new(64);
        m.write(a, 1);
        m.persist(0, a);
        let s = m.stats();
        assert_eq!(s.words_persisted, 8);
        assert_eq!(s.line_words_persisted, 8);
        assert_eq!(s.write_amplification(), 1.0);
    }

    #[test]
    fn masked_writeback_covers_unflushed_words_of_the_line() {
        // The mask lives on the line, not in the queue: a word written
        // after its line was enqueued is still covered by the drain.
        let m = space();
        m.write(PAddr::new(64), 1);
        m.clwb(0, PAddr::new(64));
        m.write(PAddr::new(65), 2); // same line, after the flush
        m.drain(0);
        assert_eq!(m.read_persisted(PAddr::new(64)), 1);
        assert_eq!(m.read_persisted(PAddr::new(65)), 2);
        assert_eq!(m.stats().words_persisted, 2);
    }

    #[test]
    fn drain_latency_is_charged() {
        let cfg = PmemConfig::small_for_tests().with_latency(LatencyModel {
            drain_ns: 200_000,
            ..LatencyModel::instant()
        });
        let m = MemorySpace::new(cfg);
        m.write(PAddr::new(64), 1);
        m.clwb(0, PAddr::new(64));
        let start = Instant::now();
        m.drain(0);
        assert!(start.elapsed().as_nanos() >= 200_000);
    }

    #[test]
    fn overflow_writebacks_charge_the_per_word_cost() {
        // A full ring completes the write-back synchronously, so the
        // issuing thread must pay the same per-word media cost a drain
        // would — overflow must never be a cheaper way to persist.
        let cfg = PmemConfig::small_for_tests()
            .with_flush_queue_capacity(2)
            .with_latency(LatencyModel {
                clwb_word_ns: 50_000,
                ..LatencyModel::instant()
            });
        let m = MemorySpace::new(cfg);
        // Fill the 2-slot ring, then overflow with a third dirty line.
        for l in 0..3 {
            m.write(PAddr::new(64 + l * WORDS_PER_LINE), l + 1);
            if l < 2 {
                m.clwb(0, PAddr::new(64 + l * WORDS_PER_LINE));
            }
        }
        let start = Instant::now();
        m.clwb(0, PAddr::new(64 + 2 * WORDS_PER_LINE));
        assert!(m.stats().overflow_writebacks >= 1);
        assert!(
            start.elapsed().as_nanos() >= 50_000,
            "the overflowed line's dirty word must be charged"
        );
    }

    #[test]
    fn adjacent_lines_coalesce_into_one_ranged_flush() {
        let m = space();
        // Four adjacent lines plus one far-away line: two runs.
        for l in 0..4 {
            let a = PAddr::new(64 + l * WORDS_PER_LINE);
            m.write(a, l + 1);
            m.clwb(0, a);
        }
        let far = PAddr::new(64 + 100 * WORDS_PER_LINE);
        m.write(far, 99);
        m.clwb(0, far);
        assert_eq!(m.drain(0), 5);
        let s = m.stats();
        assert_eq!(s.lines_persisted, 5);
        assert_eq!(s.flush_ranges, 2, "one run of 4 adjacent lines + 1 far");
        assert_eq!(s.range_lines, 5);
        assert!((s.lines_per_range() - 2.5).abs() < 1e-12);
        for l in 0..4 {
            assert_eq!(m.read_persisted(PAddr::new(64 + l * WORDS_PER_LINE)), l + 1);
        }
        assert_eq!(m.read_persisted(far), 99);
    }

    #[test]
    fn coalescing_ignores_enqueue_order() {
        let m = space();
        // Enqueue adjacent lines out of order; the sort still finds the run.
        for l in [3u64, 0, 2, 1] {
            let a = PAddr::new(64 + l * WORDS_PER_LINE);
            m.write(a, l + 1);
            m.clwb(0, a);
        }
        m.drain(0);
        let s = m.stats();
        assert_eq!(s.flush_ranges, 1);
        assert_eq!(s.range_lines, 4);
    }

    #[test]
    fn per_line_reference_mode_issues_one_range_per_line() {
        let cfg = PmemConfig::small_for_tests().with_coalescing(DrainCoalescing::PerLine);
        let m = MemorySpace::new(cfg);
        for l in 0..4 {
            let a = PAddr::new(64 + l * WORDS_PER_LINE);
            m.write(a, l + 1);
            m.clwb(0, a);
        }
        assert_eq!(m.drain(0), 4);
        let s = m.stats();
        assert_eq!(s.flush_ranges, 4, "reference mode never coalesces");
        assert_eq!(s.range_lines, 4);
        assert_eq!(s.lines_per_range(), 1.0);
        for l in 0..4 {
            assert_eq!(m.read_persisted(PAddr::new(64 + l * WORDS_PER_LINE)), l + 1);
        }
    }

    #[test]
    fn ranged_flush_base_cost_is_charged_per_run() {
        let cfg = PmemConfig::small_for_tests().with_latency(LatencyModel {
            clwb_range_ns: 200_000,
            ..LatencyModel::instant()
        });
        let m = MemorySpace::new(cfg);
        // Two adjacent dirty lines: one run, so exactly one base charge.
        for l in 0..2 {
            let a = PAddr::new(64 + l * WORDS_PER_LINE);
            m.write(a, 1);
            m.clwb(0, a);
        }
        let start = Instant::now();
        m.drain(0);
        assert!(
            start.elapsed().as_nanos() >= 200_000,
            "the coalesced run must pay its flush base cost"
        );
        assert_eq!(m.stats().flush_ranges, 1);
    }

    #[test]
    fn per_word_latency_is_charged_for_persisted_words() {
        let cfg = PmemConfig::small_for_tests().with_latency(LatencyModel {
            clwb_word_ns: 50_000,
            ..LatencyModel::instant()
        });
        let m = MemorySpace::new(cfg);
        for i in 0..4 {
            m.write(PAddr::new(64 + i), i);
        }
        m.clwb(0, PAddr::new(64));
        let start = Instant::now();
        m.drain(0);
        assert!(
            start.elapsed().as_nanos() >= 4 * 50_000,
            "four dirty words must each be charged"
        );
    }
}
