//! The state a recovery observer sees after a crash.

use crafty_common::PAddr;

/// A snapshot of the persistent region as found after a (simulated) crash.
///
/// The recovery observer (implemented in `crafty-core::recovery`) reads log
/// entries from the image and rolls back incomplete transactions by writing
/// old values back into it. Once recovery finishes, the image can be booted
/// into a fresh [`crate::MemorySpace`] to continue execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PersistentImage {
    words: Vec<u64>,
}

impl PersistentImage {
    /// Wraps a raw word array as a persistent image.
    pub fn from_words(words: Vec<u64>) -> Self {
        PersistentImage { words }
    }

    /// Creates an all-zero image of `words` words (a factory-fresh device).
    pub fn zeroed(words: u64) -> Self {
        PersistentImage {
            words: vec![0; words as usize],
        }
    }

    /// Number of words in the image.
    pub fn len_words(&self) -> u64 {
        self.words.len() as u64
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn read(&self, addr: PAddr) -> u64 {
        self.words[addr.word() as usize]
    }

    /// Writes `value` at `addr` (used by recovery rollback).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn write(&mut self, addr: PAddr, value: u64) {
        self.words[addr.word() as usize] = value;
    }

    /// Returns the underlying words.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_image_reads_zero() {
        let img = PersistentImage::zeroed(128);
        assert_eq!(img.len_words(), 128);
        assert_eq!(img.read(PAddr::new(5)), 0);
    }

    #[test]
    fn writes_are_visible() {
        let mut img = PersistentImage::zeroed(16);
        img.write(PAddr::new(3), 99);
        assert_eq!(img.read(PAddr::new(3)), 99);
        assert_eq!(img.as_words()[3], 99);
    }

    #[test]
    fn from_words_round_trips() {
        let img = PersistentImage::from_words(vec![1, 2, 3]);
        assert_eq!(img.len_words(), 3);
        assert_eq!(img.read(PAddr::new(2)), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        PersistentImage::zeroed(4).read(PAddr::new(4));
    }
}
