//! A simple thread-safe allocator over a region of the persistent heap.
//!
//! Dynamic structures in the workloads (B+-tree nodes, reservation records,
//! hash-table buckets) allocate from this. The design is intentionally
//! simple — a bump pointer plus size-class free lists — because allocator
//! policy is not under evaluation; what matters is that engines can log and
//! replay allocation decisions (Section 6, "Memory management").

use std::collections::HashMap;

use crafty_common::{PAddr, WORDS_PER_LINE};
use parking_lot::Mutex;

/// A thread-safe bump + free-list allocator over `[start, start+words)`.
#[derive(Debug)]
pub struct PmemAllocator {
    start: PAddr,
    words: u64,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    cursor: u64,
    free_lists: HashMap<u64, Vec<PAddr>>,
    live_allocations: u64,
}

impl PmemAllocator {
    /// Creates an allocator serving the region `[start, start + words)`.
    pub fn new(start: PAddr, words: u64) -> Self {
        PmemAllocator {
            start,
            words,
            inner: Mutex::new(Inner {
                cursor: 0,
                free_lists: HashMap::new(),
                live_allocations: 0,
            }),
        }
    }

    /// Allocates `words` consecutive words (rounded up to a whole cache
    /// line so that independently allocated objects never share a line,
    /// matching the cache-line-aligned objects used in the paper's
    /// microbenchmarks). Returns `None` when the region is exhausted.
    pub fn alloc(&self, words: u64) -> Option<PAddr> {
        let size = Self::size_class(words);
        let mut inner = self.inner.lock();
        if let Some(addr) = inner.free_lists.get_mut(&size).and_then(Vec::pop) {
            inner.live_allocations += 1;
            return Some(addr);
        }
        if inner.cursor + size > self.words {
            return None;
        }
        let addr = self.start.add(inner.cursor);
        inner.cursor += size;
        inner.live_allocations += 1;
        Some(addr)
    }

    /// Returns `addr` (previously returned by [`PmemAllocator::alloc`] with
    /// the same `words`) to the allocator.
    pub fn free(&self, addr: PAddr, words: u64) {
        let size = Self::size_class(words);
        let mut inner = self.inner.lock();
        inner.free_lists.entry(size).or_default().push(addr);
        inner.live_allocations = inner.live_allocations.saturating_sub(1);
    }

    /// Number of allocations currently live (allocated and not freed).
    pub fn live_allocations(&self) -> u64 {
        self.inner.lock().live_allocations
    }

    /// Words already consumed from the region (monotone; freed blocks are
    /// recycled but never returned to the bump cursor).
    pub fn used_words(&self) -> u64 {
        self.inner.lock().cursor
    }

    fn size_class(words: u64) -> u64 {
        words.max(1).div_ceil(WORDS_PER_LINE) * WORDS_PER_LINE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allocator() -> PmemAllocator {
        PmemAllocator::new(PAddr::new(1024), 4096)
    }

    #[test]
    fn allocations_are_disjoint_and_line_aligned() {
        let a = allocator();
        let x = a.alloc(3).expect("alloc");
        let y = a.alloc(3).expect("alloc");
        assert_ne!(x, y);
        assert_eq!(x.word() % WORDS_PER_LINE, 0);
        assert_eq!(y.word() % WORDS_PER_LINE, 0);
        assert!(y.word() >= x.word() + WORDS_PER_LINE || x.word() >= y.word() + WORDS_PER_LINE);
    }

    #[test]
    fn freed_blocks_are_reused() {
        let a = allocator();
        let x = a.alloc(8).expect("alloc");
        a.free(x, 8);
        let y = a.alloc(8).expect("alloc");
        assert_eq!(x, y, "free list should be recycled before bumping");
    }

    #[test]
    fn exhaustion_returns_none() {
        let a = PmemAllocator::new(PAddr::new(0), 16);
        assert!(a.alloc(8).is_some());
        assert!(a.alloc(8).is_some());
        assert!(a.alloc(8).is_none());
    }

    #[test]
    fn live_and_used_counters() {
        let a = allocator();
        assert_eq!(a.live_allocations(), 0);
        let x = a.alloc(1).expect("alloc");
        let _y = a.alloc(1).expect("alloc");
        assert_eq!(a.live_allocations(), 2);
        assert_eq!(a.used_words(), 2 * WORDS_PER_LINE);
        a.free(x, 1);
        assert_eq!(a.live_allocations(), 1);
    }

    #[test]
    fn concurrent_allocations_do_not_overlap() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let a = Arc::new(PmemAllocator::new(PAddr::new(0), 64 * 1024));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                (0..256)
                    .map(|_| a.alloc(2).expect("alloc").word())
                    .collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for w in h.join().expect("allocator thread panicked") {
                assert!(seen.insert(w), "address {w} handed out twice");
            }
        }
    }
}
