//! Simulated byte-addressable persistent memory.
//!
//! The Crafty paper evaluates on DRAM-emulated NVM: persistent memory is
//! ordinary memory, and the round-trip persist latency is emulated by busy
//! waiting 300 ns at each drain (SFENCE) operation. This crate reproduces
//! that methodology and adds what the paper's artifact lacks — an actual
//! crash model — so that recovery (Section 5) can be implemented and tested:
//!
//! * [`MemorySpace`] — a word-addressable space with a persistent and a
//!   volatile region, a cache-like volatile view, CLWB/SFENCE persist
//!   operations, spontaneous evictions, and latency emulation.
//! * [`PersistentImage`] — what survives a [`MemorySpace::crash`]; the
//!   input to the recovery observer.
//! * [`PmemAllocator`] — a simple allocator over a persistent heap region.
//!
//! # Example
//!
//! ```
//! use crafty_common::PAddr;
//! use crafty_pmem::{MemorySpace, PmemConfig};
//!
//! let mem = MemorySpace::new(PmemConfig::small_for_tests());
//! let slot = mem.reserve_persistent(1);
//! mem.write(slot, 42);
//! // Not yet durable: it has not been flushed.
//! assert_eq!(mem.crash().read(slot), 0);
//! mem.persist(0, slot);
//! assert_eq!(mem.crash().read(slot), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod config;
pub mod image;
pub mod space;

pub use alloc::PmemAllocator;
pub use config::{CrashModel, LatencyModel, PmemConfig};
pub use image::PersistentImage;
pub use space::{MemorySpace, PmemStats};
