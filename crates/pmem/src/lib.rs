//! Simulated byte-addressable persistent memory — a lock-free, sharded
//! persistence domain.
//!
//! The Crafty paper evaluates on DRAM-emulated NVM: persistent memory is
//! ordinary memory, and the round-trip persist latency is emulated by busy
//! waiting 300 ns at each drain (SFENCE) operation. This crate reproduces
//! that methodology and adds what the paper's artifact lacks — an actual
//! crash model — so that recovery (Section 5) can be implemented and tested:
//!
//! * [`MemorySpace`] — a word-addressable space with a persistent and a
//!   volatile region, a cache-like volatile view, CLWB/SFENCE persist
//!   operations, spontaneous evictions, and latency emulation.
//! * [`PersistentImage`] — what survives a [`MemorySpace::crash`]; the
//!   input to the recovery observer.
//! * [`PmemAllocator`] — a simple allocator over a persistent heap region.
//!
//! # Persistence must not serialize the fast path
//!
//! Crafty's core claim is that persistence tracking can ride along with the
//! HTM fast path instead of serializing it, so the simulated persistence
//! domain is built the same way:
//!
//! * **[`MemorySpace::clwb`] and [`MemorySpace::drain`] are mutex-free.**
//!   Each thread slot owns a single-writer flush-queue ring; duplicate
//!   flushes of a pending line are absorbed in O(1) by a generation-stamped
//!   per-line dedup table (the [`crafty_common::GenSet`] idea applied to
//!   shared memory: a drain's claim-cursor bump invalidates every stamp
//!   behind it at once). Drains — from the owner or, on the Section 5.2
//!   forcing paths, from any other thread — claim the pending range with a
//!   single CAS.
//! * **Persistence is word-granular.** Every store marks exactly its word
//!   in a per-line dirty-word mask; write-backs copy (and the latency
//!   model charges for) only the masked words, and the crash models
//!   resolve only words actually written. [`PmemStats::words_persisted`] /
//!   [`PmemStats::line_words_persisted`] turn write amplification at the
//!   persist boundary into a measured number. See the [`space`] module
//!   docs for the invariant that makes this observably identical to
//!   whole-line write-back (and [`PersistGranularity::Line`] for the
//!   reference mode differential tests compare against).
//! * **Drains are batched: adjacent CLWBs coalesce into ranged flushes.**
//!   A drain sorts the lines it claimed and writes them back as maximal
//!   runs of adjacent line ids, charging one
//!   [`LatencyModel::clwb_range`] (per-run base + per-line + per-word)
//!   per run — consecutive undo-log lines share one flush base cost
//!   instead of paying it per line. [`PmemStats::flush_ranges`] /
//!   [`PmemStats::range_lines`] measure the coalescing;
//!   [`DrainCoalescing::PerLine`] keeps the one-line-at-a-time reference
//!   mode the differential tests pin against.
//! * **Line metadata is sharded and lazily allocated.** Dirty-word masks
//!   and dedup stamps live in [`crafty_common::LazyAtomicArray`] segments
//!   materialized on first touch, so very large simulated spaces pay
//!   metadata proportional to the lines they *touch*, not to their size.
//! * **The steady-state flush path performs zero heap allocations** once
//!   the touched segments exist — the same counting-allocator-enforced
//!   guarantee the transaction descriptors in `crafty-htm` carry.
//!
//! See the [`space`] module docs for the full design, including the ring
//! overflow rule (a full queue completes write-backs immediately, which is
//! a legal early CLWB completion) and the single-writer contract on
//! `clwb(tid, ..)`.
//!
//! # Example
//!
//! ```
//! use crafty_common::PAddr;
//! use crafty_pmem::{MemorySpace, PmemConfig};
//!
//! let mem = MemorySpace::new(PmemConfig::small_for_tests());
//! let slot = mem.reserve_persistent(1);
//! mem.write(slot, 42);
//! // Not yet durable: it has not been flushed.
//! assert_eq!(mem.crash().read(slot), 0);
//! mem.persist(0, slot);
//! assert_eq!(mem.crash().read(slot), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod config;
pub mod image;
pub mod space;

pub use alloc::PmemAllocator;
pub use config::{
    CrashModel, DrainCoalescing, FaultPlan, LatencyModel, PersistGranularity, PmemConfig,
};
pub use image::PersistentImage;
pub use space::{MemorySpace, PmemStats};
