//! Log-bucketed latency histograms for tail-latency reporting.
//!
//! Throughput alone cannot judge a durability design: the cost of a drain
//! barrier shows up as *tail* latency under load, and an open-loop arrival
//! process makes that tail visible (a closed-loop driver silently slows
//! its own arrivals when the server stalls — coordinated omission). The
//! service benchmarks therefore record every request's latency into a
//! [`LatencyHistogram`] and report percentiles (p50/p99/p999).
//!
//! The histogram is HdrHistogram-shaped: values below
//! [`LatencyHistogram::PRECISION`] · 2 are counted exactly, and every
//! higher octave is split into [`LatencyHistogram::PRECISION`] sub-buckets,
//! bounding the relative quantization error at `1 / PRECISION` (~3%) over
//! the full `u64` nanosecond range. The bucket array is allocated once at
//! construction and [`LatencyHistogram::record`] touches nothing else, so
//! recording is allocation-free in steady state; per-thread histograms
//! merge with [`LatencyHistogram::merge`].

/// Number of sub-buckets per octave (and the largest exactly-counted
/// magnitude's half): 32 sub-buckets bound relative error at ~3%.
const PRECISION_BITS: u32 = 5;

/// Bucket count: two exact octaves plus 58 subdivided ones.
const BUCKETS: usize = (64 - PRECISION_BITS as usize + 1) * (1 << PRECISION_BITS);

/// A log-bucketed histogram of nanosecond latencies.
///
/// ```
/// use crafty_stats::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [100, 200, 300, 400, 1_000_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.5) >= 290 && h.percentile(0.5) <= 310);
/// assert!(h.percentile(1.0) >= 970_000);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Sub-buckets per octave; quantization error is bounded by
    /// `1 / PRECISION`.
    pub const PRECISION: u64 = 1 << PRECISION_BITS;

    /// Creates an empty histogram. This is the only allocation the
    /// histogram ever performs.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index of a value: exact below `2 · PRECISION`, log-linear
    /// above (top `PRECISION_BITS + 1` significant bits select the bucket).
    fn index(ns: u64) -> usize {
        if ns < 2 * Self::PRECISION {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros();
        let shift = msb - PRECISION_BITS;
        let sub = (ns >> shift) as usize - Self::PRECISION as usize;
        ((msb - PRECISION_BITS) as usize + 1) * Self::PRECISION as usize + sub
    }

    /// The representative value reported for a bucket: the midpoint of the
    /// value range mapping to it (the value itself for exact buckets).
    fn bucket_value(index: usize) -> u64 {
        let precision = Self::PRECISION as usize;
        if index < 2 * precision {
            return index as u64;
        }
        let octave = index / precision - 1;
        let shift = octave as u32;
        let low = ((index % precision + precision) as u64) << shift;
        low + (1u64 << shift) / 2
    }

    /// Records one latency sample, in nanoseconds. Allocation-free.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::index(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.max = self.max.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded sample (not quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The latency at quantile `q` (`0.5` = median, `0.999` = p999):
    /// the representative value of the first bucket at which the running
    /// count reaches `q · count`, except that the top quantile reports the
    /// exact maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if target == self.count {
            // The top rank is the maximum, which is tracked exactly.
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The final bucket's representative may overshoot the real
                // maximum; the exact max is tracked, so report it instead.
                return Self::bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one (per-thread recorders merging
    /// into a run total).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.percentile(1.0 / 64.0), 0);
        assert_eq!(h.percentile(0.5), 31);
        assert_eq!(h.percentile(1.0), 63);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn large_values_quantize_within_bound() {
        let mut h = LatencyHistogram::new();
        let v = 1_234_567_891u64;
        h.record(v);
        let p = h.percentile(0.5);
        let err = p.abs_diff(v) as f64 / v as f64;
        assert!(err <= 1.0 / LatencyHistogram::PRECISION as f64, "err {err}");
    }

    #[test]
    fn index_is_monotone_and_in_range() {
        let mut probes: Vec<u64> = Vec::new();
        for bits in 0..64u32 {
            for off in [0u64, 1, 3] {
                probes.push((1u64 << bits).saturating_add(off << bits.saturating_sub(3)));
            }
        }
        probes.sort_unstable();
        let mut last = 0usize;
        for v in probes {
            let i = LatencyHistogram::index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(i >= last, "index not monotone at {v}");
            last = i;
        }
        assert_eq!(LatencyHistogram::index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_value_round_trips_through_index() {
        for i in 0..BUCKETS {
            let v = LatencyHistogram::bucket_value(i);
            assert_eq!(
                LatencyHistogram::index(v),
                i,
                "representative of bucket {i} maps elsewhere"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let samples_a = [5u64, 900, 17, 1 << 40, 33_000];
        let samples_b = [0u64, 12, 900, 2_000_000];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for &s in &samples_a {
            a.record(s);
            whole.record(s);
        }
        for &s in &samples_b {
            b.record(s);
            whole.record(s);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 9);
        assert_eq!(a.max(), 1 << 40);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
    }
}
