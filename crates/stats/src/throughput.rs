//! Throughput measurement and normalization.
//!
//! The paper defines throughput as the inverse of wall-clock execution time
//! and normalizes every series to the single-thread throughput of the
//! Non-durable configuration of the same benchmark (Section 7.1). These
//! types carry one measured point, a per-engine series over thread counts,
//! and a whole figure (several engines on one benchmark).

use std::collections::BTreeMap;
use std::time::Duration;

use crate::latency::LatencyHistogram;

/// The thread counts every figure in the paper sweeps.
pub const PAPER_THREAD_COUNTS: [usize; 7] = [1, 2, 4, 8, 12, 15, 16];

/// One measured run: an engine, a thread count, how much work was done and
/// how long it took — plus, for latency-aware benchmarks (the open-loop
/// service runs), the per-request latency distribution.
#[derive(Clone, PartialEq, Debug)]
pub struct Measurement {
    /// Engine name as used in the figure legends (e.g. `"Crafty"`).
    pub engine: String,
    /// Number of worker threads.
    pub threads: usize,
    /// Number of persistent transactions executed across all threads.
    pub transactions: u64,
    /// Wall-clock time of the measured region.
    pub elapsed: Duration,
    /// Per-request latency distribution, when the benchmark measures one
    /// (closed-loop throughput runs leave this `None`).
    pub latency: Option<LatencyHistogram>,
}

impl Measurement {
    /// A throughput-only measurement (the closed-loop benchmarks).
    pub fn throughput_only(
        engine: impl Into<String>,
        threads: usize,
        transactions: u64,
        elapsed: Duration,
    ) -> Self {
        Measurement {
            engine: engine.into(),
            threads,
            transactions,
            elapsed,
            latency: None,
        }
    }

    /// Attaches a latency histogram (builder style).
    pub fn with_latency(mut self, histogram: LatencyHistogram) -> Self {
        self.latency = Some(histogram);
        self
    }

    /// Transactions per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.transactions as f64 / self.elapsed.as_secs_f64()
    }

    /// The standard tail-latency triple `(p50, p99, p999)` in nanoseconds,
    /// when a latency distribution was recorded.
    pub fn latency_percentiles(&self) -> Option<(u64, u64, u64)> {
        self.latency
            .as_ref()
            .map(|h| (h.percentile(0.50), h.percentile(0.99), h.percentile(0.999)))
    }
}

/// A figure: one benchmark, several engines, several thread counts.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Figure {
    /// Figure title (e.g. `"bank (high contention)"`).
    pub title: String,
    /// All collected measurements.
    pub points: Vec<Measurement>,
}

impl Figure {
    /// Creates an empty figure with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        Figure {
            title: title.into(),
            points: Vec::new(),
        }
    }

    /// Adds one measurement.
    pub fn push(&mut self, m: Measurement) {
        self.points.push(m);
    }

    /// The baseline used for normalization: the single-thread throughput of
    /// `baseline_engine` (the paper uses Non-durable). Falls back to the
    /// smallest thread count present for that engine.
    pub fn baseline_throughput(&self, baseline_engine: &str) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.engine == baseline_engine)
            .min_by_key(|p| p.threads)
            .map(Measurement::throughput)
    }

    /// Returns `engine`'s normalized throughput per thread count, ordered
    /// by thread count. Normalization divides by
    /// [`Figure::baseline_throughput`]; if the baseline is missing the raw
    /// throughput is reported.
    pub fn normalized_series(&self, engine: &str, baseline_engine: &str) -> Vec<(usize, f64)> {
        let base = self.baseline_throughput(baseline_engine).unwrap_or(1.0);
        let base = if base > 0.0 { base } else { 1.0 };
        let mut by_threads: BTreeMap<usize, f64> = BTreeMap::new();
        for p in self.points.iter().filter(|p| p.engine == engine) {
            by_threads.insert(p.threads, p.throughput() / base);
        }
        by_threads.into_iter().collect()
    }

    /// All engine names present, in first-appearance order.
    pub fn engines(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.engine) {
                seen.push(p.engine.clone());
            }
        }
        seen
    }

    /// All thread counts present, ascending.
    pub fn thread_counts(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self.points.iter().map(|p| p.threads).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Whether any point of the figure carries a latency distribution
    /// (drives the optional percentile columns in the rendered output).
    pub fn has_latency(&self) -> bool {
        self.points.iter().any(|p| p.latency.is_some())
    }

    /// The `(p50, p99, p999)` triple of `engine` at `threads`, if that
    /// point exists and recorded latency.
    pub fn latency_percentiles(&self, engine: &str, threads: usize) -> Option<(u64, u64, u64)> {
        self.points
            .iter()
            .find(|p| p.engine == engine && p.threads == threads)
            .and_then(Measurement::latency_percentiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(engine: &str, threads: usize, txns: u64, millis: u64) -> Measurement {
        Measurement::throughput_only(engine, threads, txns, Duration::from_millis(millis))
    }

    #[test]
    fn throughput_is_transactions_per_second() {
        assert!((m("x", 1, 500, 500).throughput() - 1000.0).abs() < 1e-6);
        assert_eq!(
            Measurement {
                elapsed: Duration::ZERO,
                ..m("x", 1, 5, 1)
            }
            .throughput(),
            0.0
        );
    }

    #[test]
    fn normalization_uses_single_thread_baseline() {
        let mut fig = Figure::new("bank");
        fig.push(m("Non-durable", 1, 1000, 1000)); // 1000 tx/s
        fig.push(m("Crafty", 1, 800, 1000)); // 0.8 normalized
        fig.push(m("Crafty", 2, 1600, 1000)); // 1.6 normalized
        let series = fig.normalized_series("Crafty", "Non-durable");
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 0.8).abs() < 1e-9);
        assert!((series[1].1 - 1.6).abs() < 1e-9);
    }

    #[test]
    fn engines_and_thread_counts_enumerate_cleanly() {
        let mut fig = Figure::new("t");
        fig.push(m("A", 4, 1, 1));
        fig.push(m("B", 1, 1, 1));
        fig.push(m("A", 1, 1, 1));
        assert_eq!(fig.engines(), vec!["A".to_string(), "B".to_string()]);
        assert_eq!(fig.thread_counts(), vec![1, 4]);
    }

    #[test]
    fn missing_baseline_falls_back_to_raw_throughput() {
        let mut fig = Figure::new("t");
        fig.push(m("A", 1, 100, 1000));
        let series = fig.normalized_series("A", "Non-durable");
        assert!((series[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn paper_thread_counts_match_figures() {
        assert_eq!(PAPER_THREAD_COUNTS, [1, 2, 4, 8, 12, 15, 16]);
    }

    #[test]
    fn latency_percentiles_surface_through_figure() {
        use crate::latency::LatencyHistogram;
        let mut fig = Figure::new("kvserve");
        fig.push(m("Non-durable", 1, 100, 10));
        assert!(!fig.has_latency());
        assert_eq!(fig.latency_percentiles("Non-durable", 1), None);

        let mut h = LatencyHistogram::new();
        for ns in [1_000u64, 2_000, 3_000, 100_000] {
            h.record(ns);
        }
        fig.push(m("Crafty", 1, 100, 10).with_latency(h));
        assert!(fig.has_latency());
        let (p50, p99, p999) = fig.latency_percentiles("Crafty", 1).expect("latency");
        assert!(p50 <= p99 && p99 <= p999);
        assert!((1_900..=2_100).contains(&p50), "p50 {p50}");
        assert!(p999 >= 95_000, "p999 {p999}");
        assert_eq!(fig.latency_percentiles("Crafty", 2), None);
    }
}
