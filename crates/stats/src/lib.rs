//! Measurement and reporting for the Crafty reproduction.
//!
//! This crate turns raw runs into the numbers the paper reports:
//!
//! * [`Measurement`] / [`Figure`] — throughput points and per-benchmark
//!   series, normalized to single-thread Non-durable throughput exactly as
//!   in Section 7.1. A measurement may additionally carry a
//!   [`LatencyHistogram`]; figures with latency data also render and emit
//!   percentile (p50/p99/p999) columns.
//! * [`latency`] — the log-bucketed, mergeable, allocation-free-in-steady-
//!   state latency histogram behind the service benchmarks' tail-latency
//!   reporting.
//! * [`report`] — text/CSV rendering of every figure, of the
//!   persistent/hardware transaction breakdowns (Figures 9–21), and of
//!   Table 1 (writes per transaction).
//! * [`json`] — a dependency-free JSON builder for machine-readable
//!   benchmark artifacts such as `BENCH_hotpath.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod latency;
pub mod report;
pub mod throughput;

pub use json::Json;
pub use latency::LatencyHistogram;
pub use report::{render_breakdown, render_figure, render_figure_csv, render_writes_per_txn_row};
pub use throughput::{Figure, Measurement, PAPER_THREAD_COUNTS};
