//! A minimal JSON document builder.
//!
//! The workspace is built in an offline environment without `serde`, so the
//! machine-readable benchmark artifacts (`BENCH_hotpath.json`) are rendered
//! through this small value type instead. It supports exactly what the
//! artifacts need: objects with ordered keys, arrays, strings, integers,
//! and finite floats.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (u64 covers every counter the artifacts emit).
    UInt(u64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object whose keys keep insertion order, so rendered artifacts
    /// diff cleanly between runs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds (or appends — keys are not deduplicated) a field to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Object(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Renders the value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Renders the value with two-space indentation (for committed
    /// artifacts that humans also read).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_sequence(out, depth, pretty, '[', ']', items.len(), |out, i| {
                    items[i].write(out, depth + 1, pretty);
                });
            }
            Json::Object(fields) => {
                write_sequence(out, depth, pretty, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, depth + 1, pretty);
                });
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

fn write_sequence(
    out: &mut String,
    depth: usize,
    pretty: bool,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str("  ");
            }
        }
        item(out, i);
    }
    if pretty && len > 0 {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::from("a\"b\n").render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let j = Json::object()
            .with("z", Json::from(1u64))
            .with("a", Json::Array(vec![Json::from(2u64), Json::Null]));
        assert_eq!(j.render(), "{\"z\":1,\"a\":[2,null]}");
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::object().with("k", Json::Array(vec![Json::from(1u64)]));
        assert_eq!(j.render_pretty(), "{\n  \"k\": [\n    1\n  ]\n}\n");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_non_object_panics() {
        Json::Null.set("k", Json::Null);
    }
}
