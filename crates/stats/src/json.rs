//! A minimal JSON document builder and parser.
//!
//! The workspace is built in an offline environment without `serde`, so the
//! machine-readable benchmark artifacts (`BENCH_hotpath.json`) are rendered
//! through this small value type instead. It supports exactly what the
//! artifacts need: objects with ordered keys, arrays, strings, integers,
//! and finite floats. [`Json::parse`] reads the same documents back — the
//! CI perf-regression gate uses it to compare a fresh benchmark run against
//! the committed baseline artifact.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (u64 covers every counter the artifacts emit).
    UInt(u64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object whose keys keep insertion order, so rendered artifacts
    /// diff cleanly between runs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds (or appends — keys are not deduplicated) a field to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Object(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Looks up a field of an object (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Array(items) => items,
            _ => &[],
        }
    }

    /// The value as an `f64` ([`Json::UInt`] widens losslessly enough for
    /// the artifacts' counters).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this builder renders, which is
    /// all the workspace's artifacts use: objects, arrays, strings without
    /// `\u` surrogate pairs, integers, floats, booleans, and `null`).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.at));
        }
        Ok(value)
    }

    /// Renders the value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Renders the value with two-space indentation (for committed
    /// artifacts that humans also read).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_sequence(out, depth, pretty, '[', ']', items.len(), |out, i| {
                    items[i].write(out, depth + 1, pretty);
                });
            }
            Json::Object(fields) => {
                write_sequence(out, depth, pretty, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, depth + 1, pretty);
                });
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

fn write_sequence(
    out: &mut String,
    depth: usize,
    pretty: bool,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str("  ");
            }
        }
        item(out, i);
    }
    if pretty && len > 0 {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.at,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.at
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.at,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.at,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.at += 4;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                Some(b) => {
                    // Consume one UTF-8 scalar. The input came in as a
                    // &str, so the byte stream is valid UTF-8 and the
                    // leading byte determines the scalar's width — no need
                    // to re-validate the remainder of the document (which
                    // would make string parsing quadratic).
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let scalar = self
                        .bytes
                        .get(self.at..self.at + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or("truncated UTF-8 scalar")?;
                    out.push_str(scalar);
                    self.at += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).map_err(|e| e.to_string())?;
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("invalid number {text:?}: {e}"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::from("a\"b\n").render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let j = Json::object()
            .with("z", Json::from(1u64))
            .with("a", Json::Array(vec![Json::from(2u64), Json::Null]));
        assert_eq!(j.render(), "{\"z\":1,\"a\":[2,null]}");
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::object().with("k", Json::Array(vec![Json::from(1u64)]));
        assert_eq!(j.render_pretty(), "{\n  \"k\": [\n    1\n  ]\n}\n");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_non_object_panics() {
        Json::Null.set("k", Json::Null);
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::object()
            .with("engine", Json::from("Crafty"))
            .with("threads", Json::from(4u64))
            .with("ops_per_sec", Json::Float(123456.78))
            .with(
                "points",
                Json::Array(vec![Json::Null, Json::Bool(true), Json::from("a\"b\n")]),
            );
        for rendered in [doc.render(), doc.render_pretty()] {
            let parsed = Json::parse(&rendered).expect("parse");
            assert_eq!(parsed, doc);
        }
    }

    #[test]
    fn parse_accessors_navigate_documents() {
        let parsed = Json::parse(
            r#"{"config": {"seed": 42}, "points": [{"engine": "Crafty", "ops_per_sec": 1.5e3}]}"#,
        )
        .expect("parse");
        assert_eq!(
            parsed
                .get("config")
                .and_then(|c| c.get("seed"))
                .and_then(Json::as_u64),
            Some(42)
        );
        let point = &parsed.get("points").expect("points").items()[0];
        assert_eq!(point.get("engine").and_then(Json::as_str), Some("Crafty"));
        assert_eq!(
            point.get("ops_per_sec").and_then(Json::as_f64),
            Some(1500.0)
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_negative_and_unicode() {
        let parsed = Json::parse(r#"[-2.5, "A\t"]"#).expect("parse");
        assert_eq!(parsed.items()[0].as_f64(), Some(-2.5));
        assert_eq!(parsed.items()[1].as_str(), Some("A\t"));
    }
}
