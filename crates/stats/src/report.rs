//! Rendering figures and tables as text and CSV.
//!
//! The harness cannot draw the paper's plots, so every figure is rendered
//! as the table of numbers behind it: one row per thread count, one column
//! per engine, values normalized exactly as in the paper. Tables (Table 1,
//! the breakdowns of Figures 9–21) are rendered the same way.

use crafty_common::{AbortCause, BreakdownSnapshot, CompletionPath, HwTxnOutcome, TxnPhase};

use crate::throughput::Figure;

/// Renders a figure as an aligned text table of normalized throughputs.
/// When any point carries a latency distribution, a second table with the
/// p50/p99/p999 columns follows (figures from the closed-loop benchmarks
/// render exactly as before).
pub fn render_figure(figure: &Figure, baseline_engine: &str) -> String {
    let engines = figure.engines();
    let threads = figure.thread_counts();
    let mut out = String::new();
    out.push_str(&format!("# {}\n", figure.title));
    out.push_str(&format!("{:>8}", "threads"));
    for e in &engines {
        out.push_str(&format!("{e:>20}"));
    }
    out.push('\n');
    for &t in &threads {
        out.push_str(&format!("{t:>8}"));
        for e in &engines {
            let v = figure
                .normalized_series(e, baseline_engine)
                .into_iter()
                .find(|(threads, _)| *threads == t)
                .map(|(_, v)| v);
            match v {
                Some(v) => out.push_str(&format!("{v:>20.3}")),
                None => out.push_str(&format!("{:>20}", "-")),
            }
        }
        out.push('\n');
    }
    if figure.has_latency() {
        out.push_str(&format!("# {} — latency µs (p50/p99/p999)\n", figure.title));
        out.push_str(&format!("{:>8}", "threads"));
        for e in &engines {
            out.push_str(&format!("{e:>26}"));
        }
        out.push('\n');
        for &t in &threads {
            out.push_str(&format!("{t:>8}"));
            for e in &engines {
                match figure.latency_percentiles(e, t) {
                    Some((p50, p99, p999)) => out.push_str(&format!(
                        "{:>26}",
                        format!(
                            "{:.1}/{:.1}/{:.1}",
                            p50 as f64 / 1_000.0,
                            p99 as f64 / 1_000.0,
                            p999 as f64 / 1_000.0
                        )
                    )),
                    None => out.push_str(&format!("{:>26}", "-")),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Renders a figure as CSV (`threads,engine,normalized_throughput,raw_tps`).
/// Figures with latency data gain `p50_ns,p99_ns,p999_ns` columns; the
/// header and rows of throughput-only figures are unchanged, so existing
/// consumers keep parsing them as before.
pub fn render_figure_csv(figure: &Figure, baseline_engine: &str) -> String {
    let latency = figure.has_latency();
    let mut out = String::from("benchmark,threads,engine,normalized_throughput,raw_tps");
    if latency {
        out.push_str(",p50_ns,p99_ns,p999_ns");
    }
    out.push('\n');
    let base = figure.baseline_throughput(baseline_engine).unwrap_or(1.0);
    let base = if base > 0.0 { base } else { 1.0 };
    for p in &figure.points {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.3}",
            figure.title,
            p.threads,
            p.engine,
            p.throughput() / base,
            p.throughput()
        ));
        if latency {
            match p.latency_percentiles() {
                Some((p50, p99, p999)) => out.push_str(&format!(",{p50},{p99},{p999}")),
                None => out.push_str(",,,"),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the persistent-transaction and hardware-transaction breakdowns
/// of one engine run (the stacked bars of Figures 9–21, as numbers).
pub fn render_breakdown(engine: &str, snapshot: &BreakdownSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!("{engine}: persistent transactions\n"));
    for path in CompletionPath::ALL {
        out.push_str(&format!(
            "  {:>12}: {}\n",
            path.label(),
            snapshot.completions(path)
        ));
    }
    out.push_str(&format!("{engine}: hardware transactions\n"));
    for outcome in HwTxnOutcome::ALL {
        out.push_str(&format!(
            "  {:>12}: {}\n",
            outcome.label(),
            snapshot.hw(outcome)
        ));
    }
    if snapshot.total_abort_causes() > 0 {
        out.push_str(&format!("{engine}: abort causes\n"));
        for cause in AbortCause::ALL {
            out.push_str(&format!(
                "  {:>17}: {}\n",
                cause.label(),
                snapshot.abort_cause(cause)
            ));
        }
    }
    if snapshot.total_phase_cycles() > 0 {
        // Phase-cycle decomposition (needs a Counters-level traced run).
        // Log/Redo/Validate/SGL partition the transactions' execution
        // time; drain/fence re-attribute the persistence stalls *within*
        // those phases, so the six rows deliberately sum to more than the
        // wall time.
        out.push_str(&format!("{engine}: phase cycles (virtual ns)\n"));
        let total = snapshot.total_phase_cycles();
        for phase in TxnPhase::ALL {
            let cycles = snapshot.phase_cycles(phase);
            out.push_str(&format!(
                "  {:>12}: {:>14}  ({:.1}%)\n",
                phase.label(),
                cycles,
                100.0 * cycles as f64 / total as f64
            ));
        }
    }
    out.push_str(&format!(
        "  writes/txn: {:.2}   drains: {}   flushed lines: {}\n",
        snapshot.writes_per_txn(),
        snapshot.persist_drains,
        snapshot.flushed_lines
    ));
    out
}

/// One row of Table 1: average writes per persistent transaction.
pub fn render_writes_per_txn_row(benchmark: &str, per_thread_counts: &[(usize, f64)]) -> String {
    let mut out = format!("{benchmark:<24}");
    for (threads, writes) in per_thread_counts {
        out.push_str(&format!("  {threads:>2}:{writes:>6.1}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::Measurement;
    use std::time::Duration;

    fn figure() -> Figure {
        let mut fig = Figure::new("bank (high contention)");
        for (engine, threads, txns) in [
            ("Non-durable", 1, 1000u64),
            ("Crafty", 1, 700),
            ("Crafty", 2, 1200),
            ("NV-HTM", 1, 500),
        ] {
            fig.push(Measurement::throughput_only(
                engine,
                threads,
                txns,
                Duration::from_secs(1),
            ));
        }
        fig
    }

    #[test]
    fn text_table_contains_all_engines_and_thread_counts() {
        let s = render_figure(&figure(), "Non-durable");
        assert!(s.contains("bank (high contention)"));
        assert!(s.contains("Crafty"));
        assert!(s.contains("NV-HTM"));
        assert!(s.contains("0.700"));
        assert!(s.contains("1.200"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_has_one_row_per_point_plus_header() {
        let fig = figure();
        let csv = render_figure_csv(&fig, "Non-durable");
        assert_eq!(csv.lines().count(), fig.points.len() + 1);
        assert!(csv.starts_with("benchmark,threads,engine"));
        // Throughput-only figures keep the pre-latency schema exactly.
        assert!(!csv.contains("p50_ns"));
    }

    #[test]
    fn latency_figures_render_percentile_columns() {
        use crate::latency::LatencyHistogram;
        let mut fig = figure();
        let mut h = LatencyHistogram::new();
        for ns in [10_000u64, 20_000, 30_000, 900_000] {
            h.record(ns);
        }
        fig.push(
            Measurement::throughput_only("Crafty", 4, 100, Duration::from_secs(1)).with_latency(h),
        );
        let text = render_figure(&fig, "Non-durable");
        assert!(text.contains("latency µs (p50/p99/p999)"));
        assert!(text.lines().filter(|l| l.starts_with('#')).count() == 2);
        let csv = render_figure_csv(&fig, "Non-durable");
        assert!(csv.starts_with("benchmark,threads,engine,normalized_throughput,raw_tps,p50_ns"));
        // The latency-less points keep empty percentile cells.
        assert!(csv.contains(",,,"));
    }

    #[test]
    fn breakdown_lists_every_category() {
        let s = render_breakdown("Crafty", &BreakdownSnapshot::default());
        for label in [
            "read-only",
            "redo",
            "validate",
            "sgl",
            "commit",
            "conflict",
            "capacity",
        ] {
            assert!(s.contains(label), "missing {label} in breakdown");
        }
    }

    #[test]
    fn breakdown_renders_phase_and_cause_sections_when_present() {
        let r = crafty_common::BreakdownRecorder::new();
        r.record_phase_cycles(TxnPhase::Log, 600);
        r.record_phase_cycles(TxnPhase::Drain, 400);
        r.record_abort_cause(AbortCause::PersistentDoomed);
        r.record_abort_cause(AbortCause::SglFallback);
        let s = render_breakdown("Crafty", &r.snapshot());
        assert!(s.contains("abort causes"));
        assert!(s.contains("persistent-doomed: 1"));
        assert!(s.contains("sgl-fallback: 1"));
        assert!(s.contains("phase cycles"));
        assert!(s.contains("(60.0%)"));
        assert!(s.contains("(40.0%)"));
        // An untraced run renders neither optional section.
        let bare = render_breakdown("Crafty", &BreakdownSnapshot::default());
        assert!(!bare.contains("phase cycles"));
        assert!(!bare.contains("abort causes"));
    }

    #[test]
    fn table1_row_contains_thread_counts_and_values() {
        let row = render_writes_per_txn_row("bank (high)", &[(1, 10.0), (16, 10.0)]);
        assert!(row.contains("bank (high)"));
        assert!(row.contains("16:"));
        assert!(row.contains("10.0"));
    }
}
