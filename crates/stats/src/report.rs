//! Rendering figures and tables as text and CSV.
//!
//! The harness cannot draw the paper's plots, so every figure is rendered
//! as the table of numbers behind it: one row per thread count, one column
//! per engine, values normalized exactly as in the paper. Tables (Table 1,
//! the breakdowns of Figures 9–21) are rendered the same way.

use crafty_common::{BreakdownSnapshot, CompletionPath, HwTxnOutcome};

use crate::throughput::Figure;

/// Renders a figure as an aligned text table of normalized throughputs.
pub fn render_figure(figure: &Figure, baseline_engine: &str) -> String {
    let engines = figure.engines();
    let threads = figure.thread_counts();
    let mut out = String::new();
    out.push_str(&format!("# {}\n", figure.title));
    out.push_str(&format!("{:>8}", "threads"));
    for e in &engines {
        out.push_str(&format!("{e:>20}"));
    }
    out.push('\n');
    for &t in &threads {
        out.push_str(&format!("{t:>8}"));
        for e in &engines {
            let v = figure
                .normalized_series(e, baseline_engine)
                .into_iter()
                .find(|(threads, _)| *threads == t)
                .map(|(_, v)| v);
            match v {
                Some(v) => out.push_str(&format!("{v:>20.3}")),
                None => out.push_str(&format!("{:>20}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a figure as CSV (`threads,engine,normalized_throughput,raw_tps`).
pub fn render_figure_csv(figure: &Figure, baseline_engine: &str) -> String {
    let mut out = String::from("benchmark,threads,engine,normalized_throughput,raw_tps\n");
    let base = figure.baseline_throughput(baseline_engine).unwrap_or(1.0);
    let base = if base > 0.0 { base } else { 1.0 };
    for p in &figure.points {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.3}\n",
            figure.title,
            p.threads,
            p.engine,
            p.throughput() / base,
            p.throughput()
        ));
    }
    out
}

/// Renders the persistent-transaction and hardware-transaction breakdowns
/// of one engine run (the stacked bars of Figures 9–21, as numbers).
pub fn render_breakdown(engine: &str, snapshot: &BreakdownSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!("{engine}: persistent transactions\n"));
    for path in CompletionPath::ALL {
        out.push_str(&format!(
            "  {:>12}: {}\n",
            path.label(),
            snapshot.completions(path)
        ));
    }
    out.push_str(&format!("{engine}: hardware transactions\n"));
    for outcome in HwTxnOutcome::ALL {
        out.push_str(&format!(
            "  {:>12}: {}\n",
            outcome.label(),
            snapshot.hw(outcome)
        ));
    }
    out.push_str(&format!(
        "  writes/txn: {:.2}   drains: {}   flushed lines: {}\n",
        snapshot.writes_per_txn(),
        snapshot.persist_drains,
        snapshot.flushed_lines
    ));
    out
}

/// One row of Table 1: average writes per persistent transaction.
pub fn render_writes_per_txn_row(benchmark: &str, per_thread_counts: &[(usize, f64)]) -> String {
    let mut out = format!("{benchmark:<24}");
    for (threads, writes) in per_thread_counts {
        out.push_str(&format!("  {threads:>2}:{writes:>6.1}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::Measurement;
    use std::time::Duration;

    fn figure() -> Figure {
        let mut fig = Figure::new("bank (high contention)");
        for (engine, threads, txns) in [
            ("Non-durable", 1, 1000u64),
            ("Crafty", 1, 700),
            ("Crafty", 2, 1200),
            ("NV-HTM", 1, 500),
        ] {
            fig.push(Measurement {
                engine: engine.to_string(),
                threads,
                transactions: txns,
                elapsed: Duration::from_secs(1),
            });
        }
        fig
    }

    #[test]
    fn text_table_contains_all_engines_and_thread_counts() {
        let s = render_figure(&figure(), "Non-durable");
        assert!(s.contains("bank (high contention)"));
        assert!(s.contains("Crafty"));
        assert!(s.contains("NV-HTM"));
        assert!(s.contains("0.700"));
        assert!(s.contains("1.200"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_has_one_row_per_point_plus_header() {
        let fig = figure();
        let csv = render_figure_csv(&fig, "Non-durable");
        assert_eq!(csv.lines().count(), fig.points.len() + 1);
        assert!(csv.starts_with("benchmark,threads,engine"));
    }

    #[test]
    fn breakdown_lists_every_category() {
        let s = render_breakdown("Crafty", &BreakdownSnapshot::default());
        for label in [
            "read-only",
            "redo",
            "validate",
            "sgl",
            "commit",
            "conflict",
            "capacity",
        ] {
            assert!(s.contains(label), "missing {label} in breakdown");
        }
    }

    #[test]
    fn table1_row_contains_thread_counts_and_values() {
        let row = render_writes_per_txn_row("bank (high)", &[(1, 10.0), (16, 10.0)]);
        assert!(row.contains("bank (high)"));
        assert!(row.contains("16:"));
        assert!(row.contains("10.0"));
    }
}
