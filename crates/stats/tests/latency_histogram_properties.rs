//! Property tests for the log-bucketed latency histogram: every reported
//! percentile must agree with an exact sorted-reference oracle to within
//! the histogram's quantization bound, under arbitrary sample mixes,
//! arbitrary split/merge partitions, and the full `u64` range.

use crafty_stats::LatencyHistogram;
use proptest::prelude::*;

/// The exact oracle: nearest-rank percentile over the sorted samples
/// (`ceil(q·n)`-th smallest), matching the histogram's rank definition.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Quantization bound: the histogram subdivides each octave into
/// `PRECISION` sub-buckets and reports bucket midpoints, so any reported
/// value differs from some sample in the target bucket by at most one
/// sub-bucket width — a relative error of `1/PRECISION` (plus 1 ns of
/// integer slack for the exact low range).
fn within_bound(reported: u64, exact: u64) -> bool {
    let tolerance = exact / LatencyHistogram::PRECISION + 1;
    reported.abs_diff(exact) <= tolerance
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Percentiles of arbitrary small-to-huge sample sets stay within the
    /// quantization bound of the exact sorted-reference answer.
    #[test]
    fn percentiles_match_sorted_oracle(samples in prop::collection::vec(0u64..u64::MAX, 1..400)) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let reported = h.percentile(q);
            let exact = exact_percentile(&sorted, q);
            prop_assert!(
                within_bound(reported, exact),
                "q={} reported={} exact={} (n={})",
                q, reported, exact, sorted.len()
            );
        }
        // The exact maximum is reported exactly, not quantized.
        prop_assert_eq!(h.percentile(1.0), *sorted.last().unwrap());
    }

    /// Percentiles are monotone in the quantile, and merging per-thread
    /// histograms gives exactly the histogram of the union.
    #[test]
    fn merge_is_union_and_percentiles_are_monotone(
        a in prop::collection::vec(0u64..1_000_000_000_000, 1..200),
        b in prop::collection::vec(0u64..1_000_000_000_000, 1..200),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hu = LatencyHistogram::new();
        for &s in &a {
            ha.record(s);
            hu.record(s);
        }
        for &s in &b {
            hb.record(s);
            hu.record(s);
        }
        ha.merge(&hb);
        prop_assert_eq!(&ha, &hu);

        let mut union_sorted: Vec<u64> = a.iter().chain(&b).copied().collect();
        union_sorted.sort_unstable();
        let mut last = 0u64;
        for q in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999, 1.0] {
            let reported = ha.percentile(q);
            prop_assert!(reported >= last, "percentile not monotone at q={}", q);
            last = reported;
            let exact = exact_percentile(&union_sorted, q);
            prop_assert!(
                within_bound(reported, exact),
                "merged q={} reported={} exact={}",
                q, reported, exact
            );
        }
    }
}
