//! The persistent per-session dedup table behind the service's
//! exactly-once contract.
//!
//! A client session is one logical request stream: the server's `Hello`
//! handshake assigns (or resumes) a session id, and every sequenced write
//! the client sends carries `(session, seq)` with `seq` starting at 1 and
//! incrementing by one per write. The table records, **in the persistent
//! heap**, the highest sequence each session has applied plus a small
//! window of cached responses — and it is mutated *inside the same
//! [`TxnOps`] transaction as the store write it guards*, so the pair
//! "write applied" / "seq recorded" is crash-atomic. Replaying a batch
//! after a lost ack therefore re-applies nothing: the lookup classifies
//! each request as fresh (apply + record), a replay (return the cached
//! response, touch nothing), or a protocol violation (gap / too old /
//! unknown session), and this classification survives a server
//! crash-restart because the table lives in the same heap the store does.
//!
//! # Persistent layout
//!
//! Reservation order (deterministic, so [`SessionTable::open`] replays it
//! on a rebooted space, exactly like [`crate::ShardedKv`]):
//!
//! ```text
//! root block   8 words   [MAGIC, capacity, next_sid, 0, 0, 0, 0, 0]
//! slots        capacity × 24 words (three cache lines each):
//!              [sid, last_seq,
//!               (tag, value) × REPLY_WINDOW,   // cached responses
//!               6 words pad]
//! ```
//!
//! The slot of session `sid` is `(sid − 1) mod capacity`. Slots are
//! reused round-robin as `next_sid` grows past `capacity`; a session whose
//! slot was reclaimed can no longer resume (its `Hello` is refused), which
//! is safe — refusing a resume only forces the client to fail loudly, it
//! never double-applies.
//!
//! Cached responses cover the last [`REPLY_WINDOW`] sequence numbers
//! (response of `seq` lives at ring position `(seq − 1) mod REPLY_WINDOW`),
//! so a client that never pipelines more than `REPLY_WINDOW` sequenced
//! writes per batch can always replay an unacked batch and get every
//! response back. Anything older is reported [`SeqCheck::Stale`].

use crafty_common::{PAddr, TxAbort, TxnOps, WORDS_PER_LINE};
use crafty_pmem::MemorySpace;

/// Root-block magic: identifies an initialized session table when
/// [`SessionTable::open`] attaches to a rebooted space.
const MAGIC: u64 = 0x43AF_7E6B_5E55_0001;

/// Cached responses kept per session — the deepest sequenced batch a
/// client may have in flight and still replay losslessly.
pub const REPLY_WINDOW: u64 = 8;

// Root block word offsets.
const ROOT_MAGIC: u64 = 0;
const ROOT_CAPACITY: u64 = 1;
const ROOT_NEXT_SID: u64 = 2;
const ROOT_WORDS: u64 = 8;

// Slot word offsets.
const SLOT_SID: u64 = 0;
const SLOT_LAST_SEQ: u64 = 1;
const SLOT_REPLIES: u64 = 2;
/// Three cache lines per slot: 2 header words + 16 reply words + 6 pad.
const SLOT_WORDS: u64 = 24;

// Cached-response tags.
const REPLY_NONE: u64 = 0;
const REPLY_FOUND: u64 = 1;
const REPLY_MISSING: u64 = 2;

/// A response cached in the session table: the wire-level outcome of a
/// sequenced write (`Found { value }` or `Missing`), engine-agnostic so
/// the KV crate does not depend on the server's protocol types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CachedReply {
    /// True for a `Found`-shaped response carrying `value`, false for
    /// `Missing` (`value` is then ignored).
    pub found: bool,
    /// The value of a `Found` response.
    pub value: u64,
}

impl CachedReply {
    /// A `Found { value }` response.
    pub fn found(value: u64) -> Self {
        CachedReply { found: true, value }
    }

    /// A `Missing` response.
    pub fn missing() -> Self {
        CachedReply {
            found: false,
            value: 0,
        }
    }
}

/// Classification of a sequenced request against its session's record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeqCheck {
    /// `seq == last_seq + 1`: apply the write and [`SessionTable::record`]
    /// it in the same transaction.
    Fresh,
    /// Already applied, response still cached: return it, touch nothing.
    Replay(CachedReply),
    /// `seq` is ahead of `last_seq + 1`: the client skipped a sequence
    /// number. Protocol violation — drop the connection.
    Gap {
        /// The highest sequence the session has applied.
        last_seq: u64,
    },
    /// Already applied but older than the reply window: the response is
    /// gone. A correct client never re-sends this deep; protocol
    /// violation.
    Stale,
    /// No live session with this id (never allocated, or its slot was
    /// reclaimed). Protocol violation.
    Unknown,
}

/// The persistent session table. Plain addresses — copy it freely, rebuild
/// it with [`SessionTable::open`] after a reboot.
#[derive(Clone, Copy, Debug)]
pub struct SessionTable {
    root: PAddr,
    slots: PAddr,
    capacity: u64,
}

impl SessionTable {
    /// Reserves and initializes a fresh table with `capacity` concurrent
    /// session slots (rounded up to a power of two, minimum 8), persisting
    /// the initial state.
    pub fn create(mem: &MemorySpace, capacity: u64) -> Self {
        let t = Self::layout(mem, capacity);
        mem.write(t.root.add(ROOT_MAGIC), MAGIC);
        mem.write(t.root.add(ROOT_CAPACITY), t.capacity);
        mem.write(t.root.add(ROOT_NEXT_SID), 1);
        for w in 0..t.capacity * SLOT_WORDS {
            mem.write(t.slots.add(w), 0);
        }
        t.persist_all(mem, 0);
        t
    }

    /// Attaches to an existing table on a (typically rebooted) space by
    /// replaying the same deterministic reservations as
    /// [`SessionTable::create`] and validating the root block.
    ///
    /// # Panics
    ///
    /// Panics if the root block does not contain a table created with an
    /// equivalent capacity.
    pub fn open(mem: &MemorySpace, capacity: u64) -> Self {
        let t = Self::layout(mem, capacity);
        assert_eq!(
            mem.read(t.root.add(ROOT_MAGIC)),
            MAGIC,
            "no session table found at the replayed root address"
        );
        assert_eq!(
            mem.read(t.root.add(ROOT_CAPACITY)),
            t.capacity,
            "session table was created with a different capacity"
        );
        assert!(
            mem.read(t.root.add(ROOT_NEXT_SID)) >= 1,
            "session id allocator is corrupt"
        );
        t
    }

    /// Performs the reservation sequence shared by `create` and `open`.
    fn layout(mem: &MemorySpace, capacity: u64) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        let root = mem.reserve_persistent(ROOT_WORDS);
        let slots = mem.reserve_persistent(capacity * SLOT_WORDS);
        SessionTable {
            root,
            slots,
            capacity,
        }
    }

    /// Session slots the table holds.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Sessions allocated so far (direct read; exact when quiescent).
    pub fn sessions_allocated(&self, mem: &MemorySpace) -> u64 {
        mem.read(self.root.add(ROOT_NEXT_SID)).saturating_sub(1)
    }

    #[inline]
    fn slot(&self, sid: u64) -> PAddr {
        self.slots
            .add(((sid - 1) & (self.capacity - 1)) * SLOT_WORDS)
    }

    #[inline]
    fn reply_addr(slot: PAddr, seq: u64) -> PAddr {
        slot.add(SLOT_REPLIES + ((seq - 1) % REPLY_WINDOW) * 2)
    }

    /// Handles a `Hello`: allocates a fresh session (`requested == 0`) or
    /// resumes an existing one. Returns `Some((sid, last_seq))` on
    /// success, `None` when the requested session cannot be resumed (never
    /// allocated, or its slot has been reclaimed by a newer session).
    ///
    /// Allocation claims the slot inside the calling transaction: sid,
    /// `last_seq = 0`, and all cached-response tags cleared, so a replayed
    /// `(session, seq)` from a long-dead previous occupant can never leak
    /// into the new session.
    ///
    /// # Errors
    ///
    /// Propagates [`TxAbort`] from the underlying transaction.
    pub fn begin(
        &self,
        ops: &mut dyn TxnOps,
        requested: u64,
    ) -> Result<Option<(u64, u64)>, TxAbort> {
        if requested != 0 {
            let next = ops.read(self.root.add(ROOT_NEXT_SID))?;
            if requested >= next {
                return Ok(None); // never allocated
            }
            let slot = self.slot(requested);
            if ops.read(slot.add(SLOT_SID))? != requested {
                return Ok(None); // slot reclaimed by a newer session
            }
            let last_seq = ops.read(slot.add(SLOT_LAST_SEQ))?;
            return Ok(Some((requested, last_seq)));
        }
        let sid = ops.read(self.root.add(ROOT_NEXT_SID))?;
        ops.write(self.root.add(ROOT_NEXT_SID), sid + 1)?;
        let slot = self.slot(sid);
        ops.write(slot.add(SLOT_SID), sid)?;
        ops.write(slot.add(SLOT_LAST_SEQ), 0)?;
        for r in 0..REPLY_WINDOW {
            ops.write(slot.add(SLOT_REPLIES + r * 2), REPLY_NONE)?;
        }
        Ok(Some((sid, 0)))
    }

    /// Classifies `(sid, seq)` against the session's persistent record.
    /// Run this in the *same transaction* as the write it guards, before
    /// the write; apply + [`SessionTable::record`] only on
    /// [`SeqCheck::Fresh`].
    ///
    /// # Errors
    ///
    /// Propagates [`TxAbort`] from the underlying transaction.
    pub fn check(&self, ops: &mut dyn TxnOps, sid: u64, seq: u64) -> Result<SeqCheck, TxAbort> {
        if sid == 0 || seq == 0 {
            return Ok(SeqCheck::Unknown);
        }
        let slot = self.slot(sid);
        if ops.read(slot.add(SLOT_SID))? != sid {
            return Ok(SeqCheck::Unknown);
        }
        let last_seq = ops.read(slot.add(SLOT_LAST_SEQ))?;
        if seq == last_seq + 1 {
            return Ok(SeqCheck::Fresh);
        }
        if seq > last_seq {
            return Ok(SeqCheck::Gap { last_seq });
        }
        if seq + REPLY_WINDOW <= last_seq {
            return Ok(SeqCheck::Stale);
        }
        let at = Self::reply_addr(slot, seq);
        let reply = match ops.read(at)? {
            REPLY_FOUND => CachedReply::found(ops.read(at.add(1))?),
            REPLY_MISSING => CachedReply::missing(),
            // The window slot was never written for this seq — possible
            // only for corrupted state; refuse rather than invent a reply.
            _ => return Ok(SeqCheck::Stale),
        };
        Ok(SeqCheck::Replay(reply))
    }

    /// Records an applied write: advances `last_seq` to `seq` and caches
    /// its response. Must run in the same transaction as the write, after
    /// a [`SeqCheck::Fresh`] classification.
    ///
    /// # Errors
    ///
    /// Propagates [`TxAbort`] from the underlying transaction.
    pub fn record(
        &self,
        ops: &mut dyn TxnOps,
        sid: u64,
        seq: u64,
        reply: CachedReply,
    ) -> Result<(), TxAbort> {
        let slot = self.slot(sid);
        ops.write(slot.add(SLOT_LAST_SEQ), seq)?;
        let at = Self::reply_addr(slot, seq);
        if reply.found {
            ops.write(at, REPLY_FOUND)?;
            ops.write(at.add(1), reply.value)?;
        } else {
            ops.write(at, REPLY_MISSING)?;
            ops.write(at.add(1), 0)?;
        }
        Ok(())
    }

    /// Flushes and drains every line the table occupies through thread
    /// `tid`'s flush queue — setup-time persistence after
    /// [`SessionTable::create`], where no engine persists on the caller's
    /// behalf.
    pub fn persist_all(&self, mem: &MemorySpace, tid: usize) {
        for off in (0..ROOT_WORDS).step_by(WORDS_PER_LINE as usize) {
            mem.clwb(tid, self.root.add(off));
        }
        for off in (0..self.capacity * SLOT_WORDS).step_by(WORDS_PER_LINE as usize) {
            mem.clwb(tid, self.slots.add(off));
        }
        mem.drain(tid);
    }

    /// Structural invariants, checked by direct reads while quiescent:
    /// the allocator is monotone, every occupied slot holds a sid that
    /// maps to it and is below the allocator, and cached-response tags are
    /// legal. Returns a description of the first violation.
    pub fn check_integrity(&self, mem: &MemorySpace) -> Result<(), String> {
        if mem.read(self.root.add(ROOT_MAGIC)) != MAGIC {
            return Err("session table root magic is gone".to_string());
        }
        let next = mem.read(self.root.add(ROOT_NEXT_SID));
        if next == 0 {
            return Err("session allocator rewound to 0".to_string());
        }
        for i in 0..self.capacity {
            let slot = self.slots.add(i * SLOT_WORDS);
            let sid = mem.read(slot.add(SLOT_SID));
            if sid == 0 {
                continue;
            }
            if sid >= next {
                return Err(format!("slot {i} holds unallocated session {sid}"));
            }
            if (sid - 1) & (self.capacity - 1) != i {
                return Err(format!("session {sid} stored in the wrong slot {i}"));
            }
            for r in 0..REPLY_WINDOW {
                let tag = mem.read(slot.add(SLOT_REPLIES + r * 2));
                if tag > REPLY_MISSING {
                    return Err(format!("session {sid}: illegal reply tag {tag}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirectOps;
    use crafty_pmem::PmemConfig;

    fn mem() -> MemorySpace {
        MemorySpace::new(PmemConfig::small_for_tests())
    }

    #[test]
    fn fresh_replay_gap_stale_classification() {
        let mem = mem();
        let t = SessionTable::create(&mem, 8);
        let mut ops = DirectOps::new(&mem);
        let (sid, last) = t.begin(&mut ops, 0).unwrap().expect("allocate");
        assert_eq!((sid, last), (1, 0));

        assert_eq!(t.check(&mut ops, sid, 1).unwrap(), SeqCheck::Fresh);
        // Out-of-order future seq is a gap, not silently applied.
        assert_eq!(
            t.check(&mut ops, sid, 3).unwrap(),
            SeqCheck::Gap { last_seq: 0 }
        );
        t.record(&mut ops, sid, 1, CachedReply::found(70)).unwrap();
        assert_eq!(
            t.check(&mut ops, sid, 1).unwrap(),
            SeqCheck::Replay(CachedReply::found(70))
        );
        assert_eq!(t.check(&mut ops, sid, 2).unwrap(), SeqCheck::Fresh);
        t.record(&mut ops, sid, 2, CachedReply::missing()).unwrap();
        assert_eq!(
            t.check(&mut ops, sid, 2).unwrap(),
            SeqCheck::Replay(CachedReply::missing())
        );

        // Push the window past seq 1: the reply ring holds the last
        // REPLY_WINDOW responses, older seqs go stale.
        for seq in 3..=(2 + REPLY_WINDOW) {
            assert_eq!(t.check(&mut ops, sid, seq).unwrap(), SeqCheck::Fresh);
            t.record(&mut ops, sid, seq, CachedReply::found(seq))
                .unwrap();
        }
        assert_eq!(t.check(&mut ops, sid, 1).unwrap(), SeqCheck::Stale);
        assert_eq!(t.check(&mut ops, sid, 2).unwrap(), SeqCheck::Stale);
        assert_eq!(
            t.check(&mut ops, sid, 3).unwrap(),
            SeqCheck::Replay(CachedReply::found(3))
        );

        // Session 0 and seq 0 are never legal.
        assert_eq!(t.check(&mut ops, 0, 1).unwrap(), SeqCheck::Unknown);
        assert_eq!(t.check(&mut ops, sid, 0).unwrap(), SeqCheck::Unknown);
        // A sid nobody allocated is unknown.
        assert_eq!(t.check(&mut ops, 99, 1).unwrap(), SeqCheck::Unknown);
        t.check_integrity(&mem).expect("integrity");
    }

    #[test]
    fn resume_returns_the_replay_point_and_reclaim_refuses() {
        let mem = mem();
        let t = SessionTable::create(&mem, 8);
        let mut ops = DirectOps::new(&mem);
        let (sid, _) = t.begin(&mut ops, 0).unwrap().expect("allocate");
        t.record(&mut ops, sid, 1, CachedReply::found(7)).unwrap();
        t.record(&mut ops, sid, 2, CachedReply::missing()).unwrap();

        // Resume sees the applied high-water mark.
        assert_eq!(t.begin(&mut ops, sid).unwrap(), Some((sid, 2)));
        // Resuming something never allocated is refused.
        assert_eq!(t.begin(&mut ops, 42).unwrap(), None);

        // Allocate capacity more sessions: sid 1's slot is reclaimed by
        // sid 9 (same slot, 8-way table), and its resume is refused.
        for _ in 0..t.capacity() {
            t.begin(&mut ops, 0).unwrap().expect("allocate");
        }
        assert_eq!(t.begin(&mut ops, sid).unwrap(), None);
        // The reclaiming session starts clean: no inherited replies.
        let reclaimer = 1 + t.capacity();
        assert_eq!(t.begin(&mut ops, reclaimer).unwrap(), Some((reclaimer, 0)));
        assert_eq!(t.check(&mut ops, reclaimer, 1).unwrap(), SeqCheck::Fresh);
        assert_eq!(t.sessions_allocated(&mem), 1 + t.capacity());
        t.check_integrity(&mem).expect("integrity");
    }

    #[test]
    fn open_replays_the_layout_and_survives_a_crash() {
        let cfg = PmemConfig::small_for_tests();
        let mem = MemorySpace::new(cfg);
        let t = SessionTable::create(&mem, 16);
        let mut ops = DirectOps::new(&mem);
        let (sid, _) = t.begin(&mut ops, 0).unwrap().expect("allocate");
        t.record(&mut ops, sid, 1, CachedReply::found(123)).unwrap();
        t.persist_all(&mem, 0);

        let image = mem.crash();
        let rebooted = MemorySpace::boot(&image, cfg);
        let t2 = SessionTable::open(&rebooted, 16);
        t2.check_integrity(&rebooted).expect("integrity");
        let mut ops2 = DirectOps::new(&rebooted);
        assert_eq!(t2.begin(&mut ops2, sid).unwrap(), Some((sid, 1)));
        assert_eq!(
            t2.check(&mut ops2, sid, 1).unwrap(),
            SeqCheck::Replay(CachedReply::found(123))
        );
    }

    #[test]
    #[should_panic(expected = "different capacity")]
    fn open_rejects_a_mismatched_capacity() {
        let cfg = PmemConfig::small_for_tests();
        let mem = MemorySpace::new(cfg);
        SessionTable::create(&mem, 16);
        let image = mem.crash();
        let rebooted = MemorySpace::boot(&image, cfg);
        SessionTable::open(&rebooted, 32);
    }
}
