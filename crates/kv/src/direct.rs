//! Non-transactional [`TxnOps`] adapter over a raw [`MemorySpace`].
//!
//! The store's data-structure code is written once against
//! [`crafty_common::TxnOps`]. Two situations legitimately want to run that
//! code *outside* any engine: setup-time prefill (before measurement or
//! service start, single-threaded, followed by an explicit
//! [`crate::ShardedKv::persist_all`]) and post-recovery inspection (reading
//! a rebooted image to verify or export its contents). [`DirectOps`] adapts
//! plain volatile reads and writes to the `TxnOps` interface for exactly
//! those uses.
//!
//! It is **not** a transaction: there is no atomicity, no isolation, and no
//! durability — callers own the threading discipline and must persist
//! explicitly. Transactional allocation is unsupported (the KV store
//! allocates from its own persistent arena, not the engine heap).

use crafty_common::{PAddr, TxAbort, TxnOps};
use crafty_pmem::MemorySpace;

/// Executes [`TxnOps`] accesses directly against a [`MemorySpace`] with no
/// transaction semantics. See the module docs for when this is legitimate.
#[derive(Debug)]
pub struct DirectOps<'a> {
    mem: &'a MemorySpace,
}

impl<'a> DirectOps<'a> {
    /// Creates an adapter over `mem`.
    pub fn new(mem: &'a MemorySpace) -> Self {
        DirectOps { mem }
    }
}

impl TxnOps for DirectOps<'_> {
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
        Ok(self.mem.read(addr))
    }

    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
        self.mem.write(addr, value);
        Ok(())
    }

    fn alloc(&mut self, _words: u64) -> Result<PAddr, TxAbort> {
        panic!("DirectOps does not support transactional allocation");
    }

    fn dealloc(&mut self, _addr: PAddr, _words: u64) -> Result<(), TxAbort> {
        panic!("DirectOps does not support transactional allocation");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::PmemConfig;

    #[test]
    fn reads_and_writes_pass_through() {
        let mem = MemorySpace::new(PmemConfig::small_for_tests());
        let a = mem.reserve_persistent(1);
        let mut ops = DirectOps::new(&mem);
        assert_eq!(ops.read(a).unwrap(), 0);
        ops.write(a, 99).unwrap();
        assert_eq!(ops.read(a).unwrap(), 99);
        assert_eq!(mem.read(a), 99);
    }

    #[test]
    #[should_panic(expected = "transactional allocation")]
    fn alloc_is_unsupported() {
        let mem = MemorySpace::new(PmemConfig::small_for_tests());
        let _ = DirectOps::new(&mem).alloc(4);
    }
}
