//! Group commit: K independent store transactions, one drain barrier.
//!
//! Every mutation of the store is one persistent transaction, and on a
//! durable engine each transaction normally pays a drain (the emulated
//! SFENCE round trip) to ack its durability. For logically independent
//! operations — a batch of puts from a message queue, a replication
//! window, a bulk load — that per-transaction drain is the dominant cost
//! and is not required for correctness of the *batch*: each operation
//! still commits (and logs, and marks COMMITTED) individually, but
//! durability only needs to be acknowledged once, for all of them, when
//! the batch's shared drain covers their write-backs.
//!
//! [`GroupCommit`] packages that pattern over the engine-generic
//! [`TmThread`] interface:
//!
//! * [`GroupCommit::execute`] runs one transaction with durability
//!   deferred ([`TmThread::execute_deferred`]);
//! * [`GroupCommit::commit`] (or drop) issues the shared barrier
//!   ([`TmThread::flush_deferred`]) — after it returns, every transaction
//!   in the group is durable.
//!
//! Crash semantics are the natural group-commit contract: a crash before
//! the barrier may lose a suffix of the group's transactions, but each one
//! atomically — recovery rolls a lost transaction back whole, never
//! partially, and never touches transactions whose durability was already
//! covered by an earlier drain. On engines without a deferral fast path
//! the default trait implementations make every `execute` immediately
//! durable and the barrier a no-op, so the same code runs unchanged (just
//! without the saving).
//!
//! [`crate::ShardedKv::apply_batch`] is the store-level convenience built
//! on this layer.

use crafty_common::{TmThread, TxnReport};

/// A durability group over a [`TmThread`]: transactions executed through
/// it share one drain barrier. See the module docs for the contract.
///
/// The barrier is issued by [`GroupCommit::commit`]; dropping the group
/// without calling it issues the barrier too (panic-safe), so a group can
/// never silently leave transactions with unacked durability.
pub struct GroupCommit<'a> {
    thread: &'a mut dyn TmThread,
    executed: u64,
    flushed: bool,
}

impl<'a> GroupCommit<'a> {
    /// Opens a durability group over `thread`.
    pub fn new(thread: &'a mut dyn TmThread) -> Self {
        GroupCommit {
            thread,
            executed: 0,
            flushed: false,
        }
    }

    /// Executes one transaction of the group with durability deferred to
    /// the shared barrier. The transaction is committed — visible to every
    /// other thread — when this returns; it is durable after
    /// [`GroupCommit::commit`].
    pub fn execute(
        &mut self,
        body: &mut dyn FnMut(&mut dyn crafty_common::TxnOps) -> Result<(), crafty_common::TxAbort>,
    ) -> TxnReport {
        self.executed += 1;
        self.thread.execute_deferred(body)
    }

    /// Number of transactions executed in this group so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Issues the shared drain barrier and closes the group: every
    /// transaction executed through it is durable afterwards. Returns the
    /// number of transactions the barrier covered.
    pub fn commit(mut self) -> u64 {
        self.flush();
        self.executed
    }

    fn flush(&mut self) {
        if !self.flushed {
            self.thread.flush_deferred();
            self.flushed = true;
        }
    }
}

impl Drop for GroupCommit<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for GroupCommit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommit")
            .field("executed", &self.executed)
            .field("flushed", &self.flushed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_common::PersistentTm;
    use crafty_core::{Crafty, CraftyConfig};
    use crafty_pmem::{MemorySpace, PmemConfig};
    use std::sync::Arc;

    #[test]
    fn group_commits_are_visible_and_durable_after_the_barrier() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
        let cells = mem.reserve_persistent(64);
        let mut thread = crafty.register_thread(0);
        let mut group = GroupCommit::new(&mut *thread);
        for i in 0..8u64 {
            let cell = cells.add(i * 8);
            group.execute(&mut |ops| {
                let v = ops.read(cell)?;
                ops.write(cell, v + i + 1)?;
                Ok(())
            });
        }
        assert_eq!(group.executed(), 8);
        assert_eq!(group.commit(), 8);
        // All committed (visible) and, after the barrier, written back.
        for i in 0..8u64 {
            assert_eq!(mem.read(cells.add(i * 8)), i + 1);
            assert_eq!(mem.read_persisted(cells.add(i * 8)), i + 1);
        }
    }

    #[test]
    fn dropping_a_group_issues_the_barrier() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
        let cell = mem.reserve_persistent(1);
        let mut thread = crafty.register_thread(0);
        {
            let mut group = GroupCommit::new(&mut *thread);
            group.execute(&mut |ops| ops.write(cell, 42));
        } // dropped without commit()
        assert_eq!(mem.read_persisted(cell), 42);
    }

    /// Satellite robustness check: a body that panics mid-batch unwinds
    /// through `execute_deferred` without corrupting the thread, earlier
    /// transactions of the batch are not yet durable at the moment of the
    /// panic (their drains were deferred), and the group's drop-issued
    /// barrier still fires during unwinding, making them durable.
    #[test]
    fn panicking_body_mid_batch_keeps_the_group_contract() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
        let cells = mem.reserve_persistent(64);
        let mut thread = crafty.register_thread(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut group = GroupCommit::new(&mut *thread);
            for i in 0..4u64 {
                let cell = cells.add(i * 8);
                group.execute(&mut |ops| ops.write(cell, i + 1));
            }
            // Before the barrier: the first transactions committed but
            // their durability is deferred — none may be marked durable.
            for i in 0..4u64 {
                assert_eq!(mem.read(cells.add(i * 8)), i + 1);
                assert_eq!(
                    mem.read_persisted(cells.add(i * 8)),
                    0,
                    "txn {i} must not be durable before the barrier"
                );
            }
            group.execute(&mut |_ops| panic!("boom mid-batch"));
            unreachable!("the panic must propagate");
        }));
        assert!(caught.is_err(), "the body's panic must unwind out");
        // Unwinding dropped the group, which must have issued the barrier:
        // the four completed transactions are durable now.
        for i in 0..4u64 {
            assert_eq!(mem.read_persisted(cells.add(i * 8)), i + 1);
        }
        // The thread survived the unwind and keeps working.
        let cell = cells.add(32);
        thread.execute(&mut |ops| ops.write(cell, 99));
        crafty.quiesce();
        assert_eq!(mem.read_persisted(cell), 99);
    }

    #[test]
    fn a_group_drains_less_than_per_transaction_execution() {
        let run = |grouped: bool| -> u64 {
            let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
            let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
            let cells = mem.reserve_persistent(16 * 8);
            let mut thread = crafty.register_thread(0);
            if grouped {
                let mut group = GroupCommit::new(&mut *thread);
                for i in 0..16u64 {
                    let cell = cells.add(i * 8);
                    group.execute(&mut |ops| ops.write(cell, i + 1));
                }
                group.commit();
            } else {
                for i in 0..16u64 {
                    let cell = cells.add(i * 8);
                    thread.execute(&mut |ops| ops.write(cell, i + 1));
                }
            }
            mem.stats().drains
        };
        let grouped = run(true);
        let per_txn = run(false);
        assert!(
            grouped < per_txn,
            "group commit must share drains: {grouped} grouped vs {per_txn} per-txn"
        );
    }
}
