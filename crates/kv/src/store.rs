//! The sharded, durably resizable key-value store.
//!
//! See the crate docs for the design. Persistent layout, in reservation
//! order (deterministic, so [`ShardedKv::open`] can replay it on a rebooted
//! space):
//!
//! ```text
//! root block   8 words   [MAGIC, shard_count, arena_next, arena_end,
//!                         initial_capacity, 0, 0, 0]
//! headers      8 words per shard (line-aligned):
//!              [table, capacity, len, tombstones,
//!               resize_table, resize_capacity, migrate_pos, resize_tombs]
//! arena        cfg.arena_words words; tables are bump-allocated here
//! ```
//!
//! A table of capacity `C` occupies `2·C` contiguous arena words: slot `i`
//! is the pair `[tag, value]` at offset `2·i`. `tag = 0` is an empty slot,
//! `tag = 1` a tombstone, and any other tag stores key `tag − 2`.

use crafty_common::{mix64, PAddr, TmThread, TxAbort, TxnOps, WORDS_PER_LINE};
use crafty_pmem::MemorySpace;

use crate::direct::DirectOps;
use crate::group::GroupCommit;

/// Root-block magic ("CraftyKV" in spirit): identifies an initialized
/// store when [`ShardedKv::open`] attaches to a rebooted space.
const MAGIC: u64 = 0x43AF_7E6B_5653_0001;

/// Largest storable key: tags offset keys by 2 to make room for the empty
/// and tombstone encodings.
pub const KEY_MAX: u64 = u64::MAX - 2;

/// Slot tag for a never-used slot (probe terminator).
const EMPTY: u64 = 0;
/// Slot tag for a removed entry (probes continue past it).
const TOMBSTONE: u64 = 1;

/// Words per table slot (`[tag, value]`).
const SLOT_WORDS: u64 = 2;

/// Old-table slots migrated per mutating transaction while a resize is in
/// flight. Small enough to keep any single transaction's write footprint
/// well inside HTM capacity and the undo log; large enough that a resize
/// completes within `capacity / 8` mutations, long before the new table
/// (at twice the capacity) can fill up.
const MIGRATE_BATCH: u64 = 8;

// Root block word offsets.
const ROOT_MAGIC: u64 = 0;
const ROOT_SHARDS: u64 = 1;
const ROOT_ARENA_NEXT: u64 = 2;
const ROOT_ARENA_END: u64 = 3;
const ROOT_INITIAL_CAPACITY: u64 = 4;
const ROOT_WORDS: u64 = 8;

// Shard-header word offsets.
const HDR_TABLE: u64 = 0;
const HDR_CAPACITY: u64 = 1;
const HDR_LEN: u64 = 2;
const HDR_TOMBS: u64 = 3;
const HDR_RESIZE_TABLE: u64 = 4;
const HDR_RESIZE_CAPACITY: u64 = 5;
const HDR_MIGRATE_POS: u64 = 6;
const HDR_RESIZE_TOMBS: u64 = 7;
const HDR_WORDS: u64 = 8;

// The store's key-mixing hash is [`crafty_common::mix64`]: high bits pick
// the shard, low bits pick the home slot, so the two choices are
// decorrelated.

/// Construction parameters for a [`ShardedKv`].
#[derive(Clone, Copy, Debug)]
pub struct KvConfig {
    /// Number of shards; rounded up to a power of two.
    pub shards: usize,
    /// Initial table capacity per shard, in slots; rounded up to a power of
    /// two, minimum 8.
    pub initial_capacity: u64,
    /// Size of the table arena in words. Must hold the initial tables plus
    /// every table the growth schedule will allocate (old tables are
    /// abandoned after a resize; see the crate docs). A store that expects
    /// to grow to `N` live keys needs roughly `8·N` arena words — the final
    /// doubling accounts for half the total, its predecessors for the rest.
    pub arena_words: u64,
}

impl KvConfig {
    /// A small store for unit tests: few shards, tiny tables (so resizes
    /// happen after a handful of inserts), a test-sized arena.
    pub fn small_for_tests() -> Self {
        KvConfig {
            shards: 4,
            initial_capacity: 8,
            arena_words: 1 << 14,
        }
    }

    /// A benchmark-sized store for `expected_keys` live keys across
    /// `shards` shards (per-shard sizing follows the actual shard count).
    pub fn benchmark(expected_keys: u64, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = (expected_keys / shards as u64).max(8).next_power_of_two();
        KvConfig {
            shards,
            // Start at half the per-shard need: prefill grows each shard
            // through at least one full incremental resize, and the
            // measured mixes run near the configured load factor.
            initial_capacity: (per_shard / 2).max(8),
            arena_words: (shards as u64 * per_shard * SLOT_WORDS * 8).max(1 << 12),
        }
    }

    /// Sets the shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the initial per-shard capacity in slots (builder style).
    pub fn with_initial_capacity(mut self, slots: u64) -> Self {
        self.initial_capacity = slots;
        self
    }

    /// Sets the arena size in words (builder style).
    pub fn with_arena_words(mut self, words: u64) -> Self {
        self.arena_words = words;
        self
    }

    fn normalized(&self) -> (usize, u64) {
        let shards = self.shards.max(1).next_power_of_two();
        let capacity = self.initial_capacity.max(8).next_power_of_two();
        (shards, capacity)
    }
}

/// Point-in-time counters describing a store's shape (read directly from
/// memory, non-transactionally; exact when quiescent).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KvStats {
    /// Live key count across all shards.
    pub len: u64,
    /// Tombstones across all live tables.
    pub tombstones: u64,
    /// Total slot capacity across all live tables.
    pub capacity: u64,
    /// Number of shards with a resize in flight.
    pub resizes_in_flight: u64,
    /// Arena words consumed so far.
    pub arena_used: u64,
}

/// A durable, sharded key-value store over `u64` keys and values.
///
/// All mutating methods take a [`TxnOps`] and are designed to run as one
/// persistent transaction each; bodies are idempotent (pure functions of
/// the persistent state they read through `ops`), so engines may re-execute
/// them freely. The handle itself is plain addresses — clone it, share it
/// across threads, rebuild it with [`ShardedKv::open`] after a reboot.
///
/// # Example: create → put → crash → open → get
///
/// The store's whole life cycle, including surviving a power failure.
/// Reservation order is deterministic, so the second life replays the same
/// constructors (engine first, store second) and reattaches in place:
///
/// ```
/// use std::sync::Arc;
/// use crafty_common::PersistentTm;
/// use crafty_core::{Crafty, CraftyConfig};
/// use crafty_kv::{KvConfig, ShardedKv};
/// use crafty_pmem::{MemorySpace, PmemConfig};
///
/// // First life: create the store and commit a put through the engine.
/// let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
/// let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
/// let kv = ShardedKv::create(&mem, &KvConfig::small_for_tests());
/// let mut thread = crafty.register_thread(0);
/// thread.execute(&mut |ops| kv.put(ops, 7, 700).map(|_| ()));
/// crafty.quiesce(); // pin the tail: quiesced work survives any crash
///
/// // Power failure.
/// let image = mem.crash();
///
/// // Second life: boot the surviving image, replay the reservation
/// // sequence, reattach, read.
/// let rebooted = Arc::new(MemorySpace::boot(&image, *mem.config()));
/// let _crafty2 = Crafty::new(Arc::clone(&rebooted), CraftyConfig::small_for_tests());
/// let kv2 = ShardedKv::open(&rebooted, &KvConfig::small_for_tests());
/// assert_eq!(kv2.get_direct(&rebooted, 7), Some(700));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ShardedKv {
    root: PAddr,
    headers: PAddr,
    arena: PAddr,
    shards: usize,
}

impl ShardedKv {
    /// Reserves and initializes a fresh store on `mem`, persisting the
    /// initial state (root block, shard headers, zeroed initial tables).
    ///
    /// # Panics
    ///
    /// Panics if the arena cannot hold the initial tables or the persistent
    /// region cannot hold the store.
    pub fn create(mem: &MemorySpace, cfg: &KvConfig) -> Self {
        let (shards, capacity) = cfg.normalized();
        let kv = Self::layout(mem, cfg);
        let initial_tables = shards as u64 * capacity * SLOT_WORDS;
        assert!(
            cfg.arena_words >= initial_tables,
            "arena ({} words) cannot hold the initial tables ({initial_tables} words)",
            cfg.arena_words,
        );
        mem.write(kv.root.add(ROOT_MAGIC), MAGIC);
        mem.write(kv.root.add(ROOT_SHARDS), shards as u64);
        mem.write(
            kv.root.add(ROOT_ARENA_NEXT),
            kv.arena.word() + initial_tables,
        );
        mem.write(
            kv.root.add(ROOT_ARENA_END),
            kv.arena.word() + cfg.arena_words,
        );
        mem.write(kv.root.add(ROOT_INITIAL_CAPACITY), capacity);
        for s in 0..shards as u64 {
            let hdr = kv.header(s);
            let table = kv.arena.word() + s * capacity * SLOT_WORDS;
            mem.write(hdr.add(HDR_TABLE), table);
            mem.write(hdr.add(HDR_CAPACITY), capacity);
            for off in HDR_LEN..HDR_WORDS {
                mem.write(hdr.add(off), 0);
            }
            // Table slots are zero (= EMPTY) in a fresh space already; the
            // explicit stores make `create` correct even on a space whose
            // arena region was previously used.
            for w in 0..capacity * SLOT_WORDS {
                mem.write(PAddr::new(table + w), 0);
            }
        }
        kv.persist_all(mem, 0);
        kv
    }

    /// Attaches to an existing store on a (typically rebooted) space by
    /// replaying the same deterministic reservations as [`ShardedKv::create`]
    /// and validating the root block. Data is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if the root block does not contain a store created with an
    /// equivalent configuration (magic, shard count, or arena geometry
    /// mismatch).
    pub fn open(mem: &MemorySpace, cfg: &KvConfig) -> Self {
        let (shards, _) = cfg.normalized();
        let kv = Self::layout(mem, cfg);
        assert_eq!(
            mem.read(kv.root.add(ROOT_MAGIC)),
            MAGIC,
            "no store found at the replayed root address"
        );
        assert_eq!(
            mem.read(kv.root.add(ROOT_SHARDS)),
            shards as u64,
            "store was created with a different shard count"
        );
        // Arena geometry must replay exactly: an arena_words mismatch would
        // put the recorded arena extent out of sync with the reservation
        // just made, and later reservations (engines, other structures)
        // would overlap the region resizes still bump-allocate from.
        let end = mem.read(kv.root.add(ROOT_ARENA_END));
        assert_eq!(
            end,
            kv.arena.word() + cfg.arena_words,
            "store was created with a different arena size"
        );
        let next = mem.read(kv.root.add(ROOT_ARENA_NEXT));
        assert!(
            next >= kv.arena.word() && next <= end,
            "arena cursor {next} outside the replayed arena"
        );
        kv
    }

    /// Performs the reservation sequence shared by `create` and `open`.
    fn layout(mem: &MemorySpace, cfg: &KvConfig) -> Self {
        let (shards, _) = cfg.normalized();
        let root = mem.reserve_persistent(ROOT_WORDS);
        let headers = mem.reserve_persistent(shards as u64 * HDR_WORDS);
        let arena = mem.reserve_persistent(cfg.arena_words);
        ShardedKv {
            root,
            headers,
            arena,
            shards,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The persistent address of the store's root block (diagnostics).
    pub fn root_addr(&self) -> PAddr {
        self.root
    }

    #[inline]
    fn header(&self, shard: u64) -> PAddr {
        self.headers.add(shard * HDR_WORDS)
    }

    /// The shard owning `key`: high hash bits, so it is independent of the
    /// in-table home slot (low bits).
    #[inline]
    fn shard_of(&self, key: u64) -> u64 {
        (mix64(key) >> 32) & (self.shards as u64 - 1)
    }

    #[inline]
    fn slot_addr(table: u64, capacity: u64, index: u64) -> PAddr {
        PAddr::new(table + (index & (capacity - 1)) * SLOT_WORDS)
    }

    #[inline]
    fn encode(key: u64) -> u64 {
        assert!(key <= KEY_MAX, "key {key} exceeds KEY_MAX");
        key + 2
    }

    /// Probes `table` for `key`. Returns `Ok(slot_addr)` of the live entry,
    /// or `Err(first_reusable)` — the first tombstone on the probe path if
    /// any, else the terminating empty slot — when the key is absent.
    fn probe(
        &self,
        ops: &mut dyn TxnOps,
        table: u64,
        capacity: u64,
        key: u64,
    ) -> Result<Result<PAddr, PAddr>, TxAbort> {
        let tag = Self::encode(key);
        let home = mix64(key) & (capacity - 1);
        let mut reusable = None;
        for step in 0..capacity {
            let slot = Self::slot_addr(table, capacity, home + step);
            let t = ops.read(slot)?;
            if t == tag {
                return Ok(Ok(slot));
            }
            if t == EMPTY {
                return Ok(Err(reusable.unwrap_or(slot)));
            }
            if t == TOMBSTONE && reusable.is_none() {
                reusable = Some(slot);
            }
        }
        // A full table with no empty slot: the resize policy guarantees
        // headroom, so this is data corruption, not a normal state.
        panic!("kv shard table has no empty slot (corrupted or mis-sized store)");
    }

    /// Reads the value stored under `key`, or `None`.
    ///
    /// Read-only: performs no writes, so read-mostly workloads keep the
    /// engines' read-only fast paths. During a resize the new table is
    /// probed first, then the old (a key is live in at most one of them).
    ///
    /// # Errors
    ///
    /// Propagates [`TxAbort`] from the underlying transaction.
    pub fn get(&self, ops: &mut dyn TxnOps, key: u64) -> Result<Option<u64>, TxAbort> {
        let hdr = self.header(self.shard_of(key));
        let resize_table = ops.read(hdr.add(HDR_RESIZE_TABLE))?;
        if resize_table != 0 {
            let resize_cap = ops.read(hdr.add(HDR_RESIZE_CAPACITY))?;
            if let Ok(slot) = self.probe(ops, resize_table, resize_cap, key)? {
                return Ok(Some(ops.read(slot.add(1))?));
            }
        }
        let table = ops.read(hdr.add(HDR_TABLE))?;
        let capacity = ops.read(hdr.add(HDR_CAPACITY))?;
        match self.probe(ops, table, capacity, key)? {
            Ok(slot) => Ok(Some(ops.read(slot.add(1))?)),
            Err(_) => Ok(None),
        }
    }

    /// Inserts or updates `key → value`; returns the previous value if the
    /// key was present. One persistent transaction's worth of work: may
    /// additionally migrate a batch of slots (resize in flight) or start a
    /// resize (load factor crossed).
    ///
    /// # Errors
    ///
    /// Propagates [`TxAbort`] from the underlying transaction.
    pub fn put(&self, ops: &mut dyn TxnOps, key: u64, value: u64) -> Result<Option<u64>, TxAbort> {
        let shard = self.shard_of(key);
        let hdr = self.header(shard);
        if ops.read(hdr.add(HDR_RESIZE_TABLE))? != 0 {
            self.migrate_step(ops, shard)?;
        }
        let resize_table = ops.read(hdr.add(HDR_RESIZE_TABLE))?;
        if resize_table != 0 {
            let resize_cap = ops.read(hdr.add(HDR_RESIZE_CAPACITY))?;
            // Update in the new table if the key already moved there; keep
            // the probe's free slot otherwise — nothing in the rest of this
            // transaction writes to the new table, so it stays the right
            // insertion point and no re-probe is needed.
            let free = match self.probe(ops, resize_table, resize_cap, key)? {
                Ok(slot) => {
                    let old = ops.read(slot.add(1))?;
                    ops.write(slot.add(1), value)?;
                    return Ok(Some(old));
                }
                Err(free) => free,
            };
            let table = ops.read(hdr.add(HDR_TABLE))?;
            let capacity = ops.read(hdr.add(HDR_CAPACITY))?;
            let old = match self.probe(ops, table, capacity, key)? {
                Ok(slot) => {
                    // Still in the old table: migrate it now, carrying the
                    // new value, so exactly one live copy exists.
                    let old = ops.read(slot.add(1))?;
                    ops.write(slot, TOMBSTONE)?;
                    Some(old)
                }
                Err(_) => None,
            };
            if ops.read(free)? == TOMBSTONE {
                let tombs = ops.read(hdr.add(HDR_RESIZE_TOMBS))?;
                ops.write(hdr.add(HDR_RESIZE_TOMBS), tombs - 1)?;
            }
            ops.write(free, Self::encode(key))?;
            ops.write(free.add(1), value)?;
            if old.is_none() {
                let len = ops.read(hdr.add(HDR_LEN))?;
                ops.write(hdr.add(HDR_LEN), len + 1)?;
            }
            return Ok(old);
        }
        let table = ops.read(hdr.add(HDR_TABLE))?;
        let capacity = ops.read(hdr.add(HDR_CAPACITY))?;
        match self.probe(ops, table, capacity, key)? {
            Ok(slot) => {
                let old = ops.read(slot.add(1))?;
                ops.write(slot.add(1), value)?;
                Ok(Some(old))
            }
            Err(slot) => {
                if ops.read(slot)? == TOMBSTONE {
                    let tombs = ops.read(hdr.add(HDR_TOMBS))?;
                    ops.write(hdr.add(HDR_TOMBS), tombs - 1)?;
                }
                ops.write(slot, Self::encode(key))?;
                ops.write(slot.add(1), value)?;
                let len = ops.read(hdr.add(HDR_LEN))? + 1;
                ops.write(hdr.add(HDR_LEN), len)?;
                self.maybe_start_resize(ops, hdr)?;
                Ok(None)
            }
        }
    }

    /// Applies a batch of `key → value` updates under **group commit**:
    /// each update runs as its own persistent transaction (one
    /// [`ShardedKv::put`], visible and COMMITTED individually, exactly as
    /// if issued through [`crafty_common::TmThread::execute`]), but all of
    /// them share a single drain barrier — durability for the whole batch
    /// is acknowledged once, when the shared drain covers their
    /// write-backs. Returns the number of transactions the barrier
    /// covered (`updates.len()`).
    ///
    /// Crash semantics: a crash before the barrier may lose a suffix of
    /// the batch, but each lost update atomically — recovery never leaves
    /// a half-applied put. Use the plain per-transaction path when every
    /// individual update must be durable before the next begins.
    ///
    /// On engines without a durability-deferral fast path the batch
    /// degrades gracefully to per-transaction execution.
    pub fn apply_batch(&self, thread: &mut dyn TmThread, updates: &[(u64, u64)]) -> u64 {
        let mut group = GroupCommit::new(thread);
        for &(key, value) in updates {
            group.execute(&mut |ops| {
                self.put(ops, key, value)?;
                Ok(())
            });
        }
        group.commit()
    }

    /// Removes `key`; returns its value if it was present.
    ///
    /// # Errors
    ///
    /// Propagates [`TxAbort`] from the underlying transaction.
    pub fn remove(&self, ops: &mut dyn TxnOps, key: u64) -> Result<Option<u64>, TxAbort> {
        let shard = self.shard_of(key);
        let hdr = self.header(shard);
        if ops.read(hdr.add(HDR_RESIZE_TABLE))? != 0 {
            self.migrate_step(ops, shard)?;
        }
        let resize_table = ops.read(hdr.add(HDR_RESIZE_TABLE))?;
        if resize_table != 0 {
            let resize_cap = ops.read(hdr.add(HDR_RESIZE_CAPACITY))?;
            if let Ok(slot) = self.probe(ops, resize_table, resize_cap, key)? {
                let old = ops.read(slot.add(1))?;
                ops.write(slot, TOMBSTONE)?;
                let tombs = ops.read(hdr.add(HDR_RESIZE_TOMBS))?;
                ops.write(hdr.add(HDR_RESIZE_TOMBS), tombs + 1)?;
                let len = ops.read(hdr.add(HDR_LEN))?;
                ops.write(hdr.add(HDR_LEN), len - 1)?;
                return Ok(Some(old));
            }
        }
        let table = ops.read(hdr.add(HDR_TABLE))?;
        let capacity = ops.read(hdr.add(HDR_CAPACITY))?;
        match self.probe(ops, table, capacity, key)? {
            Ok(slot) => {
                let old = ops.read(slot.add(1))?;
                ops.write(slot, TOMBSTONE)?;
                if resize_table == 0 {
                    let tombs = ops.read(hdr.add(HDR_TOMBS))?;
                    ops.write(hdr.add(HDR_TOMBS), tombs + 1)?;
                }
                let len = ops.read(hdr.add(HDR_LEN))?;
                ops.write(hdr.add(HDR_LEN), len - 1)?;
                Ok(Some(old))
            }
            Err(_) => Ok(None),
        }
    }

    /// Collects up to `limit` live entries of `key`'s shard, walking from
    /// the key's home slot in hash order (the natural "short range scan" of
    /// an open-addressed table). Read-only. Returns the number of entries
    /// seen and a fold of their keys and values, so scan-heavy workloads
    /// consume the data without allocating.
    ///
    /// # Errors
    ///
    /// Propagates [`TxAbort`] from the underlying transaction.
    pub fn scan(&self, ops: &mut dyn TxnOps, key: u64, limit: u64) -> Result<(u64, u64), TxAbort> {
        let hdr = self.header(self.shard_of(key));
        let mut found = 0u64;
        let mut checksum = 0u64;
        let mut tables = [(0u64, 0u64); 2];
        let mut n_tables = 0;
        let resize_table = ops.read(hdr.add(HDR_RESIZE_TABLE))?;
        if resize_table != 0 {
            tables[n_tables] = (resize_table, ops.read(hdr.add(HDR_RESIZE_CAPACITY))?);
            n_tables += 1;
        }
        tables[n_tables] = (
            ops.read(hdr.add(HDR_TABLE))?,
            ops.read(hdr.add(HDR_CAPACITY))?,
        );
        n_tables += 1;
        for &(table, capacity) in &tables[..n_tables] {
            let home = mix64(key) & (capacity - 1);
            for step in 0..capacity {
                if found >= limit {
                    return Ok((found, checksum));
                }
                let slot = Self::slot_addr(table, capacity, home + step);
                let tag = ops.read(slot)?;
                if tag != EMPTY && tag != TOMBSTONE {
                    found += 1;
                    checksum =
                        checksum.wrapping_add(mix64(tag - 2).wrapping_add(ops.read(slot.add(1))?));
                }
            }
        }
        Ok((found, checksum))
    }

    /// Number of live keys (transactional read across all shard headers).
    ///
    /// # Errors
    ///
    /// Propagates [`TxAbort`] from the underlying transaction.
    pub fn len(&self, ops: &mut dyn TxnOps) -> Result<u64, TxAbort> {
        let mut total = 0;
        for s in 0..self.shards as u64 {
            total += ops.read(self.header(s).add(HDR_LEN))?;
        }
        Ok(total)
    }

    /// True if the store holds no keys.
    ///
    /// # Errors
    ///
    /// Propagates [`TxAbort`] from the underlying transaction.
    pub fn is_empty(&self, ops: &mut dyn TxnOps) -> Result<bool, TxAbort> {
        Ok(self.len(ops)? == 0)
    }

    /// Inserts a key known to be absent into the shard's in-flight resize
    /// table, reusing the first tombstone on its probe path (and adjusting
    /// the resize-tombstone counter when it does).
    fn insert_fresh(
        &self,
        ops: &mut dyn TxnOps,
        hdr: PAddr,
        table: u64,
        capacity: u64,
        key: u64,
        value: u64,
    ) -> Result<(), TxAbort> {
        match self.probe(ops, table, capacity, key)? {
            Ok(_) => unreachable!("insert_fresh called with a live key"),
            Err(slot) => {
                if ops.read(slot)? == TOMBSTONE {
                    let tombs = ops.read(hdr.add(HDR_RESIZE_TOMBS))?;
                    ops.write(hdr.add(HDR_RESIZE_TOMBS), tombs - 1)?;
                }
                ops.write(slot, Self::encode(key))?;
                ops.write(slot.add(1), value)?;
                Ok(())
            }
        }
    }

    /// Starts an incremental resize when occupancy (live + tombstones)
    /// crosses ¾ of capacity: allocates the new table from the arena and
    /// installs the resize header fields. All in the calling transaction —
    /// a crash either keeps the whole start or none of it.
    fn maybe_start_resize(&self, ops: &mut dyn TxnOps, hdr: PAddr) -> Result<(), TxAbort> {
        let len = ops.read(hdr.add(HDR_LEN))?;
        let tombs = ops.read(hdr.add(HDR_TOMBS))?;
        let capacity = ops.read(hdr.add(HDR_CAPACITY))?;
        if 4 * (len + tombs) < 3 * capacity {
            return Ok(());
        }
        // Size for the live set: doubles under insert pressure, stays put
        // (purging tombstones) under churn.
        let new_capacity = ((len + 1) * 2).next_power_of_two().max(capacity);
        let words = new_capacity * SLOT_WORDS;
        let next = ops.read(self.root.add(ROOT_ARENA_NEXT))?;
        let end = ops.read(self.root.add(ROOT_ARENA_END))?;
        assert!(
            next + words <= end,
            "kv arena exhausted: need {words} words, {} remain \
             (size KvConfig::arena_words for the growth schedule)",
            end - next
        );
        ops.write(self.root.add(ROOT_ARENA_NEXT), next + words)?;
        // The claimed region is all-EMPTY: fresh arena words are zero, and
        // aborted transactions' writes never reach it (HTM write
        // containment / undo rollback).
        ops.write(hdr.add(HDR_RESIZE_TABLE), next)?;
        ops.write(hdr.add(HDR_RESIZE_CAPACITY), new_capacity)?;
        ops.write(hdr.add(HDR_MIGRATE_POS), 0)?;
        ops.write(hdr.add(HDR_RESIZE_TOMBS), 0)?;
        Ok(())
    }

    /// Migrates up to [`MIGRATE_BATCH`] old-table slots into the new table,
    /// tombstoning each as it moves; the step that reaches the end swings
    /// the header to the new table in the same transaction.
    fn migrate_step(&self, ops: &mut dyn TxnOps, shard: u64) -> Result<(), TxAbort> {
        let hdr = self.header(shard);
        let resize_table = ops.read(hdr.add(HDR_RESIZE_TABLE))?;
        debug_assert_ne!(resize_table, 0, "migrate_step without an active resize");
        let resize_cap = ops.read(hdr.add(HDR_RESIZE_CAPACITY))?;
        let table = ops.read(hdr.add(HDR_TABLE))?;
        let capacity = ops.read(hdr.add(HDR_CAPACITY))?;
        let pos = ops.read(hdr.add(HDR_MIGRATE_POS))?;
        let end = (pos + MIGRATE_BATCH).min(capacity);
        for i in pos..end {
            let slot = Self::slot_addr(table, capacity, i);
            let tag = ops.read(slot)?;
            if tag != EMPTY && tag != TOMBSTONE {
                let value = ops.read(slot.add(1))?;
                self.insert_fresh(ops, hdr, resize_table, resize_cap, tag - 2, value)?;
                ops.write(slot, TOMBSTONE)?;
            }
        }
        ops.write(hdr.add(HDR_MIGRATE_POS), end)?;
        if end == capacity {
            // Final batch: swing to the new table. The old table's words
            // are abandoned in the arena.
            let resize_tombs = ops.read(hdr.add(HDR_RESIZE_TOMBS))?;
            ops.write(hdr.add(HDR_TABLE), resize_table)?;
            ops.write(hdr.add(HDR_CAPACITY), resize_cap)?;
            ops.write(hdr.add(HDR_TOMBS), resize_tombs)?;
            ops.write(hdr.add(HDR_RESIZE_TABLE), 0)?;
            ops.write(hdr.add(HDR_RESIZE_CAPACITY), 0)?;
            ops.write(hdr.add(HDR_MIGRATE_POS), 0)?;
            ops.write(hdr.add(HDR_RESIZE_TOMBS), 0)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Non-transactional helpers: setup, recovery verification, stats.
    // ------------------------------------------------------------------

    /// Flushes and drains every line the store occupies (root, headers,
    /// used arena) through thread `tid`'s flush queue. Used after
    /// [`ShardedKv::create`] and after a [`DirectOps`] prefill, where no
    /// engine is persisting on the caller's behalf.
    pub fn persist_all(&self, mem: &MemorySpace, tid: usize) {
        for off in (0..ROOT_WORDS).step_by(WORDS_PER_LINE as usize) {
            mem.clwb(tid, self.root.add(off));
        }
        for off in (0..self.shards as u64 * HDR_WORDS).step_by(WORDS_PER_LINE as usize) {
            mem.clwb(tid, self.headers.add(off));
        }
        let used = mem
            .read(self.root.add(ROOT_ARENA_NEXT))
            .saturating_sub(self.arena.word());
        for off in (0..used).step_by(WORDS_PER_LINE as usize) {
            mem.clwb(tid, self.arena.add(off));
        }
        mem.drain(tid);
        // The store-wide persist is a fence-like barrier in a trace: a
        // whole-table write-back, not part of any transaction's phases.
        crafty_common::trace::record(tid, crafty_common::TraceEventKind::PersistFence, 0);
    }

    /// Collects every live `(key, value)` pair by direct (non-transactional)
    /// reads — recovery verification and export. Call only while no
    /// transactions are running.
    pub fn collect_pairs(&self, mem: &MemorySpace) -> Vec<(u64, u64)> {
        let mut ops = DirectOps::new(mem);
        let mut pairs = Vec::new();
        for s in 0..self.shards as u64 {
            let hdr = self.header(s);
            let mut tables = Vec::new();
            let resize_table = mem.read(hdr.add(HDR_RESIZE_TABLE));
            if resize_table != 0 {
                tables.push((resize_table, mem.read(hdr.add(HDR_RESIZE_CAPACITY))));
            }
            tables.push((
                mem.read(hdr.add(HDR_TABLE)),
                mem.read(hdr.add(HDR_CAPACITY)),
            ));
            for (table, capacity) in tables {
                for i in 0..capacity {
                    let slot = Self::slot_addr(table, capacity, i);
                    let tag = ops.read(slot).expect("direct reads cannot abort");
                    if tag != EMPTY && tag != TOMBSTONE {
                        pairs.push((tag - 2, mem.read(slot.add(1))));
                    }
                }
            }
        }
        pairs
    }

    /// Reads the value under `key` directly (non-transactionally) — the
    /// post-recovery counterpart of [`ShardedKv::get`].
    pub fn get_direct(&self, mem: &MemorySpace, key: u64) -> Option<u64> {
        let mut ops = DirectOps::new(mem);
        self.get(&mut ops, key).expect("direct reads cannot abort")
    }

    /// True if any shard has a resize in flight.
    pub fn resize_in_flight(&self, mem: &MemorySpace) -> bool {
        (0..self.shards as u64).any(|s| mem.read(self.header(s).add(HDR_RESIZE_TABLE)) != 0)
    }

    /// Point-in-time counters (see [`KvStats`]).
    pub fn stats(&self, mem: &MemorySpace) -> KvStats {
        let mut stats = KvStats {
            arena_used: mem
                .read(self.root.add(ROOT_ARENA_NEXT))
                .saturating_sub(self.arena.word()),
            ..KvStats::default()
        };
        for s in 0..self.shards as u64 {
            let hdr = self.header(s);
            stats.len += mem.read(hdr.add(HDR_LEN));
            stats.tombstones += mem.read(hdr.add(HDR_TOMBS));
            stats.capacity += mem.read(hdr.add(HDR_CAPACITY));
            if mem.read(hdr.add(HDR_RESIZE_TABLE)) != 0 {
                stats.resizes_in_flight += 1;
            }
        }
        stats
    }

    /// Exhaustively checks the store's structural invariants by direct
    /// reads: header counters match slot contents, every key lives in its
    /// own shard, no key is live twice, resize cursors are in range, and
    /// every table lies inside the arena's allocated span (the arena
    /// cursor covers every live record). Returns a description of the
    /// first violation. Call only while no transactions are running
    /// (workload `verify()` and recovery tests).
    pub fn check_integrity(&self, mem: &MemorySpace) -> Result<(), String> {
        use std::collections::HashSet;
        if mem.read(self.root.add(ROOT_MAGIC)) != MAGIC {
            return Err("root magic is gone".to_string());
        }
        let arena_next = mem.read(self.root.add(ROOT_ARENA_NEXT));
        let arena_end = mem.read(self.root.add(ROOT_ARENA_END));
        if arena_next < self.arena.word() || arena_next > arena_end {
            return Err(format!(
                "arena cursor {arena_next} outside [{}, {arena_end}]",
                self.arena.word()
            ));
        }
        for s in 0..self.shards as u64 {
            let hdr = self.header(s);
            let capacity = mem.read(hdr.add(HDR_CAPACITY));
            if !capacity.is_power_of_two() || capacity < 8 {
                return Err(format!(
                    "shard {s}: capacity {capacity} is not a power of two ≥ 8"
                ));
            }
            let resize_table = mem.read(hdr.add(HDR_RESIZE_TABLE));
            let mut tables = vec![(
                mem.read(hdr.add(HDR_TABLE)),
                capacity,
                mem.read(hdr.add(HDR_TOMBS)),
            )];
            if resize_table != 0 {
                let resize_cap = mem.read(hdr.add(HDR_RESIZE_CAPACITY));
                if !resize_cap.is_power_of_two() || resize_cap < capacity {
                    return Err(format!("shard {s}: bad resize capacity {resize_cap}"));
                }
                if mem.read(hdr.add(HDR_MIGRATE_POS)) > capacity {
                    return Err(format!("shard {s}: migrate cursor past the old table"));
                }
                tables.push((
                    resize_table,
                    resize_cap,
                    mem.read(hdr.add(HDR_RESIZE_TOMBS)),
                ));
            }
            let mut live = 0u64;
            let mut seen: HashSet<u64> = HashSet::new();
            for &(table, cap, expected_tombs) in &tables {
                // Every table — including an in-flight resize target — must
                // lie wholly inside the arena span the cursor has handed
                // out, or live records sit in unallocated memory.
                if table < self.arena.word() || table + cap * SLOT_WORDS > arena_next {
                    return Err(format!(
                        "shard {s}: table [{table}, {}) outside allocated arena [{}, {arena_next})",
                        table + cap * SLOT_WORDS,
                        self.arena.word()
                    ));
                }
                let mut tombs = 0u64;
                for i in 0..cap {
                    let slot = Self::slot_addr(table, cap, i);
                    let tag = mem.read(slot);
                    if tag == TOMBSTONE {
                        tombs += 1;
                        continue;
                    }
                    if tag == EMPTY {
                        continue;
                    }
                    let key = tag - 2;
                    if self.shard_of(key) != s {
                        return Err(format!("key {key} stored in shard {s}, hashes elsewhere"));
                    }
                    if !seen.insert(key) {
                        return Err(format!("key {key} is live twice in shard {s}"));
                    }
                    live += 1;
                }
                // The old table's tombstone counter goes stale during a
                // resize (migration tombstones are not counted); only check
                // it when the shard is quiescent.
                if resize_table == 0 && tombs != expected_tombs {
                    return Err(format!(
                        "shard {s}: {tombs} tombstones on disk, header says {expected_tombs}"
                    ));
                }
            }
            let expected_len = mem.read(hdr.add(HDR_LEN));
            if live != expected_len {
                return Err(format!(
                    "shard {s}: {live} live keys on disk, header says {expected_len}"
                ));
            }
        }
        Ok(())
    }
}
