//! `crafty-kv`: a durable, sharded key-value store on persistent
//! transactions.
//!
//! This crate is the workspace's application layer: a key-value store whose
//! entire state — shard directory, hash tables, and the allocation cursor
//! tables grow from — lives in the persistent heap, and whose every
//! mutation runs as one persistent transaction through the engine-generic
//! [`crafty_common::TxnOps`] interface. Run it on Crafty and a crash at any
//! instant, *including in the middle of a table resize*, recovers to a
//! consistent map; run it on the Non-durable baseline and the same code
//! measures the cost of durability.
//!
//! # Design
//!
//! **Sharding.** The store is an array of independent shards; a key's shard
//! is chosen by the high bits of its mixed hash. Transactions on different
//! shards touch disjoint cache lines (each shard header is line-aligned and
//! tables never share lines), so unrelated operations neither conflict in
//! HTM nor contend on undo-log traffic — the property that lets throughput
//! scale with threads.
//!
//! **Open-addressed persistent tables.** Each shard is one open-addressed
//! hash table with linear probing: a power-of-two array of two-word slots
//! `[tag, value]`, where the tag is the key offset by 2 (`0` = empty, `1` =
//! tombstone). Lookups probe from the key's home slot to the first empty
//! slot; removals write a tombstone; insertions reuse the first tombstone
//! on their probe path. Everything is plain 64-bit words accessed through
//! [`crafty_common::TxnOps`], exactly the access granularity the engines
//! log and persist.
//!
//! **Incremental, crash-consistent resize.** When a shard's occupancy
//! (live keys + tombstones) crosses ¾ of capacity, one transaction
//! allocates a fresh table from the store's persistent arena and records it
//! in the shard header (`resize_table`, `resize_capacity`, `migrate_pos`).
//! No bulk copy happens: every subsequent *mutation* of that shard first
//! migrates a small batch of slots from the old table to the new one
//! (tombstoning each migrated slot so a key is live in at most one table),
//! then performs its own operation against the new table. Reads stay
//! read-only: they probe the new table, then the old. When the migration
//! cursor reaches the end, the same transaction that migrates the final
//! batch atomically swings the header to the new table. Because each step —
//! start, every batch, and the final swing — is its own persistent
//! transaction, a crash anywhere leaves the header and both tables
//! mutually consistent, and recovery resumes the migration where it
//! stopped.
//!
//! **Persistent arena.** Tables come from a bump arena whose cursor is a
//! persistent word in the store's root block, advanced in the same
//! transaction that installs the new table. Old tables are abandoned in
//! place after a resize completes (the arena is sized for the growth
//! schedule at construction); this keeps allocation crash-consistent
//! without needing a persistent free list, and keeps the store independent
//! of any engine's volatile heap allocator — after a crash, [`ShardedKv::open`]
//! on the rebooted space continues exactly where the arena cursor points.
//!
//! **Recovery.** [`ShardedKv::create`] lays the store out with deterministic
//! reservations and persists the root; [`ShardedKv::open`] replays the same
//! reservations on a rebooted space, checks the root magic, and attaches
//! without touching data. [`DirectOps`] adapts raw memory access to the
//! `TxnOps` interface for setup-time prefill and post-recovery inspection.
//!
//! **Group commit.** [`GroupCommit`] lets K logically independent store
//! transactions share one drain barrier: each transaction commits, logs,
//! and marks COMMITTED individually, but durability is acknowledged once,
//! when the shared drain covers their write-backs.
//! [`ShardedKv::apply_batch`] is the store-level convenience (a batch of
//! puts under one barrier); the YCSB `A+gc` benchmark mix measures the
//! saving. A crash before the barrier may lose transactions — each one
//! atomically, never partially (see the [`group`] module docs for the
//! contract, and `tests/kv_crash_recovery.rs` for the pinning tests).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use crafty_common::PersistentTm;
//! use crafty_pmem::{MemorySpace, PmemConfig};
//! use crafty_kv::{KvConfig, ShardedKv};
//! # use crafty_core::{Crafty, CraftyConfig};
//!
//! let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
//! let engine = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
//! let kv = ShardedKv::create(&mem, &KvConfig::small_for_tests());
//!
//! let mut thread = engine.register_thread(0);
//! let mut previous = None;
//! thread.execute(&mut |ops| {
//!     kv.put(ops, 7, 700)?;
//!     previous = kv.get(ops, 7)?;
//!     Ok(())
//! });
//! assert_eq!(previous, Some(700));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod direct;
pub mod group;
pub mod session;
pub mod store;

pub use direct::DirectOps;
pub use group::GroupCommit;
pub use session::{CachedReply, SeqCheck, SessionTable, REPLY_WINDOW};
pub use store::{KvConfig, KvStats, ShardedKv, KEY_MAX};
