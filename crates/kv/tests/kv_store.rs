//! Functional tests for the sharded KV store: map semantics against a
//! `HashMap` reference model under randomized op sequences (including
//! forced incremental resizes), engine-genericity, concurrency on Crafty,
//! and create/open round trips.

use std::collections::HashMap;
use std::sync::Arc;

use crafty_baselines::NonDurable;
use crafty_common::{PersistentTm, SplitMix64};
use crafty_core::{Crafty, CraftyConfig};
use crafty_kv::{DirectOps, KvConfig, ShardedKv, KEY_MAX};
use crafty_pmem::{MemorySpace, PmemConfig};
use proptest::prelude::*;

fn small_space() -> Arc<MemorySpace> {
    Arc::new(MemorySpace::new(PmemConfig::small_for_tests()))
}

#[test]
fn put_get_remove_round_trip_on_nondurable() {
    let mem = small_space();
    let engine = NonDurable::new(Arc::clone(&mem), 1 << 12);
    let kv = ShardedKv::create(&mem, &KvConfig::small_for_tests());
    let mut t = engine.register_thread(0);

    let mut outcome = (None, None, None, None);
    t.execute(&mut |ops| {
        let fresh = kv.put(ops, 1, 10)?;
        let updated = kv.put(ops, 1, 11)?;
        let read = kv.get(ops, 1)?;
        let missing = kv.get(ops, 2)?;
        outcome = (fresh, updated, read, missing);
        Ok(())
    });
    assert_eq!(outcome, (None, Some(10), Some(11), None));

    let mut removed = (None, None);
    t.execute(&mut |ops| {
        removed = (kv.remove(ops, 1)?, kv.remove(ops, 1)?);
        Ok(())
    });
    assert_eq!(removed, (Some(11), None));
    assert!(kv.check_integrity(&mem).is_ok());
}

#[test]
fn apply_batch_group_commits_and_is_durable_after_the_barrier() {
    let mem = small_space();
    let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
    let kv = ShardedKv::create(&mem, &KvConfig::small_for_tests());
    let mut t = crafty.register_thread(0);

    let updates: Vec<(u64, u64)> = (0..24).map(|k| (k, k * 100 + 1)).collect();
    assert_eq!(kv.apply_batch(&mut *t, &updates), 24);
    // Every update is visible and — the barrier has run — durable: a crash
    // right now keeps the whole batch (rolling back at most the thread's
    // latest sequence, which group commit leaves as the last put).
    let mut read = Vec::new();
    t.execute(&mut |ops| {
        read.clear();
        for &(k, _) in &updates {
            read.push(kv.get(ops, k)?);
        }
        Ok(())
    });
    assert_eq!(
        read,
        updates.iter().map(|&(_, v)| Some(v)).collect::<Vec<_>>()
    );
    assert!(kv.check_integrity(&mem).is_ok());

    // Re-batching over existing keys updates in place.
    let overwrite: Vec<(u64, u64)> = (0..24).map(|k| (k, k + 7)).collect();
    kv.apply_batch(&mut *t, &overwrite);
    assert_eq!(kv.get_direct(&mem, 3), Some(10));

    // apply_batch degrades gracefully on engines without a deferral path.
    let mem2 = small_space();
    let nd = NonDurable::new(Arc::clone(&mem2), 1 << 12);
    let kv2 = ShardedKv::create(&mem2, &KvConfig::small_for_tests());
    let mut t2 = nd.register_thread(0);
    assert_eq!(kv2.apply_batch(&mut *t2, &updates), 24);
    assert_eq!(kv2.get_direct(&mem2, 5), Some(501));
}

#[test]
fn grows_through_incremental_resizes() {
    let mem = small_space();
    let engine = NonDurable::new(Arc::clone(&mem), 1 << 12);
    // One shard so every insert lands in the same table and growth is
    // forced repeatedly.
    let cfg = KvConfig::small_for_tests().with_shards(1);
    let kv = ShardedKv::create(&mem, &cfg);
    let mut t = engine.register_thread(0);
    let n = 500u64;
    for key in 0..n {
        t.execute(&mut |ops| kv.put(ops, key, key * 3).map(|_| ()));
    }
    let stats = kv.stats(&mem);
    assert!(stats.capacity > 8, "one shard must have grown: {stats:?}");
    assert_eq!(stats.len, n);
    let mut all = None;
    t.execute(&mut |ops| {
        let mut good = 0;
        for key in 0..n {
            if kv.get(ops, key)? == Some(key * 3) {
                good += 1;
            }
        }
        all = Some(good);
        Ok(())
    });
    assert_eq!(all, Some(n), "every key must survive the resizes");
    assert!(kv.check_integrity(&mem).is_ok());
}

#[test]
fn reads_work_mid_resize() {
    let mem = small_space();
    let engine = NonDurable::new(Arc::clone(&mem), 1 << 12);
    let cfg = KvConfig::small_for_tests().with_shards(1);
    let kv = ShardedKv::create(&mem, &cfg);
    let mut t = engine.register_thread(0);
    // Fill to just past the resize trigger, then stop mutating: the shard
    // stays mid-resize (migration only advances on mutations).
    let mut inserted = 0u64;
    while !kv.resize_in_flight(&mem) {
        let key = inserted;
        t.execute(&mut |ops| kv.put(ops, key, key + 100).map(|_| ()));
        inserted += 1;
    }
    assert!(kv.resize_in_flight(&mem));
    let mut hits = 0;
    t.execute(&mut |ops| {
        hits = 0;
        for key in 0..inserted {
            if kv.get(ops, key)? == Some(key + 100) {
                hits += 1;
            }
        }
        Ok(())
    });
    assert_eq!(
        hits, inserted,
        "every key readable while split across tables"
    );
    assert!(
        kv.check_integrity(&mem).is_ok(),
        "{:?}",
        kv.check_integrity(&mem)
    );

    // Updates and removals of keys on both sides of the migration cursor
    // must behave like a map.
    for key in 0..inserted {
        let mut old = None;
        t.execute(&mut |ops| {
            old = kv.put(ops, key, key + 200)?;
            Ok(())
        });
        assert_eq!(old, Some(key + 100), "key {key}");
    }
    assert!(kv.check_integrity(&mem).is_ok());
}

#[test]
fn scan_sees_live_entries_and_skips_dead() {
    let mem = small_space();
    let engine = NonDurable::new(Arc::clone(&mem), 1 << 12);
    let cfg = KvConfig::small_for_tests().with_shards(1);
    let kv = ShardedKv::create(&mem, &cfg);
    let mut t = engine.register_thread(0);
    for key in 0..6u64 {
        t.execute(&mut |ops| kv.put(ops, key, key).map(|_| ()));
    }
    t.execute(&mut |ops| kv.remove(ops, 3).map(|_| ()));
    let mut result = (0, 0);
    t.execute(&mut |ops| {
        result = kv.scan(ops, 0, 100)?;
        Ok(())
    });
    assert_eq!(result.0, 5, "scan must count exactly the live entries");
    let mut bounded = (0, 0);
    t.execute(&mut |ops| {
        bounded = kv.scan(ops, 0, 2)?;
        Ok(())
    });
    assert_eq!(bounded.0, 2, "scan must honour its limit");
}

#[test]
fn open_attaches_to_existing_store() {
    let cfg = KvConfig::small_for_tests();
    let pmem_cfg = PmemConfig::small_for_tests();
    let mem = Arc::new(MemorySpace::new(pmem_cfg));
    let engine = NonDurable::new(Arc::clone(&mem), 1 << 12);
    let kv = ShardedKv::create(&mem, &cfg);
    let mut t = engine.register_thread(0);
    for key in 0..50u64 {
        t.execute(&mut |ops| kv.put(ops, key, !key).map(|_| ()));
    }
    kv.persist_all(&mem, 0);

    // Reboot from the persistent image and replay the layout.
    let image = mem.crash();
    let rebooted = Arc::new(MemorySpace::boot(&image, pmem_cfg));
    let _engine2 = NonDurable::new(Arc::clone(&rebooted), 1 << 12);
    let kv2 = ShardedKv::open(&rebooted, &cfg);
    for key in 0..50u64 {
        assert_eq!(kv2.get_direct(&rebooted, key), Some(!key));
    }
    assert!(kv2.check_integrity(&rebooted).is_ok());
}

#[test]
#[should_panic(expected = "no store found")]
fn open_rejects_uninitialized_space() {
    let mem = small_space();
    let _ = ShardedKv::open(&mem, &KvConfig::small_for_tests());
}

#[test]
#[should_panic(expected = "different arena size")]
fn open_rejects_mismatched_arena_geometry() {
    let cfg = KvConfig::small_for_tests();
    let pmem_cfg = PmemConfig::small_for_tests();
    let mem = Arc::new(MemorySpace::new(pmem_cfg));
    let kv = ShardedKv::create(&mem, &cfg);
    kv.persist_all(&mem, 0);
    let image = mem.crash();
    let rebooted = MemorySpace::boot(&image, pmem_cfg);
    // Replaying with a smaller arena would desynchronize the recorded
    // arena extent from the reservation layout; open must refuse.
    let _ = ShardedKv::open(&rebooted, &cfg.with_arena_words(cfg.arena_words / 2));
}

#[test]
fn key_max_is_storable_and_beyond_panics() {
    let mem = small_space();
    let kv = ShardedKv::create(&mem, &KvConfig::small_for_tests());
    let mut ops = DirectOps::new(&mem);
    kv.put(&mut ops, KEY_MAX, 5).unwrap();
    assert_eq!(kv.get(&mut ops, KEY_MAX).unwrap(), Some(5));
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut ops = DirectOps::new(&mem);
        let _ = kv.put(&mut ops, KEY_MAX + 1, 5);
    }));
    assert!(caught.is_err(), "keys beyond KEY_MAX must be rejected");
}

#[test]
fn concurrent_crafty_threads_keep_map_semantics() {
    let mem = Arc::new(MemorySpace::new(
        PmemConfig::small_for_tests().with_max_threads(6),
    ));
    let engine = Arc::new(Crafty::new(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests().with_max_threads(4),
    ));
    let kv = ShardedKv::create(&mem, &KvConfig::small_for_tests().with_shards(8));
    let threads = 4usize;
    let per_thread = 300u64;
    crossbeam::scope(|s| {
        for tid in 0..threads {
            let engine = Arc::clone(&engine);
            s.spawn(move |_| {
                let mut t = engine.register_thread(tid);
                // Disjoint key ranges: every thread owns keys
                // tid*10_000 .. tid*10_000+per_thread.
                for i in 0..per_thread {
                    let key = tid as u64 * 10_000 + i;
                    t.execute(&mut |ops| kv.put(ops, key, key ^ 0xFACE).map(|_| ()));
                }
            });
        }
    })
    .expect("kv workers");
    engine.quiesce();
    let stats = kv.stats(&mem);
    assert_eq!(stats.len, threads as u64 * per_thread);
    for tid in 0..threads as u64 {
        for i in 0..per_thread {
            let key = tid * 10_000 + i;
            assert_eq!(kv.get_direct(&mem, key), Some(key ^ 0xFACE), "key {key}");
        }
    }
    assert!(
        kv.check_integrity(&mem).is_ok(),
        "{:?}",
        kv.check_integrity(&mem)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary op sequences agree with a `HashMap` reference model, with
    /// tiny tables so resizes interleave everything.
    #[test]
    fn agrees_with_hashmap_reference(seed: u64, ops_count in 1usize..600) {
        let mem = small_space();
        let engine = NonDurable::new(Arc::clone(&mem), 1 << 12);
        let kv = ShardedKv::create(&mem, &KvConfig::small_for_tests().with_shards(2));
        let mut t = engine.register_thread(0);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut rng = SplitMix64::new(seed);
        for step in 0..ops_count {
            let key = rng.next_below(97); // small domain: collisions + reuse
            let value = rng.next_u64();
            match rng.next_below(10) {
                0..=4 => {
                    let mut got = None;
                    t.execute(&mut |ops| { got = kv.put(ops, key, value)?; Ok(()) });
                    prop_assert_eq!(got, reference.insert(key, value), "step {}", step);
                }
                5..=6 => {
                    let mut got = None;
                    t.execute(&mut |ops| { got = kv.remove(ops, key)?; Ok(()) });
                    prop_assert_eq!(got, reference.remove(&key), "step {}", step);
                }
                _ => {
                    let mut got = None;
                    t.execute(&mut |ops| { got = kv.get(ops, key)?; Ok(()) });
                    prop_assert_eq!(got, reference.get(&key).copied(), "step {}", step);
                }
            }
        }
        let mut len = 0;
        t.execute(&mut |ops| { len = kv.len(ops)?; Ok(()) });
        prop_assert_eq!(len as usize, reference.len());
        prop_assert!(kv.check_integrity(&mem).is_ok(),
            "integrity: {:?}", kv.check_integrity(&mem));
        let mut pairs = kv.collect_pairs(&mem);
        pairs.sort_unstable();
        let mut expected: Vec<(u64, u64)> = reference.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(pairs, expected);
    }
}
