//! Generation-stamped open-addressed hash tables with O(1) clear.
//!
//! [`GenSet`] and [`GenMap`] back every hot-path structure in the workspace
//! that must be emptied once per transaction (or once per drain) without
//! touching its storage: each slot carries a *generation* stamp, and a slot
//! is occupied only while its stamp equals the table's current generation.
//! Clearing is a single counter bump; growth doubles the table (the only
//! allocation, and only until the table reaches the workload's steady-state
//! footprint).
//!
//! The tables started life as the read-set/write-buffer of `crafty-htm`'s
//! reusable transaction descriptors and were hoisted here so the persistence
//! domain (`crafty-pmem`) and the engines can share the design: the flush
//! queues' per-line dedup stamps and the property tests' reference models
//! are built on the same generation-stamp idea.

/// Multiplicative hash spreading keys across the table (Fibonacci hashing).
#[inline]
fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

const INITIAL_CAPACITY: usize = 64;
/// Grow when occupancy passes 3/4.
const LOAD_NUM: usize = 3;
const LOAD_DEN: usize = 4;

/// An open-addressed hash set of `u64` keys with O(1) generation clear.
#[derive(Clone, Debug)]
pub struct GenSet {
    /// Generation stamp per slot; a slot is occupied iff its stamp equals
    /// the set's current generation.
    gens: Vec<u64>,
    keys: Vec<u64>,
    gen: u64,
    len: usize,
}

impl GenSet {
    /// Creates an empty set with the default initial capacity.
    pub fn new() -> Self {
        GenSet::with_capacity(INITIAL_CAPACITY)
    }

    /// Creates an empty set able to hold roughly `capacity` keys before
    /// growing. The table size is the next power of two above
    /// `capacity * 4/3`.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(4) * LOAD_DEN / LOAD_NUM).next_power_of_two();
        GenSet {
            gens: vec![0; slots],
            // Generation 0 is never "current" (gen starts at 1), so fresh
            // slots read as empty without an extra init pass.
            keys: vec![0; slots],
            gen: 1,
            len: 0,
        }
    }

    /// Number of keys currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set holds no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The table's slot count (stable across [`GenSet::clear`]; used by
    /// tests asserting steady-state capacity stability).
    pub fn slot_capacity(&self) -> usize {
        self.gens.len()
    }

    /// Logically empties the set in O(1) by advancing the generation.
    #[inline]
    pub fn clear(&mut self) {
        self.gen += 1;
        self.len = 0;
    }

    /// The slot holding `key`, or the empty slot where it would go.
    /// Termination is guaranteed because the load factor stays below 1.
    #[inline]
    fn find_slot(&self, key: u64) -> (usize, bool) {
        let mask = (self.gens.len() - 1) as u64;
        let mut i = (spread(key) & mask) as usize;
        loop {
            if self.gens[i] != self.gen {
                return (i, false);
            }
            if self.keys[i] == key {
                return (i, true);
            }
            i = (i + 1) & mask as usize;
        }
    }

    /// Inserts `key`; returns `true` if it was not already present.
    /// Probes before the load check, so a duplicate insert never grows the
    /// table.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        let (mut slot, found) = self.find_slot(key);
        if found {
            return false;
        }
        if (self.len + 1) * LOAD_DEN >= self.gens.len() * LOAD_NUM {
            self.grow();
            slot = self.find_slot(key).0;
        }
        self.gens[slot] = self.gen;
        self.keys[slot] = key;
        self.len += 1;
        true
    }

    /// True if `key` is in the set.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.find_slot(key).1
    }

    /// Iterates the keys (in table order, not insertion order).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.gens
            .iter()
            .zip(&self.keys)
            .filter(move |(g, _)| **g == self.gen)
            .map(|(_, k)| *k)
    }

    #[cold]
    fn grow(&mut self) {
        let new_slots = self.gens.len() * 2;
        let mut bigger = GenSet {
            gens: vec![0; new_slots],
            keys: vec![0; new_slots],
            gen: 1,
            len: 0,
        };
        for key in self.iter() {
            // Re-insert without the load check: the doubled table fits.
            let mask = (new_slots - 1) as u64;
            let mut i = (spread(key) & mask) as usize;
            while bigger.gens[i] == bigger.gen {
                i = (i + 1) & mask as usize;
            }
            bigger.gens[i] = bigger.gen;
            bigger.keys[i] = key;
            bigger.len += 1;
        }
        *self = bigger;
    }
}

impl Default for GenSet {
    fn default() -> Self {
        GenSet::new()
    }
}

/// An open-addressed `u64 → u64` hash map with O(1) generation clear.
#[derive(Clone, Debug)]
pub struct GenMap {
    gens: Vec<u64>,
    keys: Vec<u64>,
    vals: Vec<u64>,
    gen: u64,
    len: usize,
}

impl GenMap {
    /// Creates an empty map with the default initial capacity.
    pub fn new() -> Self {
        GenMap::with_capacity(INITIAL_CAPACITY)
    }

    /// Creates an empty map able to hold roughly `capacity` entries before
    /// growing.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(4) * LOAD_DEN / LOAD_NUM).next_power_of_two();
        GenMap {
            gens: vec![0; slots],
            keys: vec![0; slots],
            vals: vec![0; slots],
            gen: 1,
            len: 0,
        }
    }

    /// Number of entries currently in the map.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The table's slot count (stable across [`GenMap::clear`]).
    pub fn slot_capacity(&self) -> usize {
        self.gens.len()
    }

    /// Logically empties the map in O(1) by advancing the generation.
    #[inline]
    pub fn clear(&mut self) {
        self.gen += 1;
        self.len = 0;
    }

    /// The slot holding `key`, or the empty slot where it would go.
    /// Termination is guaranteed because the load factor stays below 1.
    #[inline]
    fn find_slot(&self, key: u64) -> (usize, bool) {
        let mask = (self.gens.len() - 1) as u64;
        let mut i = (spread(key) & mask) as usize;
        loop {
            if self.gens[i] != self.gen {
                return (i, false);
            }
            if self.keys[i] == key {
                return (i, true);
            }
            i = (i + 1) & mask as usize;
        }
    }

    /// Inserts or overwrites; returns the previous value if the key was
    /// present. Probes before the load check, so an overwrite never grows
    /// the table.
    #[inline]
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        let (mut slot, found) = self.find_slot(key);
        if found {
            let old = self.vals[slot];
            self.vals[slot] = value;
            return Some(old);
        }
        if (self.len + 1) * LOAD_DEN >= self.gens.len() * LOAD_NUM {
            self.grow();
            slot = self.find_slot(key).0;
        }
        self.gens[slot] = self.gen;
        self.keys[slot] = key;
        self.vals[slot] = value;
        self.len += 1;
        None
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        let (slot, found) = self.find_slot(key);
        found.then(|| self.vals[slot])
    }

    #[cold]
    fn grow(&mut self) {
        let new_slots = self.gens.len() * 2;
        let mut bigger = GenMap {
            gens: vec![0; new_slots],
            keys: vec![0; new_slots],
            vals: vec![0; new_slots],
            gen: 1,
            len: 0,
        };
        for i in 0..self.gens.len() {
            if self.gens[i] != self.gen {
                continue;
            }
            let mask = (new_slots - 1) as u64;
            let mut j = (spread(self.keys[i]) & mask) as usize;
            while bigger.gens[j] == bigger.gen {
                j = (j + 1) & mask as usize;
            }
            bigger.gens[j] = bigger.gen;
            bigger.keys[j] = self.keys[i];
            bigger.vals[j] = self.vals[i];
            bigger.len += 1;
        }
        *self = bigger;
    }
}

impl Default for GenMap {
    fn default() -> Self {
        GenMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genset_insert_contains_and_clear() {
        let mut s = GenSet::new();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert!(s.insert(0), "zero must be a usable key");
        assert_eq!(s.len(), 2);
        s.clear();
        assert_eq!(s.len(), 0);
        assert!(!s.contains(7));
        assert!(!s.contains(0));
        assert!(s.insert(7), "cleared keys are insertable again");
    }

    #[test]
    fn genset_grows_past_initial_capacity() {
        let mut s = GenSet::with_capacity(4);
        let initial = s.slot_capacity();
        for k in 0..1000 {
            assert!(s.insert(k * 3));
        }
        assert_eq!(s.len(), 1000);
        assert!(s.slot_capacity() > initial);
        for k in 0..1000 {
            assert!(s.contains(k * 3), "key {} lost in growth", k * 3);
        }
        let mut collected: Vec<u64> = s.iter().collect();
        collected.sort_unstable();
        assert_eq!(collected, (0..1000).map(|k| k * 3).collect::<Vec<_>>());
    }

    #[test]
    fn genmap_insert_get_overwrite_clear() {
        let mut m = GenMap::new();
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 20), Some(10));
        assert_eq!(m.get(1), Some(20));
        assert_eq!(m.get(2), None);
        assert_eq!(m.insert(0, 5), None, "zero must be a usable key");
        m.clear();
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(0), None);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn genmap_grows_and_keeps_entries() {
        let mut m = GenMap::with_capacity(4);
        for k in 0..500 {
            assert_eq!(m.insert(k, k + 1), None);
        }
        for k in 0..500 {
            assert_eq!(m.get(k), Some(k + 1));
        }
        assert_eq!(m.len(), 500);
    }

    #[test]
    fn clear_is_constant_time_capacity_preserving() {
        let mut s = GenSet::new();
        for k in 0..200 {
            s.insert(k);
        }
        let cap = s.slot_capacity();
        for _ in 0..10_000 {
            s.clear();
            s.insert(1);
        }
        assert_eq!(s.slot_capacity(), cap, "clear must never shrink or grow");
    }
}
