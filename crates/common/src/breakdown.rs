//! Execution breakdown counters.
//!
//! The paper's appendix (Figures 9–21) reports, for every benchmark and
//! engine, (a) how each *persistent* transaction was completed and (b) the
//! outcome of every *hardware* transaction. These enums and the
//! [`BreakdownRecorder`] reproduce those categories. Engines record into a
//! shared recorder; the figure harness snapshots it after a run.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::trace::{AbortCause, TxnPhase};

/// How a persistent transaction ultimately committed.
///
/// Mirrors the stacked-bar categories of the paper's persistent-transaction
/// breakdowns: `Non-Crafty` (baseline engines), `Read Only`, `Redo`,
/// `Validate`, and `SGL`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CompletionPath {
    /// Committed by a non-Crafty engine's ordinary path (Non-durable,
    /// NV-HTM, DudeTM, software logging).
    NonCrafty,
    /// A read-only transaction: Crafty skips the Redo and Validate phases.
    ReadOnly,
    /// Committed by Crafty's Redo phase.
    Redo,
    /// Committed by Crafty's Validate phase.
    Validate,
    /// Committed under the single-global-lock fallback.
    Sgl,
}

impl CompletionPath {
    /// All paths, in the order the paper's figures stack them.
    pub const ALL: [CompletionPath; 5] = [
        CompletionPath::NonCrafty,
        CompletionPath::ReadOnly,
        CompletionPath::Redo,
        CompletionPath::Validate,
        CompletionPath::Sgl,
    ];

    /// A short, stable label used in tables and CSV output.
    pub const fn label(self) -> &'static str {
        match self {
            CompletionPath::NonCrafty => "non-crafty",
            CompletionPath::ReadOnly => "read-only",
            CompletionPath::Redo => "redo",
            CompletionPath::Validate => "validate",
            CompletionPath::Sgl => "sgl",
        }
    }

    const fn index(self) -> usize {
        match self {
            CompletionPath::NonCrafty => 0,
            CompletionPath::ReadOnly => 1,
            CompletionPath::Redo => 2,
            CompletionPath::Validate => 3,
            CompletionPath::Sgl => 4,
        }
    }
}

impl fmt::Display for CompletionPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The outcome of one simulated hardware transaction attempt.
///
/// Mirrors the paper's hardware-transaction breakdowns: commit, conflict
/// abort, capacity abort, explicit abort, and "zero" abort (page fault,
/// system call, interrupt — anything RTM reports with no cause bits set).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HwTxnOutcome {
    /// The hardware transaction committed.
    Commit,
    /// Aborted because another transaction accessed a conflicting line.
    Conflict,
    /// Aborted because the transaction's footprint exceeded HTM capacity.
    Capacity,
    /// Aborted explicitly by the program (failed Redo/Validate check).
    Explicit,
    /// Aborted for an unclassified reason (emulating interrupts etc.).
    Zero,
}

impl HwTxnOutcome {
    /// All outcomes, in the order the paper's figures stack them.
    pub const ALL: [HwTxnOutcome; 5] = [
        HwTxnOutcome::Commit,
        HwTxnOutcome::Conflict,
        HwTxnOutcome::Capacity,
        HwTxnOutcome::Explicit,
        HwTxnOutcome::Zero,
    ];

    /// A short, stable label used in tables and CSV output.
    pub const fn label(self) -> &'static str {
        match self {
            HwTxnOutcome::Commit => "commit",
            HwTxnOutcome::Conflict => "conflict",
            HwTxnOutcome::Capacity => "capacity",
            HwTxnOutcome::Explicit => "explicit",
            HwTxnOutcome::Zero => "zero",
        }
    }

    const fn index(self) -> usize {
        match self {
            HwTxnOutcome::Commit => 0,
            HwTxnOutcome::Conflict => 1,
            HwTxnOutcome::Capacity => 2,
            HwTxnOutcome::Explicit => 3,
            HwTxnOutcome::Zero => 4,
        }
    }
}

impl fmt::Display for HwTxnOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Lock-free counters shared between an engine and the measurement harness.
///
/// All counters are monotonically increasing; [`BreakdownRecorder::snapshot`]
/// takes a consistent-enough point-in-time copy for reporting (exactness is
/// not required because snapshots are taken while threads are quiescent).
#[derive(Debug, Default)]
pub struct BreakdownRecorder {
    persistent: [AtomicU64; 5],
    hardware: [AtomicU64; 5],
    persistent_writes: AtomicU64,
    persist_drains: AtomicU64,
    flushed_lines: AtomicU64,
    /// Accumulated virtual cycles (ns) per [`TxnPhase`]. Only populated
    /// while [`crate::trace::counters_enabled`] — the phase timers that
    /// feed it are the Counters-level cost.
    phase_cycles: [AtomicU64; 6],
    /// Abort-cause histogram ([`AbortCause`] taxonomy). Populated
    /// unconditionally, like the hardware-outcome counters: the
    /// per-abort `fetch_add` is off the commit fast path.
    abort_causes: [AtomicU64; 5],
}

impl BreakdownRecorder {
    /// Creates a recorder with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the completion of one persistent transaction.
    #[inline]
    pub fn record_completion(&self, path: CompletionPath) {
        self.persistent[path.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records the outcome of one hardware transaction attempt.
    #[inline]
    pub fn record_hw(&self, outcome: HwTxnOutcome) {
        self.hardware[outcome.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` program writes to persistent memory (Table 1 input).
    #[inline]
    pub fn record_persistent_writes(&self, n: u64) {
        self.persistent_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one drain (SFENCE-after-CLWB) operation.
    #[inline]
    pub fn record_drain(&self) {
        self.persist_drains.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` cache-line flushes (CLWB operations).
    #[inline]
    pub fn record_flushed_lines(&self, n: u64) {
        self.flushed_lines.fetch_add(n, Ordering::Relaxed);
    }

    /// Accumulates `cycles` virtual cycles (ns) spent in `phase`.
    #[inline]
    pub fn record_phase_cycles(&self, phase: TxnPhase, cycles: u64) {
        self.phase_cycles[phase.index()].fetch_add(cycles, Ordering::Relaxed);
    }

    /// Records one abort attributed to `cause`.
    #[inline]
    pub fn record_abort_cause(&self, cause: AbortCause) {
        self.abort_causes[cause.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> BreakdownSnapshot {
        BreakdownSnapshot {
            persistent: core::array::from_fn(|i| self.persistent[i].load(Ordering::Relaxed)),
            hardware: core::array::from_fn(|i| self.hardware[i].load(Ordering::Relaxed)),
            persistent_writes: self.persistent_writes.load(Ordering::Relaxed),
            persist_drains: self.persist_drains.load(Ordering::Relaxed),
            flushed_lines: self.flushed_lines.load(Ordering::Relaxed),
            phase_cycles: core::array::from_fn(|i| self.phase_cycles[i].load(Ordering::Relaxed)),
            abort_causes: core::array::from_fn(|i| self.abort_causes[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`BreakdownRecorder`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BreakdownSnapshot {
    persistent: [u64; 5],
    hardware: [u64; 5],
    /// Total number of program writes to persistent memory.
    pub persistent_writes: u64,
    /// Total number of drain (SFENCE) operations.
    pub persist_drains: u64,
    /// Total number of cache-line flush (CLWB) operations.
    pub flushed_lines: u64,
    phase_cycles: [u64; 6],
    abort_causes: [u64; 5],
}

impl BreakdownSnapshot {
    /// Number of persistent transactions completed via `path`.
    pub fn completions(&self, path: CompletionPath) -> u64 {
        self.persistent[path.index()]
    }

    /// Number of hardware transactions that ended with `outcome`.
    pub fn hw(&self, outcome: HwTxnOutcome) -> u64 {
        self.hardware[outcome.index()]
    }

    /// Total persistent transactions completed, across all paths.
    pub fn total_persistent(&self) -> u64 {
        self.persistent.iter().sum()
    }

    /// Total hardware transactions attempted, across all outcomes.
    pub fn total_hardware(&self) -> u64 {
        self.hardware.iter().sum()
    }

    /// Total hardware aborts (everything except commits).
    pub fn total_hw_aborts(&self) -> u64 {
        self.total_hardware() - self.hw(HwTxnOutcome::Commit)
    }

    /// Virtual cycles (ns) accumulated in `phase`. Zero unless the run
    /// was traced at [`crate::trace::TraceLevel::Counters`] or above.
    pub fn phase_cycles(&self, phase: TxnPhase) -> u64 {
        self.phase_cycles[phase.index()]
    }

    /// Total virtual cycles across all phases.
    pub fn total_phase_cycles(&self) -> u64 {
        self.phase_cycles.iter().sum()
    }

    /// Aborts attributed to `cause`.
    pub fn abort_cause(&self, cause: AbortCause) -> u64 {
        self.abort_causes[cause.index()]
    }

    /// Total aborts in the cause histogram.
    pub fn total_abort_causes(&self) -> u64 {
        self.abort_causes.iter().sum()
    }

    /// Average program writes per persistent transaction (Table 1).
    pub fn writes_per_txn(&self) -> f64 {
        let txns = self.total_persistent();
        if txns == 0 {
            0.0
        } else {
            self.persistent_writes as f64 / txns as f64
        }
    }

    /// Returns the difference `self - earlier`, counter by counter.
    pub fn since(&self, earlier: &BreakdownSnapshot) -> BreakdownSnapshot {
        BreakdownSnapshot {
            persistent: core::array::from_fn(|i| self.persistent[i] - earlier.persistent[i]),
            hardware: core::array::from_fn(|i| self.hardware[i] - earlier.hardware[i]),
            persistent_writes: self.persistent_writes - earlier.persistent_writes,
            persist_drains: self.persist_drains - earlier.persist_drains,
            flushed_lines: self.flushed_lines - earlier.flushed_lines,
            phase_cycles: core::array::from_fn(|i| self.phase_cycles[i] - earlier.phase_cycles[i]),
            abort_causes: core::array::from_fn(|i| self.abort_causes[i] - earlier.abort_causes[i]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_counters_accumulate() {
        let r = BreakdownRecorder::new();
        r.record_completion(CompletionPath::Redo);
        r.record_completion(CompletionPath::Redo);
        r.record_completion(CompletionPath::Validate);
        r.record_completion(CompletionPath::Sgl);
        let s = r.snapshot();
        assert_eq!(s.completions(CompletionPath::Redo), 2);
        assert_eq!(s.completions(CompletionPath::Validate), 1);
        assert_eq!(s.completions(CompletionPath::Sgl), 1);
        assert_eq!(s.completions(CompletionPath::ReadOnly), 0);
        assert_eq!(s.total_persistent(), 4);
    }

    #[test]
    fn hw_counters_accumulate() {
        let r = BreakdownRecorder::new();
        r.record_hw(HwTxnOutcome::Commit);
        r.record_hw(HwTxnOutcome::Conflict);
        r.record_hw(HwTxnOutcome::Conflict);
        r.record_hw(HwTxnOutcome::Capacity);
        r.record_hw(HwTxnOutcome::Explicit);
        r.record_hw(HwTxnOutcome::Zero);
        let s = r.snapshot();
        assert_eq!(s.hw(HwTxnOutcome::Commit), 1);
        assert_eq!(s.hw(HwTxnOutcome::Conflict), 2);
        assert_eq!(s.total_hardware(), 6);
        assert_eq!(s.total_hw_aborts(), 5);
    }

    #[test]
    fn writes_per_txn_divides_by_transactions() {
        let r = BreakdownRecorder::new();
        r.record_persistent_writes(10);
        r.record_persistent_writes(10);
        r.record_completion(CompletionPath::Redo);
        r.record_completion(CompletionPath::Validate);
        let s = r.snapshot();
        assert!((s.writes_per_txn() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn writes_per_txn_with_no_transactions_is_zero() {
        let s = BreakdownRecorder::new().snapshot();
        assert_eq!(s.writes_per_txn(), 0.0);
    }

    #[test]
    fn since_subtracts_counters() {
        let r = BreakdownRecorder::new();
        r.record_hw(HwTxnOutcome::Commit);
        r.record_drain();
        r.record_flushed_lines(3);
        let first = r.snapshot();
        r.record_hw(HwTxnOutcome::Commit);
        r.record_hw(HwTxnOutcome::Conflict);
        r.record_drain();
        r.record_flushed_lines(2);
        let delta = r.snapshot().since(&first);
        assert_eq!(delta.hw(HwTxnOutcome::Commit), 1);
        assert_eq!(delta.hw(HwTxnOutcome::Conflict), 1);
        assert_eq!(delta.persist_drains, 1);
        assert_eq!(delta.flushed_lines, 2);
    }

    #[test]
    fn labels_are_unique_and_nonempty() {
        let mut labels: Vec<&str> = CompletionPath::ALL.iter().map(|p| p.label()).collect();
        labels.extend(HwTxnOutcome::ALL.iter().map(|o| o.label()));
        assert!(labels.iter().all(|l| !l.is_empty()));
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn phase_cycles_accumulate_and_subtract() {
        let r = BreakdownRecorder::new();
        r.record_phase_cycles(TxnPhase::Log, 100);
        r.record_phase_cycles(TxnPhase::Log, 50);
        r.record_phase_cycles(TxnPhase::Redo, 25);
        let first = r.snapshot();
        assert_eq!(first.phase_cycles(TxnPhase::Log), 150);
        assert_eq!(first.phase_cycles(TxnPhase::Redo), 25);
        assert_eq!(first.phase_cycles(TxnPhase::Validate), 0);
        assert_eq!(first.total_phase_cycles(), 175);
        r.record_phase_cycles(TxnPhase::Fence, 10);
        let delta = r.snapshot().since(&first);
        assert_eq!(delta.phase_cycles(TxnPhase::Log), 0);
        assert_eq!(delta.phase_cycles(TxnPhase::Fence), 10);
        assert_eq!(delta.total_phase_cycles(), 10);
    }

    #[test]
    fn abort_cause_histogram_accumulates() {
        let r = BreakdownRecorder::new();
        r.record_abort_cause(AbortCause::Conflict);
        r.record_abort_cause(AbortCause::Conflict);
        r.record_abort_cause(AbortCause::PersistentDoomed);
        r.record_abort_cause(AbortCause::SglFallback);
        let s = r.snapshot();
        assert_eq!(s.abort_cause(AbortCause::Conflict), 2);
        assert_eq!(s.abort_cause(AbortCause::PersistentDoomed), 1);
        assert_eq!(s.abort_cause(AbortCause::SglFallback), 1);
        assert_eq!(s.abort_cause(AbortCause::Capacity), 0);
        assert_eq!(s.total_abort_causes(), 4);
    }
}
