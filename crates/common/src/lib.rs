//! Shared foundation types for the Crafty reproduction.
//!
//! This crate holds the vocabulary used by every other crate in the
//! workspace:
//!
//! * [`PAddr`] / [`LineId`] — word-granular addresses into the simulated
//!   memory space and the cache lines that contain them.
//! * [`Clock`] / [`Timestamp`] — the RDTSC-like monotonic timestamp source
//!   the paper uses for `LOGGED`/`COMMITTED` entries and `gLastRedoTS`.
//! * [`api`] — the object-safe engine interface ([`PersistentTm`],
//!   [`TmThread`], [`TxnOps`]) implemented by Crafty and all baselines so
//!   that workloads and the figure harness are engine-generic.
//! * [`breakdown`] — atomic counters that record how each persistent
//!   transaction completed and how each hardware transaction ended,
//!   mirroring the categories of the paper's appendix figures.
//! * [`genset`] — generation-stamped open-addressed tables with O(1)
//!   clear, shared by the HTM transaction descriptors and the persistence
//!   domain's flush-queue dedup.
//! * [`shard`] — lazily-allocated sharded atomic arrays backing the
//!   per-line metadata (versioned locks, dirty bits, dedup stamps).
//! * [`trace`] — the runtime-leveled observability layer: per-thread
//!   lock-free event rings, the abort-cause taxonomy, and the
//!   virtual-cycle phase timers behind the `figures breakdown` and
//!   `figures trace` reports.
//! * [`zipf`] — the YCSB-style zipfian key-popularity distribution used by
//!   the KV-store workloads.
//!
//! # Example
//!
//! ```
//! use crafty_common::{PAddr, Clock};
//!
//! let clock = Clock::new();
//! let a = clock.now();
//! let b = clock.now();
//! assert!(a < b);
//!
//! let addr = PAddr::new(12);
//! assert_eq!(addr.line().first_word(), PAddr::new(8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod api;
pub mod breakdown;
pub mod clock;
pub mod error;
pub mod genset;
pub mod rng;
pub mod shard;
pub mod trace;
pub mod zipf;

pub use addr::{LineId, PAddr, WORDS_PER_LINE};
pub use api::{PersistentTm, TmThread, TxnBody, TxnOps, TxnReport};
pub use breakdown::{BreakdownRecorder, BreakdownSnapshot, CompletionPath, HwTxnOutcome};
pub use clock::{Clock, Timestamp};
pub use error::{SetupError, TxAbort};
pub use genset::{GenMap, GenSet};
pub use rng::{mix64, SplitMix64};
pub use shard::LazyAtomicArray;
pub use trace::{
    AbortCause, EventRing, TraceConfig, TraceEvent, TraceEventKind, TraceLevel, TxnPhase,
};
pub use zipf::{Zipfian, YCSB_THETA};
