//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Control-flow signal that the currently executing transaction body must
/// unwind: the simulated hardware transaction has aborted (or the engine
/// requested a restart) and the body's effects have been discarded.
///
/// Transaction bodies receive this from every [`crate::TxnOps`] operation
/// and must propagate it (usually with `?`); the engine then retries,
/// validates, or falls back according to its own policy. The payload is an
/// opaque reason used for diagnostics only.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TxAbort {
    kind: TxAbortKind,
}

/// The broad reason a transaction body was asked to unwind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxAbortKind {
    /// The underlying simulated hardware transaction aborted.
    Hardware,
    /// The engine detected an inconsistency (e.g. a failed Validate check).
    Inconsistent,
    /// The body itself requested an abort (programmatic abort).
    User,
}

impl TxAbort {
    /// An abort caused by the simulated hardware transaction.
    pub const fn hardware() -> Self {
        TxAbort {
            kind: TxAbortKind::Hardware,
        }
    }

    /// An abort caused by an engine-level consistency check.
    pub const fn inconsistent() -> Self {
        TxAbort {
            kind: TxAbortKind::Inconsistent,
        }
    }

    /// An abort requested by the transaction body itself.
    pub const fn user() -> Self {
        TxAbort {
            kind: TxAbortKind::User,
        }
    }

    /// Returns the broad reason for the abort.
    pub const fn kind(self) -> TxAbortKind {
        self.kind
    }
}

impl fmt::Display for TxAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TxAbortKind::Hardware => write!(f, "hardware transaction aborted"),
            TxAbortKind::Inconsistent => write!(f, "transaction failed a consistency check"),
            TxAbortKind::User => write!(f, "transaction aborted by request"),
        }
    }
}

impl Error for TxAbort {}

/// Error raised while configuring or laying out an engine or workload
/// (e.g. a persistent heap too small for the requested logs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SetupError {
    message: String,
}

impl SetupError {
    /// Creates a setup error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        SetupError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "setup failed: {}", self.message)
    }
}

impl Error for SetupError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_kinds_round_trip() {
        assert_eq!(TxAbort::hardware().kind(), TxAbortKind::Hardware);
        assert_eq!(TxAbort::inconsistent().kind(), TxAbortKind::Inconsistent);
        assert_eq!(TxAbort::user().kind(), TxAbortKind::User);
    }

    #[test]
    fn errors_display_lowercase_without_period() {
        let msgs = [
            TxAbort::hardware().to_string(),
            TxAbort::inconsistent().to_string(),
            TxAbort::user().to_string(),
            SetupError::new("log too small").to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().map(char::is_lowercase).unwrap_or(false));
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TxAbort>();
        assert_send_sync::<SetupError>();
    }
}
