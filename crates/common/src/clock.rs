//! Monotonic logical timestamps.
//!
//! The paper timestamps `LOGGED` and `COMMITTED` undo-log entries with
//! RDTSC values and relies only on Lamport ordering: if two events are
//! ordered by happens-before, their timestamps must be correspondingly
//! ordered (Section 4.1, footnote 1). A process-wide atomic counter gives
//! exactly that property while staying deterministic across runs, so the
//! simulation uses a counter rather than the host TSC.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A logical timestamp drawn from a [`Clock`].
///
/// Timestamp 0 is reserved as "never" / "uninitialized"; [`Clock::now`]
/// always returns values ≥ 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp, ordered before every timestamp a clock produces.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from a raw counter value.
    #[inline]
    pub const fn from_raw(v: u64) -> Self {
        Timestamp(v)
    }

    /// Returns the raw counter value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns this timestamp advanced by `delta` ticks.
    #[inline]
    pub const fn plus(self, delta: u64) -> Self {
        Timestamp(self.0 + delta)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts:{}", self.0)
    }
}

/// A process-wide monotonic logical clock (the simulation's RDTSC).
///
/// `now()` strictly increases across all threads, so any two calls are
/// totally ordered and the order is consistent with happens-before.
#[derive(Debug, Default)]
pub struct Clock {
    counter: AtomicU64,
}

impl Clock {
    /// Creates a clock starting at tick 1.
    pub fn new() -> Self {
        Clock {
            counter: AtomicU64::new(0),
        }
    }

    /// Returns a fresh, strictly increasing timestamp (`getTimestamp()` in
    /// the paper's algorithms).
    #[inline]
    pub fn now(&self) -> Timestamp {
        Timestamp(self.counter.fetch_add(1, Ordering::SeqCst) + 1)
    }

    /// Returns the most recently issued timestamp without advancing the
    /// clock (`currentTS()` in Section 5.2).
    #[inline]
    pub fn current(&self) -> Timestamp {
        Timestamp(self.counter.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn now_is_strictly_increasing() {
        let c = Clock::new();
        let a = c.now();
        let b = c.now();
        let d = c.now();
        assert!(a < b && b < d);
        assert!(a > Timestamp::ZERO);
    }

    #[test]
    fn current_does_not_advance() {
        let c = Clock::new();
        let a = c.now();
        assert_eq!(c.current(), a);
        assert_eq!(c.current(), a);
        assert!(c.now() > a);
    }

    #[test]
    fn timestamps_are_unique_across_threads() {
        let clock = Arc::new(Clock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let clock = Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| clock.now()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Timestamp> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("clock thread panicked"))
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate timestamps issued");
    }

    #[test]
    fn raw_round_trip_and_plus() {
        let t = Timestamp::from_raw(41).plus(1);
        assert_eq!(t.raw(), 42);
        assert_eq!(format!("{t}"), "ts:42");
    }
}
