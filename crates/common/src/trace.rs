//! Lock-free transaction-lifecycle tracing: per-thread event rings, the
//! abort-cause taxonomy, and the runtime trace level.
//!
//! The paper's whole argument is *where the cycles go* — HTM attempts vs.
//! aborts, logging vs. checkpointing, drains vs. fences — so the repro
//! carries an always-available observability layer that can decompose
//! every committed transaction into per-phase costs without perturbing
//! the hot path it measures. Three runtime levels, selected by
//! [`set_level`] / [`configure`]:
//!
//! - [`TraceLevel::Off`] (the default): a single relaxed atomic load and a
//!   predictable branch per instrumentation site — the same disarmed-fast-
//!   path discipline as `crafty-pmem`'s `fault_tick`. The hot-path perf
//!   gate (`figures compare`) pins this as effectively zero overhead.
//! - [`TraceLevel::Counters`]: phase timers run. Each engine phase (Log /
//!   Redo / Validate / SGL / drain / fence) is stamped with a
//!   virtual-cycle timer — monotonic nanoseconds that *include* the
//!   simulated NVM latencies, since the memory-space busy-waits them in
//!   real time — and accumulated in the engine's
//!   [`crate::BreakdownRecorder`].
//! - [`TraceLevel::Events`]: additionally, every lifecycle event (txn
//!   begin/end, HTM attempt/commit/abort, undo append, redo apply, flush
//!   enqueue, drain, ranged CLWB, persist fence) is recorded in a
//!   per-thread [`EventRing`] — a fixed-capacity, allocation-free flight
//!   recorder whose tail survives to a crash report or a
//!   chrome://tracing dump.
//!
//! # Ring discipline
//!
//! The rings reuse the single-writer discipline of the pmem flush queues:
//! each thread id owns one ring, positions are absolute counters masked
//! by a power-of-two capacity, and overflow *overwrites the oldest event*
//! (flight-recorder semantics) while [`EventRing::dropped_events`] counts
//! exactly how many were lost. Pushes are two relaxed stores plus one
//! `fetch_add`; the `fetch_add` makes a racy foreign push (e.g. a foreign
//! drain on behalf of another thread) merely overwrite a slot instead of
//! corrupting the ring. Steady-state pushes never allocate — the
//! counting-allocator tests enforce this across the whole traced commit
//! path.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Explicit abort code: a phase's hardware transaction observed the single
/// global lock held and aborted (speculative lock elision).
pub const ABORT_SGL_HELD: u32 = 1;
/// Explicit abort code: the Redo phase's `gLastRedoTS` check failed.
pub const ABORT_REDO_TS_CHECK: u32 = 2;
/// Explicit abort code: a Validate-phase check failed.
pub const ABORT_VALIDATE_MISMATCH: u32 = 3;

/// How much the tracing layer records, from nothing to full event rings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLevel {
    /// No timers, no events: one atomic load per instrumentation site.
    Off = 0,
    /// Phase timers feed the [`crate::BreakdownRecorder`]'s per-phase
    /// cycle and abort-cause accumulators.
    Counters = 1,
    /// Counters plus per-thread lifecycle event rings.
    Events = 2,
}

impl TraceLevel {
    /// Parses the CLI spelling (`off` / `counters` / `events`).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "counters" => Some(TraceLevel::Counters),
            "events" => Some(TraceLevel::Events),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Counters => "counters",
            TraceLevel::Events => "events",
        }
    }
}

/// Tracing configuration: the level and the per-thread ring capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// What to record.
    pub level: TraceLevel,
    /// Per-thread event-ring capacity (rounded up to a power of two on
    /// first installation; later [`configure`] calls cannot change it).
    pub ring_capacity: usize,
}

impl TraceConfig {
    /// The zero-cost default: tracing disarmed.
    pub fn off() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Off,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Phase timers only.
    pub fn counters() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Counters,
            ..TraceConfig::off()
        }
    }

    /// Full event recording with the default ring capacity.
    pub fn events() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Events,
            ..TraceConfig::off()
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// Why a hardware transaction (or a whole phase attempt) gave up — the
/// structured taxonomy the breakdown histogram and the future adaptive
/// phased engine branch on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// Read/write-set conflict with a concurrent transaction.
    Conflict,
    /// Speculative state overflowed the simulated HTM capacity.
    Capacity,
    /// Software-requested abort (SGL subscription, spurious/zero codes).
    Explicit,
    /// The persistence protocol doomed the attempt: the Redo phase's
    /// `gLastRedoTS` check or a Validate-phase comparison failed, so the
    /// hardware transaction was correct but its persistent context was
    /// already stale.
    PersistentDoomed,
    /// The phase-restart budget ran out and the transaction entered the
    /// single-global-lock fallback (counted once per fallback entry).
    SglFallback,
}

impl AbortCause {
    /// Every cause, in display order.
    pub const ALL: [AbortCause; 5] = [
        AbortCause::Conflict,
        AbortCause::Capacity,
        AbortCause::Explicit,
        AbortCause::PersistentDoomed,
        AbortCause::SglFallback,
    ];

    /// Stable human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            AbortCause::Conflict => "conflict",
            AbortCause::Capacity => "capacity",
            AbortCause::Explicit => "explicit",
            AbortCause::PersistentDoomed => "persistent-doomed",
            AbortCause::SglFallback => "sgl-fallback",
        }
    }

    /// Dense array index (also the event-ring argument encoding used by
    /// [`TraceEventKind::Abort`] events).
    pub const fn index(self) -> usize {
        match self {
            AbortCause::Conflict => 0,
            AbortCause::Capacity => 1,
            AbortCause::Explicit => 2,
            AbortCause::PersistentDoomed => 3,
            AbortCause::SglFallback => 4,
        }
    }

    /// The cause encoded at `index`, if in range.
    pub fn from_index(index: u64) -> Option<AbortCause> {
        AbortCause::ALL.get(index as usize).copied()
    }
}

impl std::fmt::Display for AbortCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The engine phases whose virtual-cycle costs the breakdown decomposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxnPhase {
    /// Crafty's Log phase (nondestructive undo logging in HTM) — or, for
    /// baseline engines, the transactional execution itself.
    Log,
    /// Crafty's Redo phase (checkpointing the logged writes).
    Redo,
    /// Crafty's Validate phase (re-execution against the persisted log).
    Validate,
    /// The single-global-lock fallback execution.
    Sgl,
    /// Flush-queue drains (SFENCE + write-backs).
    Drain,
    /// Explicit persist fences (`persist_fence` / `persist_now`).
    Fence,
}

impl TxnPhase {
    /// Every phase, in display order.
    pub const ALL: [TxnPhase; 6] = [
        TxnPhase::Log,
        TxnPhase::Redo,
        TxnPhase::Validate,
        TxnPhase::Sgl,
        TxnPhase::Drain,
        TxnPhase::Fence,
    ];

    /// Stable human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            TxnPhase::Log => "log",
            TxnPhase::Redo => "redo",
            TxnPhase::Validate => "validate",
            TxnPhase::Sgl => "sgl",
            TxnPhase::Drain => "drain",
            TxnPhase::Fence => "fence",
        }
    }

    /// Dense array index for the recorder's accumulators.
    pub(crate) const fn index(self) -> usize {
        match self {
            TxnPhase::Log => 0,
            TxnPhase::Redo => 1,
            TxnPhase::Validate => 2,
            TxnPhase::Sgl => 3,
            TxnPhase::Drain => 4,
            TxnPhase::Fence => 5,
        }
    }
}

impl std::fmt::Display for TxnPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One kind of lifecycle event an [`EventRing`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceEventKind {
    /// A persistent transaction started (argument: 0).
    TxnBegin = 0,
    /// A hardware transaction attempt began (argument: 0).
    HtmAttempt = 1,
    /// A hardware transaction committed (argument: its write-set size).
    HtmCommit = 2,
    /// An attempt aborted (argument: the [`AbortCause`] index).
    Abort = 3,
    /// An undo-log sequence was appended (argument: entry count).
    UndoAppend = 4,
    /// Logged writes were checkpointed by the Redo phase (argument:
    /// write count).
    RedoApply = 5,
    /// A line write-back was enqueued on a flush queue (argument: the
    /// line index).
    Enqueue = 6,
    /// A flush-queue drain completed (argument: lines persisted).
    Drain = 7,
    /// A coalesced ranged CLWB was issued (argument: lines in the run).
    RangedClwb = 8,
    /// An explicit persist fence completed (argument: 0).
    PersistFence = 9,
    /// A persistent transaction finished (argument: 0).
    TxnEnd = 10,
}

impl TraceEventKind {
    /// Every event kind, in numeric order.
    pub const ALL: [TraceEventKind; 11] = [
        TraceEventKind::TxnBegin,
        TraceEventKind::HtmAttempt,
        TraceEventKind::HtmCommit,
        TraceEventKind::Abort,
        TraceEventKind::UndoAppend,
        TraceEventKind::RedoApply,
        TraceEventKind::Enqueue,
        TraceEventKind::Drain,
        TraceEventKind::RangedClwb,
        TraceEventKind::PersistFence,
        TraceEventKind::TxnEnd,
    ];

    /// Stable human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            TraceEventKind::TxnBegin => "txn-begin",
            TraceEventKind::HtmAttempt => "htm-attempt",
            TraceEventKind::HtmCommit => "htm-commit",
            TraceEventKind::Abort => "abort",
            TraceEventKind::UndoAppend => "undo-append",
            TraceEventKind::RedoApply => "redo-apply",
            TraceEventKind::Enqueue => "enqueue",
            TraceEventKind::Drain => "drain",
            TraceEventKind::RangedClwb => "ranged-clwb",
            TraceEventKind::PersistFence => "persist-fence",
            TraceEventKind::TxnEnd => "txn-end",
        }
    }

    /// Decodes the on-ring kind byte.
    fn from_u8(v: u8) -> Option<TraceEventKind> {
        TraceEventKind::ALL.get(v as usize).copied()
    }
}

impl std::fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One decoded event from a ring snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceEventKind,
    /// The kind-specific argument (56 significant bits).
    pub arg: u64,
    /// Nanoseconds since the tracer's epoch (virtual cycles).
    pub t_ns: u64,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>12} ns] {} ({})", self.t_ns, self.kind, self.arg)
    }
}

/// Argument bits preserved per event (the kind byte takes the low 8).
const ARG_BITS: u32 = 56;
/// Mask of the preserved argument bits.
const ARG_MASK: u64 = (1 << ARG_BITS) - 1;
/// Default per-thread ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 4096;
/// Thread ids the global tracer keeps rings for; higher tids fall off the
/// recorder (counted nowhere — the harness never exceeds this).
pub const MAX_TRACE_THREADS: usize = 64;

/// A fixed-capacity, allocation-free, overwrite-oldest event ring — the
/// per-thread flight recorder behind [`TraceLevel::Events`].
///
/// One thread owns each ring's write side (the pmem flush-queue
/// discipline); the position counter uses `fetch_add` so that the rare
/// foreign push (a drain performed on another thread's behalf) degrades
/// to an overwritten slot rather than a corrupted ring. Reads
/// ([`EventRing::snapshot`]) are best-effort while a writer is active and
/// exact once the writer is quiescent.
#[derive(Debug)]
pub struct EventRing {
    /// Packed `kind | arg << 8` words, indexed by masked position.
    words: Box<[AtomicU64]>,
    /// Event timestamps (ns since the tracer epoch), same indexing.
    times: Box<[AtomicU64]>,
    /// Absolute count of events ever pushed.
    head: AtomicU64,
}

impl EventRing {
    /// Creates a ring holding `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(2).next_power_of_two();
        EventRing {
            words: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            times: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// The ring's (power-of-two) capacity in events.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Records one event. Allocation-free; overwrites the oldest event
    /// when the ring is full.
    #[inline]
    pub fn push(&self, kind: TraceEventKind, arg: u64, t_ns: u64) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let i = (pos & (self.words.len() as u64 - 1)) as usize;
        self.words[i].store(kind as u64 | ((arg & ARG_MASK) << 8), Ordering::Relaxed);
        self.times[i].store(t_ns, Ordering::Relaxed);
    }

    /// Total events ever pushed.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to overwriting: everything pushed beyond the last
    /// `capacity` events. Reconciles exactly against an unbounded shadow
    /// oracle (`recorded - snapshot.len()`).
    pub fn dropped_events(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// The retained tail, oldest first: the last
    /// `min(recorded, capacity)` events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let head = self.recorded();
        let cap = self.words.len() as u64;
        let start = head.saturating_sub(cap);
        (start..head)
            .filter_map(|pos| {
                let i = (pos & (cap - 1)) as usize;
                let w = self.words[i].load(Ordering::Relaxed);
                let t = self.times[i].load(Ordering::Relaxed);
                TraceEventKind::from_u8((w & 0xFF) as u8).map(|kind| TraceEvent {
                    kind,
                    arg: w >> 8,
                    t_ns: t,
                })
            })
            .collect()
    }

    /// Empties the ring (owner-side only; not safe against a concurrent
    /// writer).
    pub fn clear(&self) {
        self.head.store(0, Ordering::Release);
    }
}

/// The process-wide tracer: the level switch plus the per-thread rings.
struct GlobalTracer {
    epoch: Instant,
    rings: Vec<EventRing>,
}

/// The armed trace level; checked (one relaxed load) at every
/// instrumentation site.
static LEVEL: AtomicU8 = AtomicU8::new(TraceLevel::Off as u8);
/// Lazily installed rings + epoch. A `OnceLock` keeps the crate
/// `forbid(unsafe_code)`-clean; install happens off the hot path.
static TRACER: OnceLock<GlobalTracer> = OnceLock::new();

fn tracer_with_capacity(capacity: usize) -> &'static GlobalTracer {
    TRACER.get_or_init(|| GlobalTracer {
        epoch: Instant::now(),
        rings: (0..MAX_TRACE_THREADS)
            .map(|_| EventRing::new(capacity))
            .collect(),
    })
}

/// Sets the trace level (rings keep whatever capacity their first
/// installation chose).
pub fn set_level(level: TraceLevel) {
    if level >= TraceLevel::Events {
        // Arm the rings *before* publishing the level, so no recording
        // site can observe Events with the rings still uninstalled.
        let _ = tracer_with_capacity(DEFAULT_RING_CAPACITY);
    }
    LEVEL.store(level as u8, Ordering::Release);
}

/// Applies a full configuration: installs the rings (first call wins the
/// capacity), clears them, and sets the level.
pub fn configure(cfg: TraceConfig) {
    let tracer = tracer_with_capacity(cfg.ring_capacity.max(2).next_power_of_two());
    for ring in &tracer.rings {
        ring.clear();
    }
    LEVEL.store(cfg.level as u8, Ordering::Release);
}

/// The currently armed level.
pub fn level() -> TraceLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => TraceLevel::Off,
        1 => TraceLevel::Counters,
        _ => TraceLevel::Events,
    }
}

/// Whether phase timers (and abort-cause attribution) should run.
#[inline]
pub fn counters_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= TraceLevel::Counters as u8
}

/// Whether per-event ring recording should run.
#[inline]
pub fn events_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= TraceLevel::Events as u8
}

/// Nanoseconds since the tracer epoch — the virtual-cycle clock. Includes
/// the simulated NVM latencies because the memory space busy-waits them
/// in real time.
#[inline]
pub fn now_ns() -> u64 {
    tracer_with_capacity(DEFAULT_RING_CAPACITY)
        .epoch
        .elapsed()
        .as_nanos() as u64
}

/// Starts a phase timer: the current virtual-cycle stamp, or `None` when
/// counters are disarmed (the `None` branch is the entire Off-level cost).
#[inline]
pub fn phase_start() -> Option<u64> {
    if counters_enabled() {
        Some(now_ns())
    } else {
        None
    }
}

/// Elapsed virtual cycles since a [`phase_start`] stamp.
#[inline]
pub fn phase_elapsed(start: u64) -> u64 {
    now_ns().saturating_sub(start)
}

/// Records one event on thread `tid`'s ring, if [`TraceLevel::Events`] is
/// armed and `tid` is within [`MAX_TRACE_THREADS`]. One relaxed load and
/// a branch when disarmed.
#[inline]
pub fn record(tid: usize, kind: TraceEventKind, arg: u64) {
    if !events_enabled() {
        return;
    }
    if let Some(tracer) = TRACER.get() {
        if let Some(ring) = tracer.rings.get(tid) {
            ring.push(kind, arg, tracer.epoch.elapsed().as_nanos() as u64);
        }
    }
}

/// The retained event tail of thread `tid`'s ring (empty when rings were
/// never installed or `tid` is out of range).
pub fn ring_snapshot(tid: usize) -> Vec<TraceEvent> {
    TRACER
        .get()
        .and_then(|t| t.rings.get(tid))
        .map(|r| r.snapshot())
        .unwrap_or_default()
}

/// Events thread `tid`'s ring lost to overwriting.
pub fn ring_dropped(tid: usize) -> u64 {
    TRACER
        .get()
        .and_then(|t| t.rings.get(tid))
        .map(|r| r.dropped_events())
        .unwrap_or(0)
}

/// One thread's flight-recorder state as returned by
/// [`ring_snapshot_all`]: the thread id, its retained event tail (oldest
/// first), and how many older events the ring overwrote.
pub type ThreadTrace = (usize, Vec<TraceEvent>, u64);

/// Snapshots every installed ring that recorded at least one event — the
/// whole process's flight-recorder state in one call. The fault-injection
/// machinery uses this to freeze what every thread was doing at the exact
/// tick a crash image is trapped.
pub fn ring_snapshot_all() -> Vec<ThreadTrace> {
    let Some(tracer) = TRACER.get() else {
        return Vec::new();
    };
    tracer
        .rings
        .iter()
        .enumerate()
        .filter(|(_, r)| r.recorded() > 0)
        .map(|(tid, r)| (tid, r.snapshot(), r.dropped_events()))
        .collect()
}

/// Clears every installed ring (between benchmark points / torture
/// replays; callers must be quiescent).
pub fn reset_rings() {
    if let Some(tracer) = TRACER.get() {
        for ring in &tracer.rings {
            ring.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(TraceLevel::Off < TraceLevel::Counters);
        assert!(TraceLevel::Counters < TraceLevel::Events);
        for level in [TraceLevel::Off, TraceLevel::Counters, TraceLevel::Events] {
            assert_eq!(TraceLevel::parse(level.label()), Some(level));
        }
        assert_eq!(TraceLevel::parse("bogus"), None);
    }

    #[test]
    fn ring_retains_tail_and_counts_drops() {
        let ring = EventRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..10u64 {
            ring.push(TraceEventKind::Enqueue, i, i * 100);
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped_events(), 6);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(
            snap.iter().map(|e| e.arg).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert!(snap.iter().all(|e| e.kind == TraceEventKind::Enqueue));
        assert_eq!(snap[0].t_ns, 600);
        ring.clear();
        assert_eq!(ring.recorded(), 0);
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn ring_capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::new(0).capacity(), 2);
        assert_eq!(EventRing::new(3).capacity(), 4);
        assert_eq!(EventRing::new(1000).capacity(), 1024);
    }

    #[test]
    fn arg_truncates_to_56_bits() {
        let ring = EventRing::new(2);
        ring.push(TraceEventKind::HtmCommit, u64::MAX, 1);
        let snap = ring.snapshot();
        assert_eq!(snap[0].arg, ARG_MASK);
        assert_eq!(snap[0].kind, TraceEventKind::HtmCommit);
    }

    #[test]
    fn taxonomy_labels_are_unique() {
        let causes: std::collections::HashSet<_> =
            AbortCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(causes.len(), AbortCause::ALL.len());
        let phases: std::collections::HashSet<_> =
            TxnPhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(phases.len(), TxnPhase::ALL.len());
        let kinds: std::collections::HashSet<_> =
            TraceEventKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(kinds.len(), TraceEventKind::ALL.len());
        for (i, kind) in TraceEventKind::ALL.iter().enumerate() {
            assert_eq!(*kind as u8 as usize, i);
            assert_eq!(TraceEventKind::from_u8(*kind as u8), Some(*kind));
        }
        for (i, cause) in AbortCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
            assert_eq!(AbortCause::from_index(i as u64), Some(*cause));
        }
        assert_eq!(AbortCause::from_index(99), None);
    }

    #[test]
    fn global_recording_respects_level() {
        // Serialise against other tests that might arm the globals.
        configure(TraceConfig::off());
        record(63, TraceEventKind::TxnBegin, 7);
        assert!(!events_enabled());
        configure(TraceConfig {
            level: TraceLevel::Events,
            ring_capacity: 64,
        });
        assert!(counters_enabled());
        assert!(events_enabled());
        record(63, TraceEventKind::TxnBegin, 7);
        record(63, TraceEventKind::TxnEnd, 0);
        let snap = ring_snapshot(63);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, TraceEventKind::TxnBegin);
        assert_eq!(snap[0].arg, 7);
        assert_eq!(ring_dropped(63), 0);
        // Out-of-range tids are ignored, not a panic.
        record(MAX_TRACE_THREADS + 1, TraceEventKind::TxnBegin, 0);
        assert!(ring_snapshot(MAX_TRACE_THREADS + 1).is_empty());
        configure(TraceConfig::off());
        assert_eq!(level(), TraceLevel::Off);
        assert!(phase_start().is_none());
    }
}
