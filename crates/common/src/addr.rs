//! Word-granular addresses into the simulated memory space.
//!
//! The simulated memory (`crafty-pmem`'s `MemorySpace`) is an array of
//! 64-bit words. All persistent accesses in the paper's implementation are
//! 8-byte aligned stores, so a word index loses no generality and keeps the
//! undo-log entry format (`<addr, oldValue>` pairs of 8-byte words) simple.
//!
//! Cache lines are 64 bytes, i.e. [`WORDS_PER_LINE`] = 8 words. Persistence
//! and HTM conflict detection both operate at line granularity, matching
//! x86 CLWB and RTM respectively.

use std::fmt;

/// Number of 64-bit words per simulated cache line (64-byte lines).
pub const WORDS_PER_LINE: u64 = 8;

/// A word-granular address in the simulated memory space.
///
/// `PAddr(i)` names the `i`-th 64-bit word. Addresses below the persistent
/// boundary of the memory space are persistent; addresses above it are
/// volatile (DRAM) and are lost on a crash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(u64);

impl PAddr {
    /// The null address. Word 0 of the memory space is reserved and never
    /// handed out by the allocator, so `NULL` can be used as a sentinel.
    pub const NULL: PAddr = PAddr(0);

    /// Creates an address from a word index.
    #[inline]
    pub const fn new(word_index: u64) -> Self {
        PAddr(word_index)
    }

    /// Returns the word index.
    #[inline]
    pub const fn word(self) -> u64 {
        self.0
    }

    /// Returns the byte offset of this word (word index × 8).
    #[inline]
    pub const fn byte(self) -> u64 {
        self.0 * 8
    }

    /// Returns the cache line containing this word.
    #[inline]
    pub const fn line(self) -> LineId {
        LineId(self.0 / WORDS_PER_LINE)
    }

    /// Returns the address `offset` words past this one.
    #[inline]
    pub const fn add(self, offset: u64) -> Self {
        PAddr(self.0 + offset)
    }

    /// Returns true if this is the null address.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PAddr({:#x})", self.0)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<PAddr> for u64 {
    fn from(a: PAddr) -> u64 {
        a.0
    }
}

impl From<u64> for PAddr {
    fn from(w: u64) -> PAddr {
        PAddr(w)
    }
}

/// Identifier of a simulated 64-byte cache line.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LineId(u64);

impl LineId {
    /// Creates a line id from its index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        LineId(index)
    }

    /// Returns the line index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the first word of this line.
    #[inline]
    pub const fn first_word(self) -> PAddr {
        PAddr(self.0 * WORDS_PER_LINE)
    }

    /// Returns an iterator over the words of this line.
    pub fn words(self) -> impl Iterator<Item = PAddr> {
        let base = self.0 * WORDS_PER_LINE;
        (0..WORDS_PER_LINE).map(move |i| PAddr(base + i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_and_byte_round_trip() {
        let a = PAddr::new(17);
        assert_eq!(a.word(), 17);
        assert_eq!(a.byte(), 136);
        assert_eq!(u64::from(a), 17);
        assert_eq!(PAddr::from(17u64), a);
    }

    #[test]
    fn line_of_word() {
        assert_eq!(PAddr::new(0).line(), LineId::new(0));
        assert_eq!(PAddr::new(7).line(), LineId::new(0));
        assert_eq!(PAddr::new(8).line(), LineId::new(1));
        assert_eq!(PAddr::new(63).line(), LineId::new(7));
    }

    #[test]
    fn line_words_cover_whole_line() {
        let words: Vec<PAddr> = LineId::new(3).words().collect();
        assert_eq!(words.len(), WORDS_PER_LINE as usize);
        assert_eq!(words[0], PAddr::new(24));
        assert_eq!(words[7], PAddr::new(31));
        for w in words {
            assert_eq!(w.line(), LineId::new(3));
        }
    }

    #[test]
    fn null_is_word_zero() {
        assert!(PAddr::NULL.is_null());
        assert!(!PAddr::new(1).is_null());
        assert_eq!(PAddr::default(), PAddr::NULL);
    }

    #[test]
    fn add_offsets_in_words() {
        let a = PAddr::new(10).add(5);
        assert_eq!(a.word(), 15);
    }

    #[test]
    fn ordering_follows_word_index() {
        assert!(PAddr::new(3) < PAddr::new(4));
        assert!(LineId::new(1) < LineId::new(2));
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        assert!(!format!("{:?}", PAddr::new(5)).is_empty());
        assert!(!format!("{}", PAddr::new(5)).is_empty());
        assert!(!format!("{:?}", LineId::new(5)).is_empty());
    }
}
