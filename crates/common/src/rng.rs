//! A small deterministic PRNG used by the simulators.
//!
//! The crash model and the "zero abort" injector need cheap, seedable,
//! reproducible randomness that does not depend on global state. SplitMix64
//! is a tiny, well-studied generator that is more than adequate for fault
//! injection and workload key generation; the `rand` crate is still used in
//! workloads when distributions are needed.

/// SplitMix64's output function: adds the golden-gamma increment and
/// applies the finalizer. A high-quality, bijective-per-gamma-step 64-bit
/// mix, shared by [`SplitMix64::next_u64`] and by callers that need a
/// stateless hash with the same avalanche behaviour (the KV store's
/// shard/slot hashing, the YCSB key scrambler).
#[inline]
pub const fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use crafty_common::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Different seeds give independent
    /// streams; the same seed always gives the same stream.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        let out = mix64(self.state);
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        out
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for simulation use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
        for _ in 0..1000 {
            assert!(r.next_below(1) == 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..1000).filter(|_| r.chance(0.5)).count();
        assert!(hits > 300 && hits < 700, "chance(0.5) hit {hits}/1000");
    }
}
