//! A zipfian item-popularity distribution for KV-store workloads.
//!
//! YCSB-style key-value benchmarks draw keys from a zipfian distribution:
//! rank `i` (0-based) is requested with probability proportional to
//! `1 / (i + 1)^θ`, so a small set of hot keys absorbs most of the traffic —
//! the skew that decides whether a sharded store scales. [`Zipfian`]
//! implements the standard Gray et al. quantile-function sampler used by
//! YCSB's `ZipfianGenerator`: the harmonic normalizer `ζ(n, θ)` is computed
//! once up front and each sample then costs O(1), driven by a caller-owned
//! [`SplitMix64`] stream so sampling is deterministic per seed and shares
//! the workspace's no-global-state discipline.
//!
//! [`Zipfian::sample`] returns a *rank* (0 = most popular). Workloads that
//! want the hot items scattered across the key space (YCSB's "scrambled
//! zipfian") should hash the rank afterwards; the distribution over hash
//! buckets is unchanged.

use crate::rng::SplitMix64;

/// The default skew parameter used by YCSB (`zipfian constant` 0.99).
pub const YCSB_THETA: f64 = 0.99;

/// A zipfian distribution over ranks `0..n`, sampled in O(1).
///
/// # Example
///
/// ```
/// use crafty_common::{SplitMix64, Zipfian, YCSB_THETA};
///
/// let zipf = Zipfian::new(1000, YCSB_THETA);
/// let mut rng = SplitMix64::new(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl Zipfian {
    /// Creates a zipfian distribution over `0..n` with skew `theta`
    /// (`0 < theta < 1`; YCSB uses [`YCSB_THETA`]). Computing the
    /// normalizer walks the `n` ranks once; construction is `O(n)`,
    /// sampling `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty domain");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    /// The harmonic-like normalizer `ζ(n, θ) = Σ_{i=1..n} 1 / i^θ`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of ranks in the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank (0 = most popular) using `rng`. Identical `(n, theta)`
    /// and an identically seeded `rng` reproduce the same rank sequence.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        // Uniform in [0, 1); the standard quantile-function inversion.
        let u = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_domain() {
        let zipf = Zipfian::new(100, YCSB_THETA);
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn singleton_domain_always_returns_zero() {
        let zipf = Zipfian::new(1, 0.5);
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let zipf = Zipfian::new(1 << 16, YCSB_THETA);
        let mut rng = SplitMix64::new(11);
        let samples = 100_000;
        let zeros = (0..samples).filter(|_| zipf.sample(&mut rng) == 0).count();
        // With θ = 0.99 over 65536 items, rank 0 receives ≈ 1/ζ(n,θ) ≈ 8%
        // of the traffic; uniform sampling would give it 0.0015%.
        assert!(
            zeros > samples / 50,
            "rank 0 drew only {zeros}/{samples} samples"
        );
    }

    #[test]
    #[should_panic(expected = "theta must be in (0, 1)")]
    fn rejects_out_of_range_theta() {
        Zipfian::new(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn rejects_empty_domain() {
        Zipfian::new(0, 0.5);
    }
}
