//! The engine-generic persistent-transaction interface.
//!
//! Crafty, its ablation variants, and every baseline engine (Non-durable,
//! NV-HTM, DudeTM, software undo/redo logging) implement [`PersistentTm`].
//! Workloads are written once against [`TxnOps`] and run unchanged on every
//! engine, exactly as the paper runs the same benchmarks over all
//! configurations.
//!
//! Transaction bodies must be **idempotent**: engines are free to execute a
//! body multiple times (Crafty's Log and Validate phases re-execute it, HTM
//! retries re-execute it), so bodies must not have side effects outside the
//! [`TxnOps`] interface other than overwriting function-local state
//! (Section 6, "Mixed-mode accesses").
//!
//! # Example
//!
//! ```
//! use crafty_common::{PAddr, TxAbort, TxnOps};
//!
//! // A transaction body that transfers one unit between two accounts.
//! fn transfer(ops: &mut dyn TxnOps, from: PAddr, to: PAddr) -> Result<(), TxAbort> {
//!     let a = ops.read(from)?;
//!     let b = ops.read(to)?;
//!     ops.write(from, a.wrapping_sub(1))?;
//!     ops.write(to, b.wrapping_add(1))?;
//!     Ok(())
//! }
//! ```

use crate::addr::PAddr;
use crate::breakdown::{BreakdownSnapshot, CompletionPath};
use crate::error::TxAbort;

/// Operations available to a transaction body.
///
/// All memory named by [`PAddr`] is accessed through this trait while inside
/// a transaction; engines interpose logging, validation, or shadowing as
/// needed. Reads and writes are 64-bit and word-aligned, matching the
/// paper's implementation in which "all writes are expressed as 8-byte,
/// aligned stores".
pub trait TxnOps {
    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`TxAbort`] if the enclosing (simulated) hardware transaction
    /// aborted or the engine requires the body to restart; the body must
    /// propagate the error immediately.
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort>;

    /// Writes `value` to the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`TxAbort`] under the same conditions as [`TxnOps::read`].
    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort>;

    /// Allocates `words` consecutive words of persistent memory and returns
    /// the address of the first. Engines that re-execute bodies guarantee
    /// that the same call site observes the same address on re-execution
    /// (Section 6, "Memory management").
    ///
    /// # Errors
    ///
    /// Returns [`TxAbort`] under the same conditions as [`TxnOps::read`],
    /// or if the persistent heap is exhausted.
    fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort>;

    /// Frees `words` consecutive words starting at `addr`. The release is
    /// deferred until the persistent transaction commits so that aborted or
    /// re-executed bodies do not leak or double-free.
    ///
    /// # Errors
    ///
    /// Returns [`TxAbort`] under the same conditions as [`TxnOps::read`].
    fn dealloc(&mut self, addr: PAddr, words: u64) -> Result<(), TxAbort>;
}

/// A transaction body: a re-executable closure over [`TxnOps`].
pub type TxnBody<'a> = dyn FnMut(&mut dyn TxnOps) -> Result<(), TxAbort> + 'a;

/// What happened while executing one persistent transaction to completion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TxnReport {
    /// The path by which the transaction finally committed.
    pub path: CompletionPath,
    /// Number of hardware transactions attempted while executing it
    /// (including aborted attempts across all phases).
    pub hw_attempts: u32,
}

impl TxnReport {
    /// Convenience constructor.
    pub const fn new(path: CompletionPath, hw_attempts: u32) -> Self {
        TxnReport { path, hw_attempts }
    }
}

/// A per-thread handle onto an engine.
///
/// Engines keep per-thread state (undo/redo logs, retry counters); worker
/// threads obtain a `TmThread` via [`PersistentTm::register_thread`] and run
/// every persistent transaction through it.
pub trait TmThread {
    /// Executes one persistent transaction to completion, retrying and
    /// falling back internally as the engine requires. The body may be
    /// invoked any number of times.
    fn execute(&mut self, body: &mut TxnBody<'_>) -> TxnReport;

    /// Executes one persistent transaction whose **durability may be
    /// deferred**: the transaction commits (becomes visible, logs its undo
    /// entries, marks its sequence COMMITTED) exactly as
    /// [`TmThread::execute`] does, but the engine may postpone the drain
    /// that makes the commit durable until a later transaction on this
    /// thread needs one anyway — or until [`TmThread::flush_deferred`] is
    /// called. This is the group-commit primitive: K logically independent
    /// transactions executed this way share one drain barrier instead of
    /// paying one each.
    ///
    /// Crash semantics: a crash before the covering drain may lose any of
    /// the deferred transactions, but each one atomically — recovery rolls
    /// a lost transaction back whole, never partially. (This is the same
    /// window [`TmThread::execute`] already has on engines that defer the
    /// final drain to the next transaction's fence; deferral only widens
    /// it from one transaction to the group.)
    ///
    /// The default implementation simply calls [`TmThread::execute`]:
    /// engines without a deferral fast path remain correct, just without
    /// the shared barrier.
    fn execute_deferred(&mut self, body: &mut TxnBody<'_>) -> TxnReport {
        self.execute(body)
    }

    /// Completes the durability of every transaction previously run with
    /// [`TmThread::execute_deferred`] on this thread: after it returns, all
    /// of them survive a crash (up to the engine's usual latest-sequence
    /// rollback rule). The shared drain barrier of a group commit. The
    /// default implementation is a no-op, matching the default
    /// `execute_deferred` (which never defers anything).
    fn flush_deferred(&mut self) {}
}

/// A persistent-transaction engine.
///
/// Implementations must be shareable across threads; per-thread mutable
/// state lives behind [`PersistentTm::register_thread`].
pub trait PersistentTm: Send + Sync {
    /// Human-readable engine name as used in the paper's legends
    /// (e.g. `"Crafty"`, `"NV-HTM"`, `"Non-durable"`).
    fn name(&self) -> &str;

    /// Registers worker thread `tid` (0-based, dense) and returns its
    /// engine handle. Each tid must be registered at most once per run.
    fn register_thread(&self, tid: usize) -> Box<dyn TmThread + '_>;

    /// Returns a snapshot of the engine's breakdown counters.
    fn breakdown(&self) -> BreakdownSnapshot;

    /// Whether the engine provides failure atomicity (durability). The
    /// Non-durable baseline returns `false`.
    fn is_durable(&self) -> bool {
        true
    }

    /// Called once after all worker threads have finished a measurement
    /// run; engines with background threads (NV-HTM, DudeTM) drain their
    /// pipelines here so that all committed transactions are persisted.
    fn quiesce(&self) {}

    /// Pins every transaction that has completed before the call so that it
    /// survives a crash, callable **while other threads keep running**
    /// (unlike [`PersistentTm::quiesce`]). Invoke this before an externally
    /// visible, irrevocable action — acknowledging a network request,
    /// issuing a system call — whose observer must never see the
    /// acknowledged work disappear.
    ///
    /// The paper's recovery gives prefix consistency: each thread's
    /// *latest* logged sequence is rolled back (its data write-backs may be
    /// torn), and the timestamp cut can drag further committed-but-unpinned
    /// work down with it. Crafty therefore implements this as Section 5.2's
    /// on-demand persistence: an empty committed sequence is appended to
    /// every thread's log, so the rollback has nothing real left to undo.
    ///
    /// The default is a no-op, which is correct for engines whose committed
    /// transactions are already stable once their commit-path drains have
    /// completed (and trivially for the non-durable baseline, which makes
    /// no durability promise to pin).
    fn persist_fence(&self, calling_tid: usize) {
        let _ = calling_tid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown::BreakdownRecorder;
    use std::collections::HashMap;

    /// A trivial in-memory engine used to exercise the trait object
    /// interface itself.
    struct MapTm {
        recorder: BreakdownRecorder,
    }

    struct MapThread<'a> {
        store: HashMap<u64, u64>,
        next: u64,
        recorder: &'a BreakdownRecorder,
    }

    struct MapOps<'a> {
        store: &'a mut HashMap<u64, u64>,
        next: &'a mut u64,
    }

    impl TxnOps for MapOps<'_> {
        fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
            Ok(*self.store.get(&addr.word()).unwrap_or(&0))
        }
        fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
            self.store.insert(addr.word(), value);
            Ok(())
        }
        fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort> {
            let a = *self.next;
            *self.next += words;
            Ok(PAddr::new(a))
        }
        fn dealloc(&mut self, _addr: PAddr, _words: u64) -> Result<(), TxAbort> {
            Ok(())
        }
    }

    impl TmThread for MapThread<'_> {
        fn execute(&mut self, body: &mut TxnBody<'_>) -> TxnReport {
            let mut ops = MapOps {
                store: &mut self.store,
                next: &mut self.next,
            };
            body(&mut ops).expect("map engine never aborts");
            self.recorder.record_completion(CompletionPath::NonCrafty);
            TxnReport::new(CompletionPath::NonCrafty, 1)
        }
    }

    impl PersistentTm for MapTm {
        fn name(&self) -> &str {
            "map"
        }
        fn register_thread(&self, _tid: usize) -> Box<dyn TmThread + '_> {
            Box::new(MapThread {
                store: HashMap::new(),
                next: 1,
                recorder: &self.recorder,
            })
        }
        fn breakdown(&self) -> BreakdownSnapshot {
            self.recorder.snapshot()
        }
        fn is_durable(&self) -> bool {
            false
        }
    }

    #[test]
    fn bodies_run_through_trait_objects() {
        let tm = MapTm {
            recorder: BreakdownRecorder::new(),
        };
        let mut thread = tm.register_thread(0);
        let target = PAddr::new(100);
        let report = thread.execute(&mut |ops| {
            let v = ops.read(target)?;
            ops.write(target, v + 7)?;
            Ok(())
        });
        assert_eq!(report.path, CompletionPath::NonCrafty);
        let mut read_back = 0;
        thread.execute(&mut |ops| {
            read_back = ops.read(target)?;
            Ok(())
        });
        assert_eq!(read_back, 7);
        assert_eq!(tm.breakdown().total_persistent(), 2);
        assert!(!tm.is_durable());
        tm.quiesce();
    }

    #[test]
    fn alloc_returns_distinct_addresses() {
        let tm = MapTm {
            recorder: BreakdownRecorder::new(),
        };
        let mut thread = tm.register_thread(0);
        let mut first = PAddr::NULL;
        let mut second = PAddr::NULL;
        thread.execute(&mut |ops| {
            first = ops.alloc(4)?;
            second = ops.alloc(4)?;
            Ok(())
        });
        assert_ne!(first, second);
        assert!(second.word() >= first.word() + 4);
    }
}
