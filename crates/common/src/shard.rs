//! Lazily-allocated sharded atomic arrays.
//!
//! Several structures in the workspace are logically "one atomic word per
//! cache line of the simulated memory": the HTM's versioned line locks, the
//! persistence domain's dirty bits, and the flush queues' per-line dedup
//! stamps. Sizing those densely means a 256 MiB space pays tens of
//! megabytes of metadata up front even if the workload touches a few
//! thousand lines.
//!
//! [`LazyAtomicArray`] instead splits the index space into fixed-size
//! *segments* that are allocated on first touch (via [`std::sync::OnceLock`],
//! so concurrent first touches are safe and exactly one allocation wins).
//! Unallocated segments read as zero through [`LazyAtomicArray::peek`] /
//! [`LazyAtomicArray::load_or_zero`], which never allocate — the natural
//! encoding for "version 0", "not dirty", and "never flushed".
//!
//! Steady-state accesses to an already-allocated segment cost one extra
//! atomic load (the `OnceLock` check) over a dense array, and perform no
//! heap allocation — the property the counting-allocator tests assert.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Number of `u64` slots per lazily-allocated segment (32 KiB segments).
pub const SEGMENT_SLOTS: u64 = 4096;

/// A fixed-length array of `AtomicU64` whose backing storage is allocated
/// in [`SEGMENT_SLOTS`]-sized segments on first write access.
pub struct LazyAtomicArray {
    segments: Box<[OnceLock<Box<[AtomicU64]>>]>,
    len: u64,
}

impl std::fmt::Debug for LazyAtomicArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyAtomicArray")
            .field("len", &self.len)
            .field("segments", &self.segments.len())
            .field("allocated_segments", &self.allocated_segments())
            .finish()
    }
}

impl LazyAtomicArray {
    /// Creates an array of `len` zero-initialized slots. No segment is
    /// allocated until it is first touched through [`LazyAtomicArray::get`].
    pub fn new(len: u64) -> Self {
        let count = len.div_ceil(SEGMENT_SLOTS) as usize;
        LazyAtomicArray {
            segments: (0..count).map(|_| OnceLock::new()).collect(),
            len,
        }
    }

    /// The logical number of slots.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the array has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments that have been materialized so far (diagnostics
    /// and tests).
    pub fn allocated_segments(&self) -> usize {
        self.segments.iter().filter(|s| s.get().is_some()).count()
    }

    /// Returns the slot at `idx`, allocating its segment if needed.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn get(&self, idx: u64) -> &AtomicU64 {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        let seg = self.segments[(idx / SEGMENT_SLOTS) as usize]
            .get_or_init(|| (0..SEGMENT_SLOTS).map(|_| AtomicU64::new(0)).collect());
        &seg[(idx % SEGMENT_SLOTS) as usize]
    }

    /// Returns the slot at `idx` if its segment has been allocated. Never
    /// allocates; an unallocated segment means every slot in it is still
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn peek(&self, idx: u64) -> Option<&AtomicU64> {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        self.segments[(idx / SEGMENT_SLOTS) as usize]
            .get()
            .map(|seg| &seg[(idx % SEGMENT_SLOTS) as usize])
    }

    /// Acquire-loads the slot at `idx`, or 0 if its segment was never
    /// allocated (the value every slot starts with).
    #[inline]
    pub fn load_or_zero(&self, idx: u64) -> u64 {
        match self.peek(idx) {
            Some(slot) => slot.load(Ordering::Acquire),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_allocates_on_first_touch() {
        let a = LazyAtomicArray::new(3 * SEGMENT_SLOTS + 1);
        assert_eq!(a.len(), 3 * SEGMENT_SLOTS + 1);
        assert_eq!(a.allocated_segments(), 0);
        assert!(a.peek(0).is_none());
        assert_eq!(a.load_or_zero(2 * SEGMENT_SLOTS), 0);
        assert_eq!(a.allocated_segments(), 0, "reads must not allocate");

        a.get(SEGMENT_SLOTS + 5).store(9, Ordering::Release);
        assert_eq!(a.allocated_segments(), 1);
        assert_eq!(a.load_or_zero(SEGMENT_SLOTS + 5), 9);
        assert_eq!(
            a.load_or_zero(SEGMENT_SLOTS + 6),
            0,
            "neighbours in a fresh segment are zero"
        );
    }

    #[test]
    fn last_partial_segment_is_addressable() {
        let a = LazyAtomicArray::new(SEGMENT_SLOTS + 3);
        a.get(SEGMENT_SLOTS + 2).store(7, Ordering::Release);
        assert_eq!(a.load_or_zero(SEGMENT_SLOTS + 2), 7);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        LazyAtomicArray::new(4).get(4);
    }

    #[test]
    fn concurrent_first_touch_is_safe() {
        let a = std::sync::Arc::new(LazyAtomicArray::new(SEGMENT_SLOTS * 2));
        std::thread::scope(|s| {
            for t in 0..4 {
                let a = std::sync::Arc::clone(&a);
                s.spawn(move || {
                    for i in 0..SEGMENT_SLOTS {
                        a.get(i).fetch_add(t + 1, Ordering::AcqRel);
                    }
                });
            }
        });
        assert_eq!(a.allocated_segments(), 1);
        let total: u64 = (0..SEGMENT_SLOTS).map(|i| a.load_or_zero(i)).sum::<u64>();
        assert_eq!(total, SEGMENT_SLOTS * (1 + 2 + 3 + 4));
    }
}
