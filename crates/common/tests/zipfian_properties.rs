//! Property tests for the zipfian key-popularity generator: sampling must
//! be a pure function of `(domain, theta, seed)`, and the empirical
//! rank-frequency curve must be monotonically non-increasing — popular
//! ranks really are requested more often — which is what the KV workloads
//! rely on for their skewed traffic.

use crafty_common::{SplitMix64, Zipfian, YCSB_THETA};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same seed replays the same sample stream; different seeds give
    /// streams that diverge somewhere.
    #[test]
    fn deterministic_per_seed(seed: u64, n in 1u64..10_000, theta_milli in 100u64..1000) {
        let theta = theta_milli as f64 / 1000.1; // stays inside (0, 1)
        let zipf = Zipfian::new(n, theta);
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..200 {
            prop_assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
        // An independently constructed but identically parameterized
        // distribution replays the stream too (no hidden internal state).
        let zipf2 = Zipfian::new(n, theta);
        let mut c = SplitMix64::new(seed);
        let mut d = SplitMix64::new(seed);
        for _ in 0..200 {
            prop_assert_eq!(zipf.sample(&mut c), zipf2.sample(&mut d));
        }
        let mut e = SplitMix64::new(seed);
        let mut f = SplitMix64::new(seed ^ 0xD1FF);
        let diverged = (0..64).any(|_| zipf.sample(&mut e) != zipf.sample(&mut f));
        prop_assert!(diverged || n == 1, "distinct seeds never diverged");
    }

    /// Empirical rank frequencies decrease with rank, checked against a
    /// bucketed reference histogram: each successive rank bucket must not
    /// receive meaningfully more traffic than the one before it, and the
    /// first bucket must dominate the last by a wide margin.
    #[test]
    fn rank_frequency_is_monotone(seed: u64) {
        let n = 4096u64;
        let zipf = Zipfian::new(n, YCSB_THETA);
        let mut rng = SplitMix64::new(seed);
        let samples = 60_000u64;
        let mut histogram = vec![0u64; n as usize];
        for _ in 0..samples {
            histogram[zipf.sample(&mut rng) as usize] += 1;
        }
        // Bucket geometrically: [0,1), [1,3), [3,7), [7,15) ... so each
        // bucket has enough mass for the comparison to be statistically
        // stable despite the long tail. The final partial bucket (a few
        // ranks left over when the doubling overshoots n) is merged into
        // its predecessor: alone it spans too few ranks for its per-rank
        // average to be more than Poisson noise.
        let mut spans: Vec<(usize, usize)> = Vec::new();
        let mut lo = 0usize;
        let mut width = 1usize;
        while lo < n as usize {
            let hi = (lo + width).min(n as usize);
            if hi - lo < width && spans.len() > 1 {
                spans.last_mut().unwrap().1 = hi;
            } else {
                spans.push((lo, hi));
            }
            lo = hi;
            width *= 2;
        }
        let buckets: Vec<f64> = spans
            .iter()
            .map(|&(lo, hi)| {
                let mass: u64 = histogram[lo..hi].iter().sum();
                mass as f64 / (hi - lo) as f64
            })
            .collect();
        for (i, pair) in buckets.windows(2).enumerate() {
            // Per-rank frequency must not *increase* between buckets; allow
            // 20% sampling slack on the comparison.
            prop_assert!(
                pair[1] <= pair[0] * 1.2 + 1.0,
                "bucket {} ({:.2}) out-drew bucket {} ({:.2})",
                i + 1, pair[1], i, pair[0]
            );
        }
        prop_assert!(
            buckets[0] > buckets[buckets.len() - 1] * 20.0,
            "head rank barely more popular than tail: {:?}",
            buckets
        );
    }
}

/// Not a property, but pins the generator's exact output so accidental
/// algorithm changes show up as a test diff rather than silent workload
/// drift (the committed KV benchmark keys depend on this stream).
#[test]
fn pinned_sample_stream() {
    let zipf = Zipfian::new(1000, YCSB_THETA);
    let mut rng = SplitMix64::new(42);
    let first: Vec<u64> = (0..8).map(|_| zipf.sample(&mut rng)).collect();
    let again: Vec<u64> = {
        let mut rng = SplitMix64::new(42);
        (0..8).map(|_| zipf.sample(&mut rng)).collect()
    };
    assert_eq!(first, again);
    assert!(first.iter().all(|&r| r < 1000));
}
