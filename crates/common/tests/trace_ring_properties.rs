//! Property tests of the [`EventRing`] flight recorder: under any
//! single-writer push sequence, the retained tail and the drop counter
//! reconcile exactly with an unbounded shadow oracle.

use crafty_common::trace::{EventRing, TraceEvent, TraceEventKind};
use crafty_common::SplitMix64;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ring_tail_and_drop_counter_reconcile_with_oracle(
        seed: u64,
        capacity in 0usize..200,
        pushes in 0usize..400,
    ) {
        let mut rng = SplitMix64::new(seed ^ 0x7ACE_7ACE_7ACE_7ACE);
        let ring = EventRing::new(capacity);
        let mut oracle: Vec<TraceEvent> = Vec::new();
        for step in 0..pushes {
            let kind = TraceEventKind::ALL
                [rng.next_below(TraceEventKind::ALL.len() as u64) as usize];
            let arg = rng.next_below(1 << 56);
            let t_ns = step as u64 * 3 + rng.next_below(3);
            ring.push(kind, arg, t_ns);
            oracle.push(TraceEvent { kind, arg, t_ns });
        }

        let snap = ring.snapshot();
        let cap = ring.capacity();
        prop_assert_eq!(ring.recorded(), oracle.len() as u64);
        // The retained tail is exactly the last min(len, capacity) oracle
        // events, oldest first.
        let start = oracle.len().saturating_sub(cap);
        prop_assert_eq!(&snap[..], &oracle[start..]);
        // Drops reconcile: everything the oracle holds beyond the tail
        // was overwritten, and nothing else.
        prop_assert_eq!(
            ring.dropped_events(),
            (oracle.len() - snap.len()) as u64
        );
        prop_assert_eq!(
            ring.dropped_events(),
            (oracle.len() as u64).saturating_sub(cap as u64)
        );

        // Clearing resets the recorder to an empty, drop-free state.
        ring.clear();
        prop_assert_eq!(ring.recorded(), 0);
        prop_assert_eq!(ring.dropped_events(), 0);
        prop_assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn capacity_is_next_power_of_two(capacity in 0usize..10_000) {
        let ring = EventRing::new(capacity);
        let got = ring.capacity();
        prop_assert!(got.is_power_of_two());
        prop_assert!(got >= capacity.max(2));
        prop_assert!(got < capacity.max(2) * 2);
    }
}
