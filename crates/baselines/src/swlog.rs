//! The textbook software crash-consistency mechanisms of Figure 1.
//!
//! These engines provide thread atomicity with a global lock and failure
//! atomicity with either undo logging (persist the old value before every
//! in-place write — one drain per write) or redo logging (buffer writes,
//! persist the log once, then write back — one drain per transaction, but
//! every read must consult the buffered writes). They are not part of the
//! paper's measured configurations; they exist to let the benches
//! demonstrate the per-write versus per-transaction persist-cost trade-off
//! the paper's Section 2.2 describes.

use std::collections::HashMap;
use std::sync::Arc;

use crafty_common::{
    BreakdownRecorder, BreakdownSnapshot, CompletionPath, PAddr, PersistentTm, TmThread, TxAbort,
    TxnBody, TxnOps, TxnReport,
};
use crafty_pmem::{MemorySpace, PmemAllocator};
use parking_lot::Mutex;

/// Which Figure 1 mechanism an [`SwLogTm`] instance uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mechanism {
    Undo,
    Redo,
}

/// Lock-based software undo logging (Figure 1(b)).
pub struct SwUndoLog;

/// Lock-based software redo logging (Figure 1(c)).
pub struct SwRedoLog;

/// Shared implementation of the two lock-based software engines.
pub struct SwLogTm {
    mem: Arc<MemorySpace>,
    recorder: Arc<BreakdownRecorder>,
    allocator: PmemAllocator,
    mechanism: Mechanism,
    lock: Mutex<()>,
    /// Persistent log region used by whichever thread holds the lock.
    log_region: PAddr,
    log_words: u64,
}

impl std::fmt::Debug for SwLogTm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwLogTm")
            .field("mechanism", &self.mechanism)
            .finish()
    }
}

impl SwUndoLog {
    /// Creates a lock-based undo-logging engine over `mem`.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(mem: Arc<MemorySpace>, heap_words: u64) -> SwLogTm {
        SwLogTm::new(mem, heap_words, Mechanism::Undo)
    }
}

impl SwRedoLog {
    /// Creates a lock-based redo-logging engine over `mem`.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(mem: Arc<MemorySpace>, heap_words: u64) -> SwLogTm {
        SwLogTm::new(mem, heap_words, Mechanism::Redo)
    }
}

impl SwLogTm {
    fn new(mem: Arc<MemorySpace>, heap_words: u64, mechanism: Mechanism) -> Self {
        let recorder = Arc::new(BreakdownRecorder::new());
        let heap = mem.reserve_persistent(heap_words);
        let log_words = 1 << 14;
        let log_region = mem.reserve_persistent(log_words);
        SwLogTm {
            mem,
            recorder,
            allocator: PmemAllocator::new(heap, heap_words),
            mechanism,
            lock: Mutex::new(()),
            log_region,
            log_words,
        }
    }
}

struct SwThread<'e> {
    engine: &'e SwLogTm,
    tid: usize,
}

/// Undo-logging ops: persist `<addr, old>` before each in-place write.
struct UndoOps<'e> {
    engine: &'e SwLogTm,
    tid: usize,
    log_cursor: u64,
    writes: u64,
}

impl TxnOps for UndoOps<'_> {
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
        Ok(self.engine.mem.read(addr))
    }
    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
        let e = self.engine;
        let old = e.mem.read(addr);
        let slot = e.log_region.add((self.log_cursor * 2) % e.log_words);
        e.mem.write(slot, addr.word());
        e.mem.write(slot.add(1), old);
        // Persist the log entry before the in-place update (Figure 1(b)).
        e.mem.clwb(self.tid, slot);
        e.mem.drain(self.tid);
        e.recorder.record_drain();
        e.mem.write(addr, value);
        e.mem.clwb(self.tid, addr);
        self.log_cursor += 1;
        self.writes += 1;
        Ok(())
    }
    fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort> {
        Ok(self
            .engine
            .allocator
            .alloc(words)
            .expect("persistent heap exhausted"))
    }
    fn dealloc(&mut self, addr: PAddr, words: u64) -> Result<(), TxAbort> {
        self.engine.allocator.free(addr, words);
        Ok(())
    }
}

/// Redo-logging ops: buffer writes; reads must look them up first.
struct RedoOps<'e> {
    engine: &'e SwLogTm,
    buffer: HashMap<u64, u64>,
    order: Vec<PAddr>,
}

impl TxnOps for RedoOps<'_> {
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
        if let Some(&v) = self.buffer.get(&addr.word()) {
            return Ok(v);
        }
        Ok(self.engine.mem.read(addr))
    }
    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
        if self.buffer.insert(addr.word(), value).is_none() {
            self.order.push(addr);
        }
        Ok(())
    }
    fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort> {
        Ok(self
            .engine
            .allocator
            .alloc(words)
            .expect("persistent heap exhausted"))
    }
    fn dealloc(&mut self, addr: PAddr, words: u64) -> Result<(), TxAbort> {
        self.engine.allocator.free(addr, words);
        Ok(())
    }
}

impl TmThread for SwThread<'_> {
    fn execute(&mut self, body: &mut TxnBody<'_>) -> TxnReport {
        let engine = self.engine;
        let _guard = engine.lock.lock();
        let writes = match engine.mechanism {
            Mechanism::Undo => {
                let mut ops = UndoOps {
                    engine,
                    tid: self.tid,
                    log_cursor: 0,
                    writes: 0,
                };
                body(&mut ops).expect("lock-based transactions cannot abort");
                // COMMITTED record, persisted.
                let slot = engine
                    .log_region
                    .add((ops.log_cursor * 2) % engine.log_words);
                engine.mem.write(slot, u64::MAX);
                engine.mem.persist(self.tid, slot);
                engine.recorder.record_drain();
                ops.writes
            }
            Mechanism::Redo => {
                let mut ops = RedoOps {
                    engine,
                    buffer: HashMap::new(),
                    order: Vec::new(),
                };
                body(&mut ops).expect("lock-based transactions cannot abort");
                // Persist the whole redo log with one drain, then write back.
                for (i, addr) in ops.order.iter().enumerate() {
                    let slot = engine.log_region.add((i as u64 * 2) % engine.log_words);
                    engine.mem.write(slot, addr.word());
                    engine.mem.write(slot.add(1), ops.buffer[&addr.word()]);
                    engine.mem.clwb(self.tid, slot);
                }
                engine.mem.drain(self.tid);
                engine.recorder.record_drain();
                for addr in &ops.order {
                    engine.mem.write(*addr, ops.buffer[&addr.word()]);
                    engine.mem.clwb(self.tid, *addr);
                }
                engine.mem.drain(self.tid);
                engine.recorder.record_drain();
                ops.order.len() as u64
            }
        };
        engine.recorder.record_persistent_writes(writes);
        engine.recorder.record_completion(CompletionPath::NonCrafty);
        TxnReport::new(CompletionPath::NonCrafty, 0)
    }
}

impl PersistentTm for SwLogTm {
    fn name(&self) -> &str {
        match self.mechanism {
            Mechanism::Undo => "SW-UndoLog",
            Mechanism::Redo => "SW-RedoLog",
        }
    }
    fn register_thread(&self, tid: usize) -> Box<dyn TmThread + '_> {
        Box::new(SwThread { engine: self, tid })
    }
    fn breakdown(&self) -> BreakdownSnapshot {
        self.recorder.snapshot()
    }
    fn quiesce(&self) {
        for tid in 0..8 {
            self.mem.drain(tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::PmemConfig;

    #[test]
    fn both_mechanisms_apply_and_persist_writes() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        for engine in [
            SwUndoLog::new(Arc::clone(&mem), 1 << 12),
            SwRedoLog::new(Arc::clone(&mem), 1 << 12),
        ] {
            let cell = mem.reserve_persistent(1);
            let mut t = engine.register_thread(0);
            t.execute(&mut |ops| {
                let v = ops.read(cell)?;
                ops.write(cell, v + 5)?;
                let v = ops.read(cell)?;
                assert_eq!(v, 5, "{}: reads must see earlier writes", engine.name());
                ops.write(cell, v + 5)?;
                Ok(())
            });
            engine.quiesce();
            assert_eq!(mem.read(cell), 10);
            assert_eq!(mem.crash().read(cell), 10, "{}", engine.name());
        }
    }

    #[test]
    fn undo_logging_drains_per_write_redo_once_per_txn() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let undo = SwUndoLog::new(Arc::clone(&mem), 1 << 12);
        let redo = SwRedoLog::new(Arc::clone(&mem), 1 << 12);
        let cells = mem.reserve_persistent(16);
        for (engine, expect_more_drains) in [(&undo, true), (&redo, false)] {
            let before = engine.breakdown().persist_drains;
            let mut t = engine.register_thread(0);
            t.execute(&mut |ops| {
                for i in 0..10 {
                    ops.write(cells.add(i), i)?;
                }
                Ok(())
            });
            let drains = engine.breakdown().persist_drains - before;
            if expect_more_drains {
                assert!(drains >= 10, "undo logging drains per write, saw {drains}");
            } else {
                assert!(
                    drains <= 3,
                    "redo logging drains per transaction, saw {drains}"
                );
            }
        }
    }

    #[test]
    fn totals_preserved_under_contention() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = Arc::new(SwUndoLog::new(Arc::clone(&mem), 1 << 12));
        let base = mem.reserve_persistent(4);
        for i in 0..4 {
            mem.write(base.add(i), 50);
        }
        crossbeam::scope(|s| {
            for tid in 0..3 {
                let engine = Arc::clone(&engine);
                s.spawn(move |_| {
                    let mut t = engine.register_thread(tid);
                    let mut rng = crafty_common::SplitMix64::new(tid as u64);
                    for _ in 0..100 {
                        let from = base.add(rng.next_below(4));
                        let to = base.add(rng.next_below(4));
                        t.execute(&mut |ops| {
                            let a = ops.read(from)?;
                            ops.write(from, a - 1)?;
                            let b = ops.read(to)?;
                            ops.write(to, b + 1)?;
                            Ok(())
                        });
                    }
                });
            }
        })
        .expect("threads");
        let total: u64 = (0..4).map(|i| mem.read(base.add(i))).sum();
        assert_eq!(total, 200);
    }
}
