//! NV-HTM and DudeTM: HTM-compatible persistent transactions based on
//! shadow paging / copy-on-write with background persistence.
//!
//! Both systems decouple persistence from HTM concurrency control
//! (Section 2.3): the hardware transaction reads and writes *shadow*
//! memory in place — in this simulation, the volatile view of the memory
//! space, whose contents reach the persistent image only when flushed —
//! and persistence happens after commit, through per-thread redo logs and
//! a background checkpointer that applies committed transactions to
//! persistent memory in timestamp order.
//!
//! The two scalability bottlenecks the paper attributes to NV-HTM are
//! modelled directly:
//!
//! 1. **Commit-time wait** — a transaction may not durably write its
//!    COMMIT record until no ongoing transaction might still commit an
//!    earlier timestamp ([`ShadowPagingTm`] waits on the other threads'
//!    in-flight timestamps).
//! 2. **Serialized background persistence** — a single checkpointer thread
//!    write-backs every committed transaction's data, one transaction at a
//!    time. At full machine utilization this extra thread also competes
//!    with worker threads for a core, which is what makes the measured
//!    NV-HTM/DudeTM curves collapse at 16 threads in the paper.
//!
//! DudeTM differs in how it obtains the transaction order: it increments a
//! global counter *inside* the hardware transaction, so any two concurrent
//! update transactions conflict on that counter's cache line.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crafty_common::{
    BreakdownRecorder, BreakdownSnapshot, Clock, CompletionPath, PAddr, PersistentTm, TmThread,
    TxAbort, TxnBody, TxnOps, TxnReport,
};
use crafty_htm::{HtmConfig, HtmRuntime, HwTxn};
use crafty_pmem::{MemorySpace, PmemAllocator};
use parking_lot::{Condvar, Mutex};

/// Which copy-on-write system to emulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CowFlavor {
    NvHtm,
    DudeTm,
}

/// Configuration shared by [`NvHtm`] and [`DudeTm`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CowConfig {
    /// Number of worker threads the engine will serve.
    pub max_threads: usize,
    /// Persistent heap size in words for transactional allocation.
    pub heap_words: u64,
    /// Per-thread redo log capacity in words.
    pub redo_log_words: u64,
    /// Hardware-transaction attempts before falling back to the lock.
    pub max_attempts: u32,
}

impl CowConfig {
    /// Small configuration for unit tests.
    pub fn small_for_tests() -> Self {
        CowConfig {
            max_threads: 4,
            heap_words: 1 << 12,
            redo_log_words: 1 << 10,
            max_attempts: 8,
        }
    }

    /// Benchmark-sized configuration.
    pub fn benchmark(max_threads: usize) -> Self {
        CowConfig {
            max_threads,
            heap_words: 1 << 22,
            redo_log_words: 1 << 16,
            max_attempts: 8,
        }
    }
}

impl Default for CowConfig {
    fn default() -> Self {
        CowConfig::benchmark(16)
    }
}

/// A unit of work for the background checkpointer: one committed
/// transaction's written addresses, to be written back in order.
struct CheckpointJob {
    addrs: Vec<PAddr>,
}

struct CheckpointQueue {
    jobs: Mutex<VecDeque<CheckpointJob>>,
    available: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    stop: AtomicBool,
}

impl CheckpointQueue {
    fn new() -> Self {
        CheckpointQueue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    fn submit(&self, job: CheckpointJob) {
        self.submitted.fetch_add(1, Ordering::AcqRel);
        self.jobs.lock().push_back(job);
        self.available.notify_one();
    }

    fn next(&self) -> Option<CheckpointJob> {
        let mut jobs = self.jobs.lock();
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if self.stop.load(Ordering::Acquire) {
                return None;
            }
            self.available
                .wait_for(&mut jobs, std::time::Duration::from_millis(1));
        }
    }

    fn drained(&self) -> bool {
        self.completed.load(Ordering::Acquire) >= self.submitted.load(Ordering::Acquire)
    }
}

/// The shared implementation behind [`NvHtm`] and [`DudeTm`].
pub struct ShadowPagingTm {
    mem: Arc<MemorySpace>,
    htm: Arc<HtmRuntime>,
    recorder: Arc<BreakdownRecorder>,
    allocator: PmemAllocator,
    cfg: CowConfig,
    flavor: CowFlavor,
    clock: Clock,
    /// Volatile word incremented inside hardware transactions (DudeTM).
    dude_counter_addr: PAddr,
    sgl_addr: PAddr,
    /// Per-thread persistent redo log region and its capacity in words.
    redo_logs: Vec<PAddr>,
    /// Timestamp of each thread's transaction that has committed in HTM but
    /// not yet durably written its COMMIT record (0 = none). Used for
    /// NV-HTM's commit-time wait.
    in_flight: Vec<AtomicU64>,
    queue: Arc<CheckpointQueue>,
    checkpointer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ShadowPagingTm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowPagingTm")
            .field("flavor", &self.flavor)
            .finish()
    }
}

/// The NV-HTM baseline.
pub struct NvHtm;

/// The DudeTM baseline.
pub struct DudeTm;

impl NvHtm {
    /// Creates an NV-HTM engine over `mem`.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(mem: Arc<MemorySpace>, cfg: CowConfig) -> ShadowPagingTm {
        ShadowPagingTm::new(mem, cfg, CowFlavor::NvHtm, HtmConfig::skylake())
    }
}

impl DudeTm {
    /// Creates a DudeTM engine over `mem`.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(mem: Arc<MemorySpace>, cfg: CowConfig) -> ShadowPagingTm {
        ShadowPagingTm::new(mem, cfg, CowFlavor::DudeTm, HtmConfig::skylake())
    }
}

impl ShadowPagingTm {
    fn new(mem: Arc<MemorySpace>, cfg: CowConfig, flavor: CowFlavor, htm_cfg: HtmConfig) -> Self {
        let recorder = Arc::new(BreakdownRecorder::new());
        let htm = Arc::new(HtmRuntime::new(
            Arc::clone(&mem),
            htm_cfg,
            Arc::clone(&recorder),
        ));
        let heap = mem.reserve_persistent(cfg.heap_words);
        let redo_logs = (0..cfg.max_threads)
            .map(|_| mem.reserve_persistent(cfg.redo_log_words))
            .collect();
        let dude_counter_addr = mem.reserve_volatile(1);
        let sgl_addr = mem.reserve_volatile(1);
        let queue = Arc::new(CheckpointQueue::new());

        // The background checkpointer: applies committed transactions'
        // writes to persistent memory, one at a time (serialized), using a
        // flush-queue slot of its own (the last one the memory space has).
        let checkpointer = {
            let queue = Arc::clone(&queue);
            let mem = Arc::clone(&mem);
            let recorder = Arc::clone(&recorder);
            let checkpoint_tid = cfg.max_threads.min(mem.config().max_threads - 1);
            std::thread::spawn(move || {
                while let Some(job) = queue.next() {
                    for addr in &job.addrs {
                        mem.clwb(checkpoint_tid, *addr);
                    }
                    mem.drain(checkpoint_tid);
                    recorder.record_drain();
                    queue.completed.fetch_add(1, Ordering::AcqRel);
                    // Hand the core back between jobs. On hosts with fewer
                    // cores than workers the checkpointer otherwise chews
                    // through a deep backlog without ever descheduling,
                    // starving the very workers that feed it (the
                    // multi-thread collapse the tracked benchmark showed on
                    // a single-core container). One yield per job bounds
                    // the checkpointer to one drain per scheduling quantum
                    // under contention while costing nothing when cores
                    // are plentiful and the queue is short.
                    std::thread::yield_now();
                }
            })
        };

        ShadowPagingTm {
            mem,
            htm,
            recorder,
            allocator: PmemAllocator::new(heap, cfg.heap_words),
            cfg,
            flavor,
            clock: Clock::new(),
            dude_counter_addr,
            sgl_addr,
            redo_logs,
            in_flight: (0..cfg.max_threads).map(|_| AtomicU64::new(0)).collect(),
            queue,
            checkpointer: Mutex::new(Some(checkpointer)),
        }
    }

    /// The memory space the engine operates on.
    pub fn mem(&self) -> &Arc<MemorySpace> {
        &self.mem
    }

    fn persist_redo_log(&self, tid: usize, cursor: &mut u64, writes: &[(PAddr, u64)], ts: u64) {
        // Append <addr, value> pairs plus a COMMIT record to the thread's
        // redo log region, wrapping when full (recovery for the baselines
        // is out of scope; the cost of writing and persisting the log is
        // what matters for the comparison).
        let base = self.redo_logs[tid];
        let capacity = self.cfg.redo_log_words;
        let needed = writes.len() as u64 * 2 + 2;
        if *cursor + needed > capacity {
            *cursor = 0;
        }
        let start = *cursor;
        for (i, &(addr, value)) in writes.iter().enumerate() {
            self.mem.write(base.add(start + i as u64 * 2), addr.word());
            self.mem.write(base.add(start + i as u64 * 2 + 1), value);
        }
        for w in (0..needed - 2).step_by(8) {
            self.mem.clwb(tid, base.add(start + w));
        }
        self.mem.drain(tid);
        self.recorder.record_drain();

        if self.flavor == CowFlavor::NvHtm {
            // Commit-time wait: another thread may still be about to
            // durably commit an earlier transaction.
            loop {
                let earlier_in_flight = self.in_flight.iter().enumerate().any(|(other, slot)| {
                    other != tid && {
                        let v = slot.load(Ordering::Acquire);
                        v != 0 && v < ts
                    }
                });
                if !earlier_in_flight {
                    break;
                }
                // Yield, don't spin: the thread being waited on needs a
                // core to finish its durable commit, and on few-core hosts
                // a spinning waiter is exactly what keeps it from getting
                // one (the NV-HTM multi-thread collapse).
                std::thread::yield_now();
            }
        }

        // Durable COMMIT record.
        self.mem.write(base.add(start + needed - 2), u64::MAX);
        self.mem.write(base.add(start + needed - 1), ts);
        self.mem.clwb(tid, base.add(start + needed - 2));
        self.mem.drain(tid);
        self.recorder.record_drain();
        *cursor = start + needed;
    }

    fn complete_transaction(
        &self,
        tid: usize,
        cursor: &mut u64,
        writes: Vec<(PAddr, u64)>,
        ts: u64,
        path: CompletionPath,
        attempts: u32,
    ) -> TxnReport {
        self.recorder.record_persistent_writes(writes.len() as u64);
        if !writes.is_empty() {
            self.persist_redo_log(tid, cursor, &writes, ts);
            let addrs = writes.iter().map(|&(a, _)| a).collect();
            self.queue.submit(CheckpointJob { addrs });
        }
        self.in_flight[tid].store(0, Ordering::Release);
        self.recorder.record_completion(path);
        TxnReport::new(path, attempts)
    }
}

impl Drop for ShadowPagingTm {
    fn drop(&mut self) {
        self.queue.stop.store(true, Ordering::Release);
        self.queue.available.notify_one();
        if let Some(handle) = self.checkpointer.lock().take() {
            let _ = handle.join();
        }
    }
}

struct CowThread<'e> {
    engine: &'e ShadowPagingTm,
    tid: usize,
    log_cursor: u64,
}

/// Collects the transaction's writes while executing them in place inside
/// the hardware transaction (shadow-memory execution).
struct ShadowOps<'a, 'rt> {
    txn: &'a mut HwTxn<'rt>,
    allocator: &'a PmemAllocator,
    mem: &'a MemorySpace,
    writes: Vec<(PAddr, u64)>,
}

impl TxnOps for ShadowOps<'_, '_> {
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
        self.txn.read(addr).map_err(|_| TxAbort::hardware())
    }
    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
        if self.mem.is_persistent(addr) {
            self.writes.push((addr, value));
        }
        self.txn.write(addr, value).map_err(|_| TxAbort::hardware())
    }
    fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort> {
        Ok(self
            .allocator
            .alloc(words)
            .expect("persistent heap exhausted"))
    }
    fn dealloc(&mut self, addr: PAddr, words: u64) -> Result<(), TxAbort> {
        self.allocator.free(addr, words);
        Ok(())
    }
}

struct LockedShadowOps<'a> {
    htm: &'a HtmRuntime,
    allocator: &'a PmemAllocator,
    mem: &'a MemorySpace,
    writes: Vec<(PAddr, u64)>,
}

impl TxnOps for LockedShadowOps<'_> {
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
        Ok(self.htm.nontx_read(addr))
    }
    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
        if self.mem.is_persistent(addr) {
            self.writes.push((addr, value));
        }
        self.htm.nontx_write(addr, value);
        Ok(())
    }
    fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort> {
        Ok(self
            .allocator
            .alloc(words)
            .expect("persistent heap exhausted"))
    }
    fn dealloc(&mut self, addr: PAddr, words: u64) -> Result<(), TxAbort> {
        self.allocator.free(addr, words);
        Ok(())
    }
}

impl TmThread for CowThread<'_> {
    fn execute(&mut self, body: &mut TxnBody<'_>) -> TxnReport {
        let engine = self.engine;
        let mut attempts = 0;
        while attempts < engine.cfg.max_attempts {
            while engine.htm.nontx_read(engine.sgl_addr) != 0 {
                std::thread::yield_now();
            }
            attempts += 1;
            let mut txn = engine.htm.begin(self.tid);
            if !matches!(txn.read(engine.sgl_addr), Ok(0)) {
                continue;
            }
            let mut ops = ShadowOps {
                txn: &mut txn,
                allocator: &engine.allocator,
                mem: &engine.mem,
                writes: Vec::new(),
            };
            if body(&mut ops).is_err() {
                continue;
            }
            let writes = std::mem::take(&mut ops.writes);
            drop(ops);
            // Obtain the transaction's position in the global order.
            let ts = match engine.flavor {
                CowFlavor::DudeTm => {
                    // A global counter incremented inside the hardware
                    // transaction: the source of DudeTM's extra conflicts.
                    let current = match txn.read(engine.dude_counter_addr) {
                        Ok(v) => v,
                        Err(_) => continue,
                    };
                    if txn.write(engine.dude_counter_addr, current + 1).is_err() {
                        continue;
                    }
                    current + 1
                }
                CowFlavor::NvHtm => engine.clock.now().raw(),
            };
            engine.in_flight[self.tid].store(ts, Ordering::Release);
            if txn.commit().is_err() {
                engine.in_flight[self.tid].store(0, Ordering::Release);
                continue;
            }
            if writes.is_empty() {
                engine.in_flight[self.tid].store(0, Ordering::Release);
                engine.recorder.record_completion(CompletionPath::ReadOnly);
                return TxnReport::new(CompletionPath::ReadOnly, attempts);
            }
            return engine.complete_transaction(
                self.tid,
                &mut self.log_cursor,
                writes,
                ts,
                CompletionPath::NonCrafty,
                attempts,
            );
        }

        // Global-lock fallback: acquire the simulated SGL word itself (no
        // host mutex); subscribed hardware transactions abort on
        // acquisition, and the guard releases the word on drop
        // (panic-safe).
        let sgl = engine.htm.nontx_acquire_lock_word(engine.sgl_addr);
        let mut ops = LockedShadowOps {
            htm: &engine.htm,
            allocator: &engine.allocator,
            mem: &engine.mem,
            writes: Vec::new(),
        };
        body(&mut ops).expect("transaction body must succeed under the global lock");
        let writes = ops.writes;
        let ts = engine.clock.now().raw();
        // Release before the (slow) durable completion, as before.
        drop(sgl);
        self.engine.complete_transaction(
            self.tid,
            &mut self.log_cursor,
            writes,
            ts,
            CompletionPath::Sgl,
            attempts,
        )
    }
}

impl PersistentTm for ShadowPagingTm {
    fn name(&self) -> &str {
        match self.flavor {
            CowFlavor::NvHtm => "NV-HTM",
            CowFlavor::DudeTm => "DudeTM",
        }
    }

    fn register_thread(&self, tid: usize) -> Box<dyn TmThread + '_> {
        assert!(tid < self.cfg.max_threads, "thread id out of range");
        Box::new(CowThread {
            engine: self,
            tid,
            log_cursor: 0,
        })
    }

    fn breakdown(&self) -> BreakdownSnapshot {
        self.recorder.snapshot()
    }

    fn quiesce(&self) {
        while !self.queue.drained() {
            std::thread::yield_now();
        }
        let slots = self.mem.config().max_threads.min(self.cfg.max_threads + 1);
        for tid in 0..slots {
            self.mem.drain(tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::PmemConfig;

    fn engines(mem: &Arc<MemorySpace>) -> Vec<ShadowPagingTm> {
        vec![
            NvHtm::new(Arc::clone(mem), CowConfig::small_for_tests()),
            DudeTm::new(Arc::clone(mem), CowConfig::small_for_tests()),
        ]
    }

    #[test]
    fn names_match_paper_legends() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let e = engines(&mem);
        assert_eq!(e[0].name(), "NV-HTM");
        assert_eq!(e[1].name(), "DudeTM");
        assert!(e[0].is_durable());
    }

    #[test]
    fn committed_writes_are_eventually_persisted_by_the_checkpointer() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        for engine in engines(&mem) {
            let cell = mem.reserve_persistent(1);
            let mut t = engine.register_thread(0);
            t.execute(&mut |ops| {
                let v = ops.read(cell)?;
                ops.write(cell, v + 41)?;
                Ok(())
            });
            engine.quiesce();
            assert_eq!(mem.read(cell), 41);
            assert_eq!(
                mem.crash().read(cell),
                41,
                "{}: checkpointed data must be durable",
                engine.name()
            );
        }
    }

    #[test]
    fn concurrent_transfers_preserve_totals() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        for engine in engines(&mem) {
            let engine = Arc::new(engine);
            let accounts = 8u64;
            let base = mem.reserve_persistent(accounts);
            for i in 0..accounts {
                mem.write(base.add(i), 100);
            }
            crossbeam::scope(|s| {
                for tid in 0..3 {
                    let engine = Arc::clone(&engine);
                    s.spawn(move |_| {
                        let mut t = engine.register_thread(tid);
                        let mut rng = crafty_common::SplitMix64::new(tid as u64 + 7);
                        for _ in 0..200 {
                            let from = base.add(rng.next_below(accounts));
                            let to = base.add(rng.next_below(accounts));
                            t.execute(&mut |ops| {
                                let a = ops.read(from)?;
                                ops.write(from, a - 1)?;
                                let b = ops.read(to)?;
                                ops.write(to, b + 1)?;
                                Ok(())
                            });
                        }
                    });
                }
            })
            .expect("threads");
            engine.quiesce();
            let total: u64 = (0..accounts).map(|i| mem.read(base.add(i))).sum();
            assert_eq!(
                total,
                accounts * 100,
                "{} must preserve the total",
                engine.name()
            );
            assert_eq!(engine.breakdown().total_persistent(), 600);
        }
    }

    #[test]
    fn read_only_transactions_are_classified_separately() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = NvHtm::new(Arc::clone(&mem), CowConfig::small_for_tests());
        let cell = mem.reserve_persistent(1);
        let mut t = engine.register_thread(0);
        t.execute(&mut |ops| {
            ops.read(cell)?;
            Ok(())
        });
        assert_eq!(engine.breakdown().completions(CompletionPath::ReadOnly), 1);
    }

    #[test]
    fn dudetm_orders_transactions_with_the_in_htm_counter() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = DudeTm::new(Arc::clone(&mem), CowConfig::small_for_tests());
        let cell = mem.reserve_persistent(1);
        let mut t = engine.register_thread(0);
        for _ in 0..5 {
            t.execute(&mut |ops| {
                let v = ops.read(cell)?;
                ops.write(cell, v + 1)?;
                Ok(())
            });
        }
        engine.quiesce();
        assert_eq!(mem.read(engine.dude_counter_addr), 5);
    }
}
