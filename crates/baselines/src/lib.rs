//! Baseline persistent-transaction engines the paper compares against.
//!
//! All engines implement [`crafty_common::PersistentTm`], so every workload
//! and the whole figure harness run unchanged on them:
//!
//! * [`NonDurable`] — each persistent transaction simply runs in a hardware
//!   transaction (with a global-lock fallback); no logging, no flushing, no
//!   crash-consistency guarantees. This is the normalization baseline of
//!   every figure in the paper.
//! * [`NvHtm`] — a reproduction of NV-HTM (Castro et al., IPDPS 2018):
//!   hardware transactions execute in place against the volatile view
//!   (shadow memory), persist a per-thread redo log after commit, wait for
//!   earlier transactions before durably marking commit, and hand the
//!   persist work to a background checkpointer that applies logs in
//!   timestamp order.
//! * [`DudeTm`] — a reproduction of DudeTM (Liu et al., ASPLOS 2017) as
//!   configured in the NV-HTM artifact: like NV-HTM but the transaction
//!   order comes from a global counter incremented *inside* the hardware
//!   transaction, which makes every pair of concurrent transactions
//!   conflict on that counter.
//! * [`SwUndoLog`] / [`SwRedoLog`] — the textbook software mechanisms of
//!   Figure 1(b) and 1(c), under a global lock: per-write persist ordering
//!   (undo) and per-transaction log persist plus write-back (redo).
//!
//! The engines share the simulated substrates ([`crafty_pmem`],
//! [`crafty_htm`]) with Crafty so that comparisons measure algorithmic
//! differences, not substrate differences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cow;
pub mod nondurable;
pub mod swlog;

pub use cow::{CowConfig, DudeTm, NvHtm, ShadowPagingTm};
pub use nondurable::NonDurable;
pub use swlog::{SwRedoLog, SwUndoLog};
