//! The Non-durable baseline: plain hardware transactions, no persistence.

use std::sync::Arc;

use crafty_common::{
    BreakdownRecorder, BreakdownSnapshot, CompletionPath, PAddr, PersistentTm, TmThread, TxAbort,
    TxnBody, TxnOps, TxnReport,
};
use crafty_htm::{HtmConfig, HtmRuntime, HwTxn};
use crafty_pmem::{MemorySpace, PmemAllocator};

/// Executes each persistent transaction in a hardware transaction with a
/// global-lock fallback, exactly like the `Non-durable` configuration of
/// the NV-HTM artifact: it provides thread atomicity but **no**
/// crash-consistency guarantees (nothing is ever flushed).
pub struct NonDurable {
    mem: Arc<MemorySpace>,
    htm: HtmRuntime,
    recorder: Arc<BreakdownRecorder>,
    allocator: PmemAllocator,
    sgl_addr: PAddr,
    max_attempts: u32,
}

impl std::fmt::Debug for NonDurable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NonDurable").finish()
    }
}

impl NonDurable {
    /// Creates a Non-durable engine over `mem` with a heap of `heap_words`
    /// for transactional allocation.
    pub fn new(mem: Arc<MemorySpace>, heap_words: u64) -> Self {
        NonDurable::with_htm_config(mem, heap_words, HtmConfig::skylake())
    }

    /// Creates the engine with an explicit HTM configuration.
    pub fn with_htm_config(mem: Arc<MemorySpace>, heap_words: u64, htm_cfg: HtmConfig) -> Self {
        let recorder = Arc::new(BreakdownRecorder::new());
        let htm = HtmRuntime::new(Arc::clone(&mem), htm_cfg, Arc::clone(&recorder));
        let heap = mem.reserve_persistent(heap_words);
        let sgl_addr = mem.reserve_volatile(1);
        NonDurable {
            mem,
            htm,
            recorder,
            allocator: PmemAllocator::new(heap, heap_words),
            sgl_addr,
            max_attempts: 8,
        }
    }

    /// The memory space the engine operates on.
    pub fn mem(&self) -> &Arc<MemorySpace> {
        &self.mem
    }
}

struct NonDurableThread<'e> {
    engine: &'e NonDurable,
    tid: usize,
}

struct HtmOps<'a, 'rt> {
    txn: &'a mut HwTxn<'rt>,
    allocator: &'a PmemAllocator,
}

impl TxnOps for HtmOps<'_, '_> {
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
        self.txn.read(addr).map_err(|_| TxAbort::hardware())
    }
    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
        self.txn.write(addr, value).map_err(|_| TxAbort::hardware())
    }
    fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort> {
        Ok(self
            .allocator
            .alloc(words)
            .expect("persistent heap exhausted"))
    }
    fn dealloc(&mut self, addr: PAddr, words: u64) -> Result<(), TxAbort> {
        self.allocator.free(addr, words);
        Ok(())
    }
}

struct LockedOps<'a> {
    htm: &'a HtmRuntime,
    allocator: &'a PmemAllocator,
}

impl TxnOps for LockedOps<'_> {
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
        Ok(self.htm.nontx_read(addr))
    }
    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
        self.htm.nontx_write(addr, value);
        Ok(())
    }
    fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort> {
        Ok(self
            .allocator
            .alloc(words)
            .expect("persistent heap exhausted"))
    }
    fn dealloc(&mut self, addr: PAddr, words: u64) -> Result<(), TxAbort> {
        self.allocator.free(addr, words);
        Ok(())
    }
}

impl TmThread for NonDurableThread<'_> {
    fn execute(&mut self, body: &mut TxnBody<'_>) -> TxnReport {
        let engine = self.engine;
        let mut attempts = 0;
        while attempts < engine.max_attempts {
            while engine.htm.nontx_read(engine.sgl_addr) != 0 {
                std::thread::yield_now();
            }
            attempts += 1;
            let mut txn = engine.htm.begin(self.tid);
            let subscribed = matches!(txn.read(engine.sgl_addr), Ok(0));
            if !subscribed {
                continue;
            }
            let ok = {
                let mut ops = HtmOps {
                    txn: &mut txn,
                    allocator: &engine.allocator,
                };
                body(&mut ops).is_ok()
            };
            if ok && txn.commit().is_ok() {
                engine.recorder.record_completion(CompletionPath::NonCrafty);
                return TxnReport::new(CompletionPath::NonCrafty, attempts);
            }
        }
        // Global-lock fallback: the SGL word in simulated memory *is* the
        // lock — no host mutex. Acquiring it through the versioned-lock
        // machinery aborts every subscribed hardware transaction; the
        // guard releases the word on drop (panic-safe).
        let sgl = engine.htm.nontx_acquire_lock_word(engine.sgl_addr);
        let mut ops = LockedOps {
            htm: &engine.htm,
            allocator: &engine.allocator,
        };
        body(&mut ops).expect("transaction body must succeed under the global lock");
        drop(sgl);
        engine.recorder.record_completion(CompletionPath::Sgl);
        TxnReport::new(CompletionPath::Sgl, attempts)
    }
}

impl PersistentTm for NonDurable {
    fn name(&self) -> &str {
        "Non-durable"
    }
    fn register_thread(&self, tid: usize) -> Box<dyn TmThread + '_> {
        Box::new(NonDurableThread { engine: self, tid })
    }
    fn breakdown(&self) -> BreakdownSnapshot {
        self.recorder.snapshot()
    }
    fn is_durable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::PmemConfig;

    #[test]
    fn increments_are_atomic_across_threads() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = Arc::new(NonDurable::new(Arc::clone(&mem), 1 << 12));
        let cell = mem.reserve_persistent(1);
        crossbeam::scope(|s| {
            for tid in 0..4 {
                let engine = Arc::clone(&engine);
                s.spawn(move |_| {
                    let mut t = engine.register_thread(tid);
                    for _ in 0..250 {
                        t.execute(&mut |ops| {
                            let v = ops.read(cell)?;
                            ops.write(cell, v + 1)?;
                            Ok(())
                        });
                    }
                });
            }
        })
        .expect("threads");
        assert_eq!(mem.read(cell), 1000);
        assert!(!engine.is_durable());
        assert_eq!(engine.breakdown().total_persistent(), 1000);
    }

    #[test]
    fn nothing_is_persisted() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = NonDurable::new(Arc::clone(&mem), 1 << 12);
        let cell = mem.reserve_persistent(1);
        let mut t = engine.register_thread(0);
        t.execute(&mut |ops| {
            ops.write(cell, 99)?;
            Ok(())
        });
        assert_eq!(mem.read(cell), 99);
        assert_eq!(
            mem.crash().read(cell),
            0,
            "non-durable writes must not survive"
        );
    }

    #[test]
    fn oversized_transactions_fall_back_to_the_lock() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = NonDurable::with_htm_config(Arc::clone(&mem), 1 << 12, HtmConfig::tiny());
        let base = mem.reserve_persistent(512);
        let mut t = engine.register_thread(0);
        let report = t.execute(&mut |ops| {
            for i in 0..100 {
                ops.write(base.add(i), i)?;
            }
            Ok(())
        });
        assert_eq!(report.path, CompletionPath::Sgl);
        assert_eq!(mem.read(base.add(99)), 99);
    }

    #[test]
    fn alloc_and_dealloc_are_immediate() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = NonDurable::new(Arc::clone(&mem), 1 << 12);
        let mut t = engine.register_thread(0);
        t.execute(&mut |ops| {
            let a = ops.alloc(4)?;
            ops.write(a, 1)?;
            ops.dealloc(a, 4)?;
            Ok(())
        });
        assert_eq!(engine.allocator.live_allocations(), 0);
    }
}
