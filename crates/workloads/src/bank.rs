//! The bank microbenchmark (Section 7.1).
//!
//! Random transfers between accounts: each persistent transaction performs
//! five transfers (ten persistent writes). Contention is controlled exactly
//! as in the paper: the high- and medium-conflict configurations use 1,024
//! and 4,096 cache-line-aligned accounts respectively, and the no-conflict
//! configuration partitions the accounts among threads.

use std::sync::Arc;

use crafty_common::{PAddr, SplitMix64, TxAbort, TxnOps, WORDS_PER_LINE};
use crafty_pmem::MemorySpace;

use crate::driver::{TxnMix, Workload};

/// The paper's three contention levels for the bank benchmark.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Contention {
    /// 1,024 accounts shared by all threads.
    High,
    /// 4,096 accounts shared by all threads.
    Medium,
    /// Accounts partitioned among threads: no conflicts at all.
    None,
}

impl Contention {
    /// The label the paper uses for this configuration.
    pub fn label(self) -> &'static str {
        match self {
            Contention::High => "high contention",
            Contention::Medium => "medium contention",
            Contention::None => "no contention",
        }
    }
}

/// The bank workload configuration.
#[derive(Clone, Copy, Debug)]
pub struct BankWorkload {
    /// Contention level (controls the number / partitioning of accounts).
    pub contention: Contention,
    /// Number of transfers per transaction (the paper uses 5 → 10 writes).
    pub transfers_per_txn: u64,
    /// Initial balance of every account.
    pub initial_balance: u64,
    /// Maximum number of worker threads (used to partition accounts in the
    /// no-contention configuration).
    pub max_threads: usize,
}

impl BankWorkload {
    /// The paper's configuration at the given contention level.
    pub fn paper(contention: Contention, max_threads: usize) -> Self {
        BankWorkload {
            contention,
            transfers_per_txn: 5,
            initial_balance: 1_000,
            max_threads,
        }
    }

    fn accounts(&self) -> u64 {
        match self.contention {
            Contention::High => 1_024,
            Contention::Medium => 4_096,
            Contention::None => (self.max_threads as u64).max(1) * 256,
        }
    }
}

/// The prepared bank state: one cache line per account.
pub struct BankMix {
    base: PAddr,
    accounts: u64,
    transfers_per_txn: u64,
    initial_balance: u64,
    partitioned: bool,
    max_threads: usize,
}

impl BankMix {
    fn account_addr(&self, index: u64) -> PAddr {
        // Cache-line-aligned accounts, as in the paper's microbenchmark.
        self.base.add(index * WORDS_PER_LINE)
    }

    /// Total balance across all accounts (used by the invariant check).
    pub fn total(&self, mem: &MemorySpace) -> u64 {
        (0..self.accounts)
            .map(|i| mem.read(self.account_addr(i)))
            .sum()
    }

    /// The expected total balance.
    pub fn expected_total(&self) -> u64 {
        self.accounts * self.initial_balance
    }
}

impl Workload for BankWorkload {
    fn name(&self) -> String {
        format!("bank ({})", self.contention.label())
    }

    fn prepare(&self, mem: &Arc<MemorySpace>) -> Box<dyn TxnMix> {
        let accounts = self.accounts();
        let base = mem.reserve_persistent(accounts * WORDS_PER_LINE);
        let mix = BankMix {
            base,
            accounts,
            transfers_per_txn: self.transfers_per_txn,
            initial_balance: self.initial_balance,
            partitioned: self.contention == Contention::None,
            max_threads: self.max_threads.max(1),
        };
        for i in 0..accounts {
            mem.write(mix.account_addr(i), self.initial_balance);
            mem.persist(0, mix.account_addr(i));
        }
        Box::new(mix)
    }
}

impl TxnMix for BankMix {
    fn run_txn(
        &self,
        tid: usize,
        _txn_index: u64,
        rng: &mut SplitMix64,
        ops: &mut dyn TxnOps,
    ) -> Result<(), TxAbort> {
        // Pre-draw the account indices so that re-execution (Crafty's Log
        // and Validate phases) deterministically touches the same accounts.
        let mut picks = Vec::with_capacity(self.transfers_per_txn as usize * 2);
        for _ in 0..self.transfers_per_txn * 2 {
            let index = if self.partitioned {
                let span = self.accounts / self.max_threads as u64;
                let start = span * tid as u64 % self.accounts;
                start + rng.next_below(span.max(1))
            } else {
                rng.next_below(self.accounts)
            };
            picks.push(index);
        }
        for pair in picks.chunks(2) {
            let from = self.account_addr(pair[0]);
            let to = self.account_addr(pair[1]);
            let a = ops.read(from)?;
            ops.write(from, a.wrapping_sub(1))?;
            let b = ops.read(to)?;
            ops.write(to, b.wrapping_add(1))?;
        }
        Ok(())
    }

    fn verify(&self, mem: &MemorySpace) -> Result<(), String> {
        let total = self.total(mem);
        if total == self.expected_total() {
            Ok(())
        } else {
            Err(format!(
                "bank total {total} != expected {}",
                self.expected_total()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{measure, run_mix};
    use crafty_baselines::NonDurable;
    use crafty_common::PersistentTm;
    use crafty_core::{Crafty, CraftyConfig};
    use crafty_pmem::PmemConfig;

    #[test]
    fn contention_levels_set_account_counts() {
        assert_eq!(BankWorkload::paper(Contention::High, 16).accounts(), 1024);
        assert_eq!(BankWorkload::paper(Contention::Medium, 16).accounts(), 4096);
        assert_eq!(BankWorkload::paper(Contention::None, 4).accounts(), 1024);
        assert_eq!(Contention::High.label(), "high contention");
    }

    #[test]
    fn transfers_preserve_the_total_on_crafty() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = Crafty::new(
            Arc::clone(&mem),
            CraftyConfig::small_for_tests().with_max_threads(4),
        );
        let workload = BankWorkload {
            contention: Contention::High,
            transfers_per_txn: 5,
            initial_balance: 100,
            max_threads: 4,
        };
        let mix = workload.prepare(&mem);
        run_mix(&engine, mix.as_ref(), 3, 60, 7);
        mix.verify(&mem).expect("bank invariant");
        let b = engine.breakdown();
        assert!(
            (b.writes_per_txn() - 10.0).abs() < 0.01,
            "10 writes per transaction"
        );
    }

    #[test]
    fn partitioned_configuration_avoids_conflicts() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = NonDurable::new(Arc::clone(&mem), 1 << 12);
        let workload = BankWorkload::paper(Contention::None, 4);
        let mix = workload.prepare(&mem);
        let m = measure(&engine, mix.as_ref(), 4, 50, 3);
        assert_eq!(m.transactions, 200);
        mix.verify(&mem).expect("bank invariant");
        let b = engine.breakdown();
        assert_eq!(
            b.hw(crafty_common::HwTxnOutcome::Conflict),
            0,
            "partitioned accounts must not conflict"
        );
    }

    #[test]
    fn workload_names_match_figure_captions() {
        assert_eq!(
            BankWorkload::paper(Contention::High, 16).name(),
            "bank (high contention)"
        );
    }
}
