//! The engine-generic benchmark driver.
//!
//! A [`Workload`] prepares persistent state and yields a [`TxnMix`]; the
//! driver then runs the mix on any [`PersistentTm`] engine with a given
//! number of threads, measuring wall-clock time exactly as the paper does
//! (throughput = inverse of execution time, Section 7.1).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crafty_common::trace::{self, TraceEventKind};
use crafty_common::{PersistentTm, SplitMix64, TxAbort, TxnOps};
use crafty_pmem::MemorySpace;
use crafty_stats::Measurement;

/// A benchmark's transaction mix over already-prepared persistent state.
pub trait TxnMix: Send + Sync {
    /// Executes the `txn_index`-th transaction of thread `tid` against the
    /// given transactional operations. Must be idempotent: engines may
    /// re-execute the body (see [`crafty_common::api`]).
    fn run_txn(
        &self,
        tid: usize,
        txn_index: u64,
        rng: &mut SplitMix64,
        ops: &mut dyn TxnOps,
    ) -> Result<(), TxAbort>;

    /// Checks a workload invariant against the final memory state (e.g.
    /// conservation of the total bank balance). Returns a description of
    /// the violation if any.
    fn verify(&self, _mem: &MemorySpace) -> Result<(), String> {
        Ok(())
    }

    /// Size of the durability groups the driver should run this mix in.
    /// `1` (the default) executes every transaction immediately durable
    /// via [`TmThread::execute`](crafty_common::TmThread::execute); `G > 1`
    /// runs each consecutive window of `G` transactions under group commit
    /// ([`TmThread::execute_deferred`](crafty_common::TmThread::execute_deferred)
    /// plus one
    /// [`TmThread::flush_deferred`](crafty_common::TmThread::flush_deferred)
    /// barrier per window), so the window shares one drain.
    fn durability_group(&self) -> u64 {
        1
    }
}

/// A benchmark: prepares persistent state and produces its transaction mix.
pub trait Workload {
    /// The benchmark name as used in the paper's figures.
    fn name(&self) -> String;

    /// Reserves and initializes the benchmark's persistent data.
    fn prepare(&self, mem: &Arc<MemorySpace>) -> Box<dyn TxnMix>;
}

/// Runs `txns_per_thread` transactions on each of `threads` worker threads
/// and returns the wall-clock time of the measured region.
///
/// Honors the mix's [`TxnMix::durability_group`]: with a group size above
/// one, each window of that many consecutive transactions runs under group
/// commit (deferred durability, one shared drain barrier per window, plus
/// a final barrier for a trailing partial window).
pub fn run_mix(
    engine: &dyn PersistentTm,
    mix: &dyn TxnMix,
    threads: usize,
    txns_per_thread: u64,
    seed: u64,
) -> Duration {
    let group = mix.durability_group().max(1);
    let start = Instant::now();
    crossbeam::scope(|s| {
        for tid in 0..threads {
            s.spawn(move |_| {
                let mut handle = engine.register_thread(tid);
                let mut rng = SplitMix64::new(seed ^ (tid as u64 + 1).wrapping_mul(0x9E37));
                for i in 0..txns_per_thread {
                    // Engine-agnostic lifecycle bracketing: every engine's
                    // transactions show up as begin/end pairs in a trace
                    // dump, whatever the engine does in between.
                    trace::record(tid, TraceEventKind::TxnBegin, i);
                    if group <= 1 {
                        handle.execute(&mut |ops| mix.run_txn(tid, i, &mut rng, ops));
                    } else {
                        handle.execute_deferred(&mut |ops| mix.run_txn(tid, i, &mut rng, ops));
                        if (i + 1) % group == 0 {
                            handle.flush_deferred();
                        }
                    }
                    trace::record(tid, TraceEventKind::TxnEnd, i);
                }
                if group > 1 {
                    handle.flush_deferred();
                }
            });
        }
    })
    .expect("benchmark worker thread panicked");
    let elapsed = start.elapsed();
    engine.quiesce();
    elapsed
}

/// Runs a workload on an engine and packages the result as a
/// [`Measurement`] for the figure harness.
pub fn measure(
    engine: &dyn PersistentTm,
    mix: &dyn TxnMix,
    threads: usize,
    txns_per_thread: u64,
    seed: u64,
) -> Measurement {
    let elapsed = run_mix(engine, mix, threads, txns_per_thread, seed);
    Measurement::throughput_only(
        engine.name(),
        threads,
        threads as u64 * txns_per_thread,
        elapsed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_baselines::NonDurable;
    use crafty_common::PAddr;
    use crafty_pmem::PmemConfig;

    struct CounterMix {
        cell: PAddr,
    }

    impl TxnMix for CounterMix {
        fn run_txn(
            &self,
            _tid: usize,
            _i: u64,
            _rng: &mut SplitMix64,
            ops: &mut dyn TxnOps,
        ) -> Result<(), TxAbort> {
            let v = ops.read(self.cell)?;
            ops.write(self.cell, v + 1)
        }
        fn verify(&self, mem: &MemorySpace) -> Result<(), String> {
            if mem.read(self.cell) > 0 {
                Ok(())
            } else {
                Err("counter never advanced".to_string())
            }
        }
    }

    #[test]
    fn driver_runs_the_requested_number_of_transactions() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = NonDurable::new(Arc::clone(&mem), 1 << 12);
        let cell = mem.reserve_persistent(1);
        let mix = CounterMix { cell };
        let m = measure(&engine, &mix, 4, 100, 1);
        assert_eq!(m.transactions, 400);
        assert_eq!(mem.read(cell), 400);
        assert_eq!(m.engine, "Non-durable");
        assert!(mix.verify(&mem).is_ok());
        assert!(m.throughput() > 0.0);
    }
}
