//! YCSB-style key-value workloads over the [`crafty_kv`] store.
//!
//! Persistent-memory systems are judged on KV-store traffic with skewed
//! key popularity; this module provides the standard read-heavy YCSB core
//! mixes over [`crafty_kv::ShardedKv`], pluggable into the existing
//! [`Workload`]/[`TxnMix`] driver so one configuration runs unchanged on
//! every engine:
//!
//! | mix  | operations                          | YCSB analogue        |
//! |------|-------------------------------------|----------------------|
//! | A    | 50% read, 50% update                | workload A           |
//! | B    | 95% read, 5% update                 | workload B           |
//! | C    | 100% read                           | workload C           |
//! | E    | 95% short scan, 5% insert           | workload E           |
//! | A+gc | A under 8-txn group commit          | batched ingestion    |
//!
//! The `A+gc` row is the batched-update mode: identical traffic to A, but
//! every [`YCSB_BATCH_GROUP`] consecutive transactions share one drain
//! barrier through the engine's group-commit path
//! (`TmThread::execute_deferred` / `flush_deferred`), so the A → A+gc gap
//! directly measures the per-transaction durability-ack cost.
//!
//! Keys are drawn zipfian ([`crafty_common::Zipfian`], θ = 0.99) and
//! scattered across the key space by hashing the rank (YCSB's "scrambled
//! zipfian"), so hot keys land on arbitrary shards. Every transaction
//! derives its randomness from `(seed, tid, txn_index)` — re-executions of
//! the same body (Crafty's Log and Validate phases both run it) draw the
//! same keys, keeping bodies idempotent by construction.

use std::sync::Arc;

use crafty_common::{mix64, SplitMix64, TxAbort, TxnOps, Zipfian, YCSB_THETA};
use crafty_kv::{DirectOps, KvConfig, ShardedKv};
use crafty_pmem::MemorySpace;

use crate::driver::{TxnMix, Workload};

/// Transactions per durability group in the batched-update mix
/// ([`YcsbMix::BatchedA`]): how many consecutive store transactions share
/// one drain barrier.
pub const YCSB_BATCH_GROUP: u64 = 8;

/// Which YCSB core mix to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum YcsbMix {
    /// 50% reads, 50% updates (update heavy).
    A,
    /// 95% reads, 5% updates (read heavy).
    B,
    /// 100% reads (read only).
    C,
    /// 95% short scans, 5% inserts (scan heavy).
    E,
    /// The batched-update mode: workload A's 50/50 blend executed under
    /// **group commit** — every [`YCSB_BATCH_GROUP`] consecutive
    /// transactions share one drain barrier
    /// ([`crate::TxnMix::durability_group`]), the pattern of a store fed
    /// by a message queue or replication window that acks durability per
    /// batch. Comparing this row against mix A isolates the group-commit
    /// saving on otherwise identical traffic.
    BatchedA,
}

impl YcsbMix {
    /// Every mix, in evaluation order.
    pub const ALL: [YcsbMix; 5] = [
        YcsbMix::A,
        YcsbMix::B,
        YcsbMix::C,
        YcsbMix::E,
        YcsbMix::BatchedA,
    ];

    /// Short mix label (`"A"`, `"B"`, ...; `"A+gc"` for the batched mode).
    pub fn label(self) -> &'static str {
        match self {
            YcsbMix::A => "A",
            YcsbMix::B => "B",
            YcsbMix::C => "C",
            YcsbMix::E => "E",
            YcsbMix::BatchedA => "A+gc",
        }
    }

    /// Human-readable description of the operation blend.
    pub fn blend(self) -> &'static str {
        match self {
            YcsbMix::A => "50% read / 50% update",
            YcsbMix::B => "95% read / 5% update",
            YcsbMix::C => "100% read",
            YcsbMix::E => "95% scan / 5% insert",
            YcsbMix::BatchedA => "50% read / 50% update, 8-txn group commit",
        }
    }

    /// Durability-group size the driver runs this mix in (1 = every
    /// transaction immediately durable).
    pub fn durability_group(self) -> u64 {
        match self {
            YcsbMix::BatchedA => YCSB_BATCH_GROUP,
            _ => 1,
        }
    }
}

/// The YCSB workload configuration.
#[derive(Clone, Copy, Debug)]
pub struct YcsbWorkload {
    /// Operation mix.
    pub mix: YcsbMix,
    /// Records loaded before measurement; reads draw from this population.
    pub records: u64,
    /// Zipfian skew (`0 < theta < 1`; YCSB's default is 0.99).
    pub theta: f64,
    /// Store shard count.
    pub shards: usize,
    /// Key-selection seed (fixed across engines so they see the same
    /// traffic).
    pub seed: u64,
}

impl YcsbWorkload {
    /// The benchmark-scale configuration for a mix.
    pub fn paper(mix: YcsbMix) -> Self {
        YcsbWorkload {
            mix,
            records: 20_000,
            theta: YCSB_THETA,
            shards: 16,
            seed: 0x5C5B,
        }
    }

    /// A small configuration for unit tests.
    pub fn small_for_tests(mix: YcsbMix) -> Self {
        YcsbWorkload {
            mix,
            records: 400,
            theta: YCSB_THETA,
            shards: 4,
            seed: 7,
        }
    }

    /// Scrambles a zipfian rank into a key: hot ranks map to arbitrary
    /// points of the key space (collisions merge ranks, as in YCSB's
    /// scrambled zipfian; the key domain is 4× the record count to keep
    /// them rare).
    fn scramble(&self, rank: u64) -> u64 {
        mix64(rank.wrapping_add(self.seed)) % (self.records * 4)
    }
}

/// The prepared store plus the sampling state shared by worker threads.
pub struct YcsbKvMix {
    kv: ShardedKv,
    workload: YcsbWorkload,
    zipf: Zipfian,
}

impl YcsbKvMix {
    /// The store handle (tests and diagnostics).
    pub fn kv(&self) -> &ShardedKv {
        &self.kv
    }
}

impl YcsbWorkload {
    /// [`Workload::prepare`] with the concrete mix type (tests and tools
    /// that need the [`ShardedKv`] handle use this).
    pub fn prepare_kv(&self, mem: &Arc<MemorySpace>) -> YcsbKvMix {
        let kv = ShardedKv::create(mem, &KvConfig::benchmark(self.records, self.shards));
        // Setup-time prefill, then an explicit persist: the measured region
        // starts from a durable, loaded store.
        let mut ops = DirectOps::new(mem);
        for rank in 0..self.records {
            let key = self.scramble(rank);
            kv.put(&mut ops, key, mix64(key))
                .expect("direct prefill cannot abort");
        }
        kv.persist_all(mem, 0);
        YcsbKvMix {
            kv,
            workload: *self,
            zipf: Zipfian::new(self.records, self.theta),
        }
    }
}

impl Workload for YcsbWorkload {
    fn name(&self) -> String {
        format!("YCSB-{} ({})", self.mix.label(), self.mix.blend())
    }

    fn prepare(&self, mem: &Arc<MemorySpace>) -> Box<dyn TxnMix> {
        Box::new(self.prepare_kv(mem))
    }
}

impl TxnMix for YcsbKvMix {
    fn run_txn(
        &self,
        tid: usize,
        txn_index: u64,
        _rng: &mut SplitMix64,
        ops: &mut dyn TxnOps,
    ) -> Result<(), TxAbort> {
        let w = &self.workload;
        // Per-transaction stream: a pure function of (seed, tid, index), so
        // engine-driven re-executions of this body replay identically.
        let mut rng =
            SplitMix64::new(w.seed ^ mix64(((tid as u64) << 40) | txn_index.wrapping_add(1)));
        let dice = rng.next_below(100);
        let key = w.scramble(self.zipf.sample(&mut rng));
        match w.mix {
            YcsbMix::A | YcsbMix::B | YcsbMix::BatchedA => {
                let read_pct = if w.mix == YcsbMix::B { 95 } else { 50 };
                if dice < read_pct {
                    self.kv.get(ops, key)?;
                } else {
                    self.kv.put(ops, key, mix64(key ^ txn_index))?;
                }
            }
            YcsbMix::C => {
                self.kv.get(ops, key)?;
            }
            YcsbMix::E => {
                if dice < 95 {
                    let limit = 1 + rng.next_below(8);
                    self.kv.scan(ops, key, limit)?;
                } else {
                    // Fresh keys above the scrambled domain, partitioned by
                    // thread so inserts never collide across threads.
                    let fresh = w.records * 4 + (tid as u64) * (1 << 32) + txn_index;
                    self.kv.put(ops, fresh, mix64(fresh))?;
                }
            }
        }
        Ok(())
    }

    fn verify(&self, mem: &MemorySpace) -> Result<(), String> {
        self.kv.check_integrity(mem)
    }

    fn durability_group(&self) -> u64 {
        self.workload.mix.durability_group()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_mix;
    use crate::engines::{build_engine, EngineKind};
    use crafty_pmem::PmemConfig;

    fn space() -> Arc<MemorySpace> {
        Arc::new(MemorySpace::new(
            PmemConfig::small_for_tests().with_max_threads(8),
        ))
    }

    #[test]
    fn every_mix_runs_on_every_engine() {
        for mix in YcsbMix::ALL {
            for kind in [
                EngineKind::NonDurable,
                EngineKind::DudeTm,
                EngineKind::NvHtm,
                EngineKind::Crafty,
            ] {
                let mem = space();
                let engine = build_engine(kind, &mem, 2);
                let workload = YcsbWorkload::small_for_tests(mix);
                let prepared = workload.prepare(&mem);
                run_mix(engine.as_ref(), prepared.as_ref(), 2, 60, 3);
                engine.quiesce();
                assert_eq!(
                    engine.breakdown().total_persistent(),
                    120,
                    "{} on {:?}",
                    workload.name(),
                    kind
                );
                assert!(
                    prepared.verify(&mem).is_ok(),
                    "{} on {:?}: {:?}",
                    workload.name(),
                    kind,
                    prepared.verify(&mem)
                );
            }
        }
    }

    #[test]
    fn prefill_loads_the_configured_population() {
        let mem = space();
        let workload = YcsbWorkload::small_for_tests(YcsbMix::C);
        let mix = workload.prepare_kv(&mem);
        let len = mix.kv().stats(&mem).len;
        // Collisions in the scrambled key space merge a few ranks, so the
        // live count is close to (and never above) the record count.
        assert!(len <= workload.records);
        assert!(
            len > workload.records * 8 / 10,
            "prefill only loaded {len} of {} records",
            workload.records
        );
        assert!(mix.verify(&mem).is_ok());
    }

    #[test]
    fn workload_names_and_blends_are_stable() {
        assert_eq!(
            YcsbWorkload::paper(YcsbMix::A).name(),
            "YCSB-A (50% read / 50% update)"
        );
        assert_eq!(YcsbMix::ALL.len(), 5);
        assert_eq!(YcsbMix::E.blend(), "95% scan / 5% insert");
        assert_eq!(YcsbMix::BatchedA.label(), "A+gc");
        assert_eq!(YcsbMix::BatchedA.durability_group(), YCSB_BATCH_GROUP);
        assert_eq!(YcsbMix::A.durability_group(), 1);
    }

    #[test]
    fn identical_configs_prepare_identical_stores() {
        // Cross-engine comparability: two prepares with the same config
        // must load exactly the same key-value population.
        let mem_a = space();
        let mem_b = space();
        let w = YcsbWorkload::small_for_tests(YcsbMix::A);
        let a = w.prepare_kv(&mem_a);
        let b = w.prepare_kv(&mem_b);
        let mut pairs_a = a.kv().collect_pairs(&mem_a);
        let mut pairs_b = b.kv().collect_pairs(&mem_b);
        pairs_a.sort_unstable();
        pairs_b.sort_unstable();
        assert_eq!(pairs_a, pairs_b);
        assert!(!pairs_a.is_empty());
    }

    #[test]
    fn e_mix_inserts_grow_the_store() {
        let mem = space();
        let engine = build_engine(EngineKind::NonDurable, &mem, 1);
        let w = YcsbWorkload::small_for_tests(YcsbMix::E);
        let mix = w.prepare_kv(&mem);
        let before = mix.kv().stats(&mem).len;
        run_mix(&*engine, &mix, 1, 400, 5);
        engine.quiesce();
        let after = mix.kv().stats(&mem).len;
        assert!(
            after > before,
            "5% inserts must add keys: {before} -> {after}"
        );
        assert!(mix.verify(&mem).is_ok(), "{:?}", mix.verify(&mem));
    }
}
