//! STAMP-like transactional kernels (Section 7.1, Figure 8).
//!
//! The paper evaluates on the STAMP suite, treating every transaction as a
//! persistent transaction and all shared accesses inside transactions as
//! persistent accesses. Porting the full C benchmarks is out of scope for
//! this reproduction; instead each kernel below reproduces the
//! characteristics that drive the figures — average writes per transaction
//! (Table 1), read/write mix, transaction length, and contention profile —
//! on the same persistent-heap API:
//!
//! | kernel     | writes/txn target | contention                |
//! |------------|-------------------|---------------------------|
//! | kmeans     | ≈25               | high (few clusters) / low |
//! | vacation   | ≈8 / ≈5.5         | high / low                |
//! | labyrinth  | ≈177              | low, huge transactions    |
//! | ssca2      | ≈2                | very low                  |
//! | genome     | ≈2                | low–moderate              |
//! | intruder   | ≈1.8              | high (shared queue)       |
//!
//! `ARCHITECTURE.md` records this substitution.

use std::sync::Arc;

use crafty_common::{PAddr, SplitMix64, TxAbort, TxnOps, WORDS_PER_LINE};
use crafty_pmem::MemorySpace;

use crate::driver::{TxnMix, Workload};

/// Which STAMP-like kernel to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StampKernel {
    /// K-means clustering with shared cluster centroids (high contention).
    KmeansHigh,
    /// K-means with many centroids (low contention).
    KmeansLow,
    /// Travel reservations touching several tables (high contention).
    VacationHigh,
    /// Travel reservations over a larger database (low contention).
    VacationLow,
    /// Maze routing: very long transactions claiming a path of grid cells.
    Labyrinth,
    /// Graph kernel: two-write edge insertions, negligible contention.
    Ssca2,
    /// Gene-segment deduplication into a hash table.
    Genome,
    /// Network-packet reassembly around a shared work queue.
    Intruder,
}

impl StampKernel {
    /// Every kernel, in the order of Figure 8.
    pub const ALL: [StampKernel; 8] = [
        StampKernel::KmeansHigh,
        StampKernel::KmeansLow,
        StampKernel::VacationHigh,
        StampKernel::VacationLow,
        StampKernel::Labyrinth,
        StampKernel::Ssca2,
        StampKernel::Genome,
        StampKernel::Intruder,
    ];

    /// The figure caption for this kernel.
    pub fn label(self) -> &'static str {
        match self {
            StampKernel::KmeansHigh => "kmeans (high contention)",
            StampKernel::KmeansLow => "kmeans (low contention)",
            StampKernel::VacationHigh => "vacation (high contention)",
            StampKernel::VacationLow => "vacation (low contention)",
            StampKernel::Labyrinth => "labyrinth",
            StampKernel::Ssca2 => "ssca2",
            StampKernel::Genome => "genome",
            StampKernel::Intruder => "intruder",
        }
    }

    /// The average writes per transaction reported in Table 1, used by the
    /// harness to sanity-check the kernels.
    pub fn paper_writes_per_txn(self) -> f64 {
        match self {
            StampKernel::KmeansHigh | StampKernel::KmeansLow => 25.0,
            StampKernel::VacationHigh => 8.0,
            StampKernel::VacationLow => 5.5,
            StampKernel::Labyrinth => 177.0,
            StampKernel::Ssca2 => 2.0,
            StampKernel::Genome => 2.1,
            StampKernel::Intruder => 1.8,
        }
    }
}

/// A STAMP-like workload.
#[derive(Clone, Copy, Debug)]
pub struct StampWorkload {
    /// The kernel to run.
    pub kernel: StampKernel,
}

impl StampWorkload {
    /// Creates the workload for the given kernel.
    pub fn new(kernel: StampKernel) -> Self {
        StampWorkload { kernel }
    }
}

/// Prepared state for all kernels: a shared region whose interpretation
/// depends on the kernel, plus the shape parameters.
pub struct StampMix {
    kernel: StampKernel,
    /// Shared "hot" region (centroids, tables, queue heads...).
    hot: PAddr,
    hot_slots: u64,
    /// Large "cold" region (points, grid, hash buckets...).
    cold: PAddr,
    cold_slots: u64,
}

impl Workload for StampWorkload {
    fn name(&self) -> String {
        self.kernel.label().to_string()
    }

    fn prepare(&self, mem: &Arc<MemorySpace>) -> Box<dyn TxnMix> {
        let (hot_slots, cold_slots) = match self.kernel {
            StampKernel::KmeansHigh => (8 * 26, 1 << 14),
            StampKernel::KmeansLow => (64 * 26, 1 << 14),
            StampKernel::VacationHigh => (256, 1 << 14),
            StampKernel::VacationLow => (4096, 1 << 16),
            StampKernel::Labyrinth => (64, 1 << 16),
            StampKernel::Ssca2 => (64, 1 << 16),
            StampKernel::Genome => (64, 1 << 15),
            StampKernel::Intruder => (16, 1 << 14),
        };
        let hot = mem.reserve_persistent(hot_slots * WORDS_PER_LINE);
        let cold = mem.reserve_persistent(cold_slots);
        Box::new(StampMix {
            kernel: self.kernel,
            hot,
            hot_slots,
            cold,
            cold_slots,
        })
    }
}

impl StampMix {
    fn hot_addr(&self, slot: u64) -> PAddr {
        self.hot.add((slot % self.hot_slots) * WORDS_PER_LINE)
    }

    fn cold_addr(&self, slot: u64) -> PAddr {
        self.cold.add(slot % self.cold_slots)
    }

    /// Read-modify-write of a hot slot.
    fn bump_hot(&self, ops: &mut dyn TxnOps, slot: u64, delta: u64) -> Result<(), TxAbort> {
        let addr = self.hot_addr(slot);
        let v = ops.read(addr)?;
        ops.write(addr, v.wrapping_add(delta))
    }

    fn kmeans(
        &self,
        clusters: u64,
        rng: &mut SplitMix64,
        ops: &mut dyn TxnOps,
    ) -> Result<(), TxAbort> {
        // Pick a point (cold read-mostly), find the "nearest" centroid by
        // scanning a few centroids (reads), then update that centroid's 24
        // accumulator dimensions plus its membership count (25 writes).
        let dims = 24u64;
        let point = rng.next_below(self.cold_slots);
        let mut acc = 0u64;
        for d in 0..4 {
            acc ^= ops.read(self.cold_addr(point + d))?;
        }
        let cluster = (acc ^ rng.next_u64()) % clusters;
        let base_slot = cluster * (dims + 2);
        for d in 0..dims {
            self.bump_hot(ops, base_slot + d, (point + d) & 0xFF)?;
        }
        self.bump_hot(ops, base_slot + dims, 1)
    }

    fn vacation(
        &self,
        tables: u64,
        writes: u64,
        rng: &mut SplitMix64,
        ops: &mut dyn TxnOps,
    ) -> Result<(), TxAbort> {
        // A reservation touches a customer record and a few resource
        // records spread over the "tables" (hot region), reading
        // availability before decrementing it.
        for _ in 0..writes {
            let record = rng.next_below(tables);
            // A couple of reads per write: price lookups along the way.
            let _ = ops.read(self.cold_addr(rng.next_below(self.cold_slots)))?;
            self.bump_hot(ops, record, 1)?;
        }
        Ok(())
    }

    fn labyrinth(&self, rng: &mut SplitMix64, ops: &mut dyn TxnOps) -> Result<(), TxAbort> {
        // Claim a long path of grid cells: ~177 writes spread over the cold
        // region, with a read of each cell first (collision check).
        let len = 170 + rng.next_below(16);
        let start = rng.next_below(self.cold_slots);
        let stride = 1 + rng.next_below(7);
        for i in 0..len {
            let addr = self.cold_addr(start + i * stride);
            let v = ops.read(addr)?;
            ops.write(addr, v.wrapping_add(1))?;
        }
        Ok(())
    }

    fn ssca2(&self, rng: &mut SplitMix64, ops: &mut dyn TxnOps) -> Result<(), TxAbort> {
        // Insert one edge: append to a node's adjacency cursor — two writes
        // to essentially random (conflict-free) locations.
        let node = rng.next_below(self.cold_slots / 2);
        let cursor = ops.read(self.cold_addr(node))?;
        ops.write(self.cold_addr(node), cursor + 1)?;
        ops.write(
            self.cold_addr(self.cold_slots / 2 + node + cursor % 8),
            rng.next_u64(),
        )
    }

    fn genome(&self, rng: &mut SplitMix64, ops: &mut dyn TxnOps) -> Result<(), TxAbort> {
        // Deduplicate a gene segment into a hash table: probe a few buckets
        // (reads), then insert the segment and bump the chain length.
        let segment = rng.next_u64();
        let bucket = segment % (self.cold_slots / 2);
        let mut probe = bucket;
        for _ in 0..3 {
            let occupied = ops.read(self.cold_addr(probe))?;
            if occupied == 0 {
                break;
            }
            probe = (probe + 1) % (self.cold_slots / 2);
        }
        ops.write(self.cold_addr(probe), segment | 1)?;
        self.bump_hot(ops, bucket % self.hot_slots, 1)
    }

    fn intruder(&self, rng: &mut SplitMix64, ops: &mut dyn TxnOps) -> Result<(), TxAbort> {
        // Packet reassembly: take a work item from a shared queue head
        // (hot, contended) and, four times out of five, store a fragment.
        let queue = rng.next_below(self.hot_slots);
        self.bump_hot(ops, queue, 1)?;
        if rng.next_below(5) < 4 {
            let slot = rng.next_below(self.cold_slots);
            ops.write(self.cold_addr(slot), rng.next_u64())?;
        }
        Ok(())
    }
}

impl TxnMix for StampMix {
    fn run_txn(
        &self,
        _tid: usize,
        _txn_index: u64,
        rng: &mut SplitMix64,
        ops: &mut dyn TxnOps,
    ) -> Result<(), TxAbort> {
        match self.kernel {
            StampKernel::KmeansHigh => self.kmeans(8, rng, ops),
            StampKernel::KmeansLow => self.kmeans(64, rng, ops),
            StampKernel::VacationHigh => self.vacation(self.hot_slots, 8, rng, ops),
            StampKernel::VacationLow => {
                // Alternate 5 and 6 writes to land at ≈5.5 on average.
                let writes = 5 + (rng.next_below(2));
                self.vacation(self.hot_slots, writes, rng, ops)
            }
            StampKernel::Labyrinth => self.labyrinth(rng, ops),
            StampKernel::Ssca2 => self.ssca2(rng, ops),
            StampKernel::Genome => self.genome(rng, ops),
            StampKernel::Intruder => self.intruder(rng, ops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_mix;
    use crafty_common::PersistentTm;
    use crafty_core::{Crafty, CraftyConfig};
    use crafty_pmem::PmemConfig;

    #[test]
    fn labels_are_unique_and_match_figure_captions() {
        let mut labels: Vec<_> = StampKernel::ALL.iter().map(|k| k.label()).collect();
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
        assert_eq!(StampWorkload::new(StampKernel::Genome).name(), "genome");
    }

    #[test]
    fn write_counts_track_table_1() {
        // SW undo logging counts every persistent write it performs, which
        // is exactly the Table 1 metric.
        let mem = Arc::new(MemorySpace::new(
            PmemConfig::benchmark().with_latency(crafty_pmem::LatencyModel::instant()),
        ));
        for kernel in [
            StampKernel::KmeansHigh,
            StampKernel::VacationHigh,
            StampKernel::VacationLow,
            StampKernel::Ssca2,
            StampKernel::Intruder,
        ] {
            let engine = crafty_baselines::SwUndoLog::new(Arc::clone(&mem), 1 << 14);
            let mix = StampWorkload::new(kernel).prepare(&mem);
            run_mix(&engine, mix.as_ref(), 1, 200, 5);
            let measured = engine.breakdown().writes_per_txn();
            let expected = kernel.paper_writes_per_txn();
            assert!(
                (measured - expected).abs() / expected < 0.35,
                "{}: measured {measured:.1} writes/txn, paper reports {expected:.1}",
                kernel.label()
            );
        }
    }

    #[test]
    fn labyrinth_transactions_are_very_large() {
        let mem = Arc::new(MemorySpace::new(PmemConfig {
            persistent_words: 1 << 18,
            ..PmemConfig::small_for_tests()
        }));
        let engine = crafty_baselines::SwUndoLog::new(Arc::clone(&mem), 1 << 12);
        let mix = StampWorkload::new(StampKernel::Labyrinth).prepare(&mem);
        run_mix(&engine, mix.as_ref(), 1, 20, 5);
        assert!(engine.breakdown().writes_per_txn() > 150.0);
    }

    #[test]
    fn kernels_run_on_crafty_without_losing_transactions() {
        let mem = Arc::new(MemorySpace::new(PmemConfig {
            persistent_words: 1 << 18,
            ..PmemConfig::small_for_tests()
        }));
        let engine = Crafty::new(
            Arc::clone(&mem),
            CraftyConfig::small_for_tests().with_max_threads(2),
        );
        let mix = StampWorkload::new(StampKernel::Ssca2).prepare(&mem);
        run_mix(&engine, mix.as_ref(), 2, 100, 9);
        assert_eq!(engine.breakdown().total_persistent(), 200);
    }
}
