//! The B+-tree microbenchmark (Section 7.1).
//!
//! A B+-tree stored entirely in the persistent heap, operated on through
//! [`TxnOps`] so that every node access is transactional. The benchmark has
//! the paper's two variants: insert-only, and a mix of lookups, inserts,
//! and removals. Keys and values are 64-bit words.
//!
//! The tree is intentionally simple (fixed fanout, leaf-level deletion
//! without rebalancing) — the benchmark stresses the persistent-transaction
//! engine, not the index structure.

use std::sync::Arc;

use crafty_common::{PAddr, SplitMix64, TxAbort, TxnOps};
use crafty_pmem::MemorySpace;

use crate::driver::{TxnMix, Workload};

/// Maximum keys per node (fanout − 1). Chosen so that a node (metadata,
/// keys, and children/values) fits in a handful of cache lines, giving
/// transaction footprints close to the paper's (≈13–14 writes per insert
/// once splits are amortized).
const MAX_KEYS: u64 = 8;

/// Node layout (in words):
/// `[0] is_leaf`, `[1] nkeys`, `[2..2+MAX_KEYS] keys`,
/// `[10..10+MAX_KEYS+1] children` (internal) or `values` (leaf; slot
/// `MAX_KEYS` unused).
const NODE_WORDS: u64 = 2 + MAX_KEYS + MAX_KEYS + 1;

const OFF_IS_LEAF: u64 = 0;
const OFF_NKEYS: u64 = 1;
const OFF_KEYS: u64 = 2;
const OFF_CHILDREN: u64 = 2 + MAX_KEYS;

/// Which operation mix to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BtreeVariant {
    /// Insert operations only (Figure 7(a)).
    InsertOnly,
    /// Lookup, insert, and remove operations (Figure 7(b)): 50% lookups,
    /// 30% inserts, 20% removals.
    Mixed,
}

/// The B+-tree workload configuration.
#[derive(Clone, Copy, Debug)]
pub struct BtreeWorkload {
    /// Operation mix.
    pub variant: BtreeVariant,
    /// Keys are drawn uniformly from `[0, key_space)`.
    pub key_space: u64,
    /// Number of keys inserted before the measured region starts.
    pub prefill: u64,
}

impl BtreeWorkload {
    /// The paper-style configuration for the given variant.
    pub fn paper(variant: BtreeVariant) -> Self {
        BtreeWorkload {
            variant,
            key_space: 1 << 20,
            prefill: 512,
        }
    }
}

/// The prepared tree: a persistent root pointer plus the operation mix.
pub struct BtreeMix {
    /// Persistent word holding the root node's address (0 = empty tree).
    root_ptr: PAddr,
    variant: BtreeVariant,
    key_space: u64,
}

impl Workload for BtreeWorkload {
    fn name(&self) -> String {
        match self.variant {
            BtreeVariant::InsertOnly => "B+ tree (insert only)".to_string(),
            BtreeVariant::Mixed => "B+ tree (mixed operations)".to_string(),
        }
    }

    fn prepare(&self, mem: &Arc<MemorySpace>) -> Box<dyn TxnMix> {
        let root_ptr = mem.reserve_persistent(1);
        mem.persist(0, root_ptr);
        Box::new(BtreeMix {
            root_ptr,
            variant: self.variant,
            key_space: self.key_space,
        })
    }
}

impl BtreeMix {
    /// Number of keys the benchmark pre-fills before measurement.
    pub fn prefill(
        &self,
        mem: &Arc<MemorySpace>,
        engine: &dyn crafty_common::PersistentTm,
        keys: u64,
    ) {
        let mut handle = engine.register_thread(0);
        let mut rng = SplitMix64::new(0xB7EE);
        for _ in 0..keys {
            let key = rng.next_below(self.key_space);
            handle.execute(&mut |ops| self.insert(ops, key, key ^ 0xABCD).map(|_| ()));
        }
        let _ = mem;
    }

    fn node_read(&self, ops: &mut dyn TxnOps, node: PAddr, off: u64) -> Result<u64, TxAbort> {
        ops.read(node.add(off))
    }

    fn node_write(
        &self,
        ops: &mut dyn TxnOps,
        node: PAddr,
        off: u64,
        value: u64,
    ) -> Result<(), TxAbort> {
        ops.write(node.add(off), value)
    }

    fn new_node(&self, ops: &mut dyn TxnOps, is_leaf: bool) -> Result<PAddr, TxAbort> {
        let node = ops.alloc(NODE_WORDS)?;
        self.node_write(ops, node, OFF_IS_LEAF, u64::from(is_leaf))?;
        self.node_write(ops, node, OFF_NKEYS, 0)?;
        Ok(node)
    }

    /// Looks up `key`; returns its value if present.
    pub fn lookup(&self, ops: &mut dyn TxnOps, key: u64) -> Result<Option<u64>, TxAbort> {
        let root = ops.read(self.root_ptr)?;
        if root == 0 {
            return Ok(None);
        }
        let mut node = PAddr::new(root);
        loop {
            let is_leaf = self.node_read(ops, node, OFF_IS_LEAF)? == 1;
            let nkeys = self.node_read(ops, node, OFF_NKEYS)?;
            let mut idx = 0;
            while idx < nkeys && self.node_read(ops, node, OFF_KEYS + idx)? < key {
                idx += 1;
            }
            if is_leaf {
                if idx < nkeys && self.node_read(ops, node, OFF_KEYS + idx)? == key {
                    return Ok(Some(self.node_read(ops, node, OFF_CHILDREN + idx)?));
                }
                return Ok(None);
            }
            let go_right = idx < nkeys && self.node_read(ops, node, OFF_KEYS + idx)? <= key;
            let child_idx = if go_right { idx + 1 } else { idx };
            node = PAddr::new(self.node_read(ops, node, OFF_CHILDREN + child_idx)?);
        }
    }

    /// Inserts `key → value`; returns true if the key was new.
    pub fn insert(&self, ops: &mut dyn TxnOps, key: u64, value: u64) -> Result<bool, TxAbort> {
        let root = ops.read(self.root_ptr)?;
        if root == 0 {
            let leaf = self.new_node(ops, true)?;
            self.node_write(ops, leaf, OFF_KEYS, key)?;
            self.node_write(ops, leaf, OFF_CHILDREN, value)?;
            self.node_write(ops, leaf, OFF_NKEYS, 1)?;
            ops.write(self.root_ptr, leaf.word())?;
            return Ok(true);
        }
        let root = PAddr::new(root);
        if self.node_read(ops, root, OFF_NKEYS)? == MAX_KEYS {
            // Split the root pre-emptively (top-down splitting).
            let new_root = self.new_node(ops, false)?;
            self.node_write(ops, new_root, OFF_CHILDREN, root.word())?;
            self.split_child(ops, new_root, 0, root)?;
            ops.write(self.root_ptr, new_root.word())?;
            return self.insert_nonfull(ops, new_root, key, value);
        }
        self.insert_nonfull(ops, root, key, value)
    }

    fn split_child(
        &self,
        ops: &mut dyn TxnOps,
        parent: PAddr,
        child_index: u64,
        child: PAddr,
    ) -> Result<(), TxAbort> {
        let is_leaf = self.node_read(ops, child, OFF_IS_LEAF)? == 1;
        let mid = MAX_KEYS / 2;
        let right = self.new_node(ops, is_leaf)?;
        let child_keys = self.node_read(ops, child, OFF_NKEYS)?;
        // Move the upper half of the child into the new right sibling.
        let moved = child_keys - mid - u64::from(!is_leaf);
        let src_start = child_keys - moved;
        for i in 0..moved {
            let k = self.node_read(ops, child, OFF_KEYS + src_start + i)?;
            self.node_write(ops, right, OFF_KEYS + i, k)?;
            let v = self.node_read(ops, child, OFF_CHILDREN + src_start + i)?;
            self.node_write(ops, right, OFF_CHILDREN + i, v)?;
        }
        if !is_leaf {
            let v = self.node_read(ops, child, OFF_CHILDREN + child_keys)?;
            self.node_write(ops, right, OFF_CHILDREN + moved, v)?;
        }
        self.node_write(ops, right, OFF_NKEYS, moved)?;
        self.node_write(ops, child, OFF_NKEYS, mid)?;
        let separator = self.node_read(ops, child, OFF_KEYS + mid)?;

        // Shift the parent's keys/children to make room.
        let parent_keys = self.node_read(ops, parent, OFF_NKEYS)?;
        let mut i = parent_keys;
        while i > child_index {
            let k = self.node_read(ops, parent, OFF_KEYS + i - 1)?;
            self.node_write(ops, parent, OFF_KEYS + i, k)?;
            let c = self.node_read(ops, parent, OFF_CHILDREN + i)?;
            self.node_write(ops, parent, OFF_CHILDREN + i + 1, c)?;
            i -= 1;
        }
        self.node_write(ops, parent, OFF_KEYS + child_index, separator)?;
        self.node_write(ops, parent, OFF_CHILDREN + child_index + 1, right.word())?;
        self.node_write(ops, parent, OFF_NKEYS, parent_keys + 1)?;
        Ok(())
    }

    fn insert_nonfull(
        &self,
        ops: &mut dyn TxnOps,
        node: PAddr,
        key: u64,
        value: u64,
    ) -> Result<bool, TxAbort> {
        let mut node = node;
        loop {
            let is_leaf = self.node_read(ops, node, OFF_IS_LEAF)? == 1;
            let nkeys = self.node_read(ops, node, OFF_NKEYS)?;
            if is_leaf {
                // Find position; overwrite if present.
                let mut idx = 0;
                while idx < nkeys && self.node_read(ops, node, OFF_KEYS + idx)? < key {
                    idx += 1;
                }
                if idx < nkeys && self.node_read(ops, node, OFF_KEYS + idx)? == key {
                    self.node_write(ops, node, OFF_CHILDREN + idx, value)?;
                    return Ok(false);
                }
                let mut i = nkeys;
                while i > idx {
                    let k = self.node_read(ops, node, OFF_KEYS + i - 1)?;
                    self.node_write(ops, node, OFF_KEYS + i, k)?;
                    let v = self.node_read(ops, node, OFF_CHILDREN + i - 1)?;
                    self.node_write(ops, node, OFF_CHILDREN + i, v)?;
                    i -= 1;
                }
                self.node_write(ops, node, OFF_KEYS + idx, key)?;
                self.node_write(ops, node, OFF_CHILDREN + idx, value)?;
                self.node_write(ops, node, OFF_NKEYS, nkeys + 1)?;
                return Ok(true);
            }
            let mut idx = 0;
            while idx < nkeys && self.node_read(ops, node, OFF_KEYS + idx)? <= key {
                idx += 1;
            }
            let child = PAddr::new(self.node_read(ops, node, OFF_CHILDREN + idx)?);
            if self.node_read(ops, child, OFF_NKEYS)? == MAX_KEYS {
                self.split_child(ops, node, idx, child)?;
                continue; // re-descend from the same node
            }
            node = child;
        }
    }

    /// Removes `key` from its leaf (no rebalancing); returns true if found.
    pub fn remove(&self, ops: &mut dyn TxnOps, key: u64) -> Result<bool, TxAbort> {
        let root = ops.read(self.root_ptr)?;
        if root == 0 {
            return Ok(false);
        }
        let mut node = PAddr::new(root);
        loop {
            let is_leaf = self.node_read(ops, node, OFF_IS_LEAF)? == 1;
            let nkeys = self.node_read(ops, node, OFF_NKEYS)?;
            let mut idx = 0;
            while idx < nkeys && self.node_read(ops, node, OFF_KEYS + idx)? < key {
                idx += 1;
            }
            if is_leaf {
                if idx >= nkeys || self.node_read(ops, node, OFF_KEYS + idx)? != key {
                    return Ok(false);
                }
                for i in idx..nkeys - 1 {
                    let k = self.node_read(ops, node, OFF_KEYS + i + 1)?;
                    self.node_write(ops, node, OFF_KEYS + i, k)?;
                    let v = self.node_read(ops, node, OFF_CHILDREN + i + 1)?;
                    self.node_write(ops, node, OFF_CHILDREN + i, v)?;
                }
                self.node_write(ops, node, OFF_NKEYS, nkeys - 1)?;
                return Ok(true);
            }
            let go_right = idx < nkeys && self.node_read(ops, node, OFF_KEYS + idx)? <= key;
            let child_idx = if go_right { idx + 1 } else { idx };
            node = PAddr::new(self.node_read(ops, node, OFF_CHILDREN + child_idx)?);
        }
    }
}

impl TxnMix for BtreeMix {
    fn run_txn(
        &self,
        _tid: usize,
        _txn_index: u64,
        rng: &mut SplitMix64,
        ops: &mut dyn TxnOps,
    ) -> Result<(), TxAbort> {
        let key = rng.next_below(self.key_space);
        match self.variant {
            BtreeVariant::InsertOnly => {
                self.insert(ops, key, key ^ 0x5A5A)?;
            }
            BtreeVariant::Mixed => {
                let dice = rng.next_below(10);
                if dice < 5 {
                    self.lookup(ops, key)?;
                } else if dice < 8 {
                    self.insert(ops, key, key ^ 0x5A5A)?;
                } else {
                    self.remove(ops, key)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_mix;
    use crafty_baselines::NonDurable;
    use crafty_common::PersistentTm;
    use crafty_core::{Crafty, CraftyConfig};
    use crafty_pmem::PmemConfig;

    fn mix_and_engine() -> (Arc<MemorySpace>, BtreeMix, NonDurable) {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = NonDurable::new(Arc::clone(&mem), 1 << 15);
        let root_ptr = mem.reserve_persistent(1);
        (
            Arc::clone(&mem),
            BtreeMix {
                root_ptr,
                variant: BtreeVariant::InsertOnly,
                key_space: 4096,
            },
            engine,
        )
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let (_mem, tree, engine) = mix_and_engine();
        let mut handle = engine.register_thread(0);
        for key in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0, 100, 200, 300] {
            handle.execute(&mut |ops| tree.insert(ops, key, key * 10).map(|_| ()));
        }
        let mut found = Vec::new();
        handle.execute(&mut |ops| {
            for key in 0..10u64 {
                if let Some(v) = tree.lookup(ops, key)? {
                    found.push((key, v));
                }
            }
            Ok(())
        });
        assert_eq!(found.len(), 10);
        assert!(found.iter().all(|&(k, v)| v == k * 10));
    }

    #[test]
    fn inserts_survive_node_splits() {
        let (_mem, tree, engine) = mix_and_engine();
        let mut handle = engine.register_thread(0);
        for key in 0..200u64 {
            handle.execute(&mut |ops| tree.insert(ops, key, key + 1).map(|_| ()));
        }
        handle.execute(&mut |ops| {
            for key in 0..200u64 {
                assert_eq!(tree.lookup(ops, key)?, Some(key + 1), "key {key}");
            }
            Ok(())
        });
    }

    #[test]
    fn duplicate_insert_overwrites_and_reports_not_new() {
        let (_mem, tree, engine) = mix_and_engine();
        let mut handle = engine.register_thread(0);
        let mut first = true;
        let mut second = true;
        handle.execute(&mut |ops| {
            first = tree.insert(ops, 42, 1)?;
            second = tree.insert(ops, 42, 2)?;
            Ok(())
        });
        assert!(first);
        assert!(!second);
        let mut v = None;
        handle.execute(&mut |ops| {
            v = tree.lookup(ops, 42)?;
            Ok(())
        });
        assert_eq!(v, Some(2));
    }

    #[test]
    fn removal_hides_keys() {
        let (_mem, tree, engine) = mix_and_engine();
        let mut handle = engine.register_thread(0);
        for key in 0..50u64 {
            handle.execute(&mut |ops| tree.insert(ops, key, key).map(|_| ()));
        }
        let mut removed = false;
        handle.execute(&mut |ops| {
            removed = tree.remove(ops, 25)?;
            Ok(())
        });
        assert!(removed);
        let mut v = Some(0);
        handle.execute(&mut |ops| {
            v = tree.lookup(ops, 25)?;
            Ok(())
        });
        assert_eq!(v, None);
    }

    #[test]
    fn concurrent_inserts_on_crafty_keep_all_keys() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = Crafty::new(
            Arc::clone(&mem),
            CraftyConfig::small_for_tests().with_max_threads(4),
        );
        let workload = BtreeWorkload {
            variant: BtreeVariant::InsertOnly,
            key_space: 1 << 30,
            prefill: 0,
        };
        let mix = workload.prepare(&mem);
        run_mix(&engine, mix.as_ref(), 3, 50, 11);
        assert_eq!(engine.breakdown().total_persistent(), 150);
    }

    #[test]
    fn mixed_workload_runs_on_an_engine() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let engine = NonDurable::new(Arc::clone(&mem), 1 << 15);
        let workload = BtreeWorkload {
            variant: BtreeVariant::Mixed,
            key_space: 256,
            prefill: 0,
        };
        let mix = workload.prepare(&mem);
        run_mix(&engine, mix.as_ref(), 2, 200, 13);
        assert_eq!(engine.breakdown().total_persistent(), 400);
        assert_eq!(workload.name(), "B+ tree (mixed operations)");
    }
}
