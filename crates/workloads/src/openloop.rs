//! Open-loop arrival schedules for the service benchmarks.
//!
//! A closed-loop driver (each thread issues its next operation when the
//! previous one returns) cannot see tail latency honestly: when the server
//! stalls, the driver stalls with it and simply stops generating the load
//! that would have queued — *coordinated omission*. An **open-loop**
//! driver decides every operation's send time in advance, from an arrival
//! process the server does not influence, and measures each operation's
//! latency from its **intended** send time. A stall then charges every
//! operation scheduled during it, exactly as real clients would experience
//! it.
//!
//! [`OpenLoopConfig::schedule`] materializes the full deterministic
//! schedule — arrival times from a fixed-rate or Poisson process, and an
//! operation mix (zipfian-skewed gets/puts reusing the YCSB scrambled-key
//! construction) — as a pure function of the config, so every engine under
//! comparison replays byte-identical traffic.

use crafty_common::{mix64, SplitMix64, Zipfian};

/// The inter-arrival process of an open-loop schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals: one operation every `1/rate` seconds. The
    /// gentlest schedule a rate can have — no burstiness at all.
    Fixed,
    /// Memoryless (exponential) inter-arrivals at the given mean rate: the
    /// standard model of independent clients, with natural bursts that
    /// probe queueing behaviour.
    Poisson,
}

impl ArrivalProcess {
    /// Short label used in benchmark output (`"fixed"` / `"poisson"`).
    pub fn label(self) -> &'static str {
        match self {
            ArrivalProcess::Fixed => "fixed",
            ArrivalProcess::Poisson => "poisson",
        }
    }
}

/// What one scheduled operation does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Read a key.
    Get {
        /// Key to read.
        key: u64,
    },
    /// Durably write `key = value`.
    Put {
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
    },
}

impl OpKind {
    /// Whether the operation mutates the store.
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::Put { .. })
    }
}

/// One operation with its intended send time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScheduledOp {
    /// Intended send time, in nanoseconds from the start of the run.
    /// Latency is measured from this instant, not from when the sender
    /// actually managed to write the bytes — the open-loop discipline.
    pub at_ns: u64,
    /// The operation itself.
    pub kind: OpKind,
}

/// A deterministic open-loop workload: an arrival rate, an operation
/// count, and the key/operation mix.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// Offered load, operations per second.
    pub rate_per_sec: u64,
    /// Total operations in the schedule.
    pub ops: u64,
    /// Seed for arrivals and the key mix (same seed ⇒ same schedule).
    pub seed: u64,
    /// Key population: keys are zipfian ranks over `records`, scrambled
    /// into a `4 · records` key domain exactly as the YCSB mixes do, so a
    /// store prefilled by [`crate::YcsbWorkload`] with the same `records`
    /// and `seed` serves this schedule from a loaded state.
    pub records: u64,
    /// Zipfian skew (YCSB default 0.99).
    pub theta: f64,
    /// Percentage of operations that are reads (the rest are puts).
    pub read_pct: u32,
    /// The inter-arrival process.
    pub arrival: ArrivalProcess,
}

impl OpenLoopConfig {
    /// A YCSB-A-shaped mix (50/50 read/write, zipfian 0.99) at the given
    /// rate and length.
    pub fn ycsb_a(rate_per_sec: u64, ops: u64, records: u64, seed: u64) -> Self {
        OpenLoopConfig {
            rate_per_sec,
            ops,
            seed,
            records,
            theta: crafty_common::YCSB_THETA,
            read_pct: 50,
            arrival: ArrivalProcess::Poisson,
        }
    }

    /// Scrambles a zipfian rank into a key — the same construction as the
    /// YCSB mixes, so schedules hit the same hot set a prefilled store
    /// has. Public so load generators can prefill a store with exactly the
    /// population the schedule will draw from (`records` ranks).
    pub fn scrambled_key(&self, rank: u64) -> u64 {
        mix64(rank.wrapping_add(self.seed)) % (self.records * 4)
    }

    /// Materializes the schedule: `ops` operations with nondecreasing
    /// intended send times. Pure in the config — two calls return the same
    /// schedule, and configs differing only in engine under test replay
    /// identical traffic.
    pub fn schedule(&self) -> Vec<ScheduledOp> {
        assert!(self.rate_per_sec > 0, "rate must be positive");
        assert!(self.records > 0, "key population must be nonempty");
        let mut arrivals = SplitMix64::new(self.seed ^ 0xA441_7A1D);
        let mut keys = SplitMix64::new(self.seed ^ 0x5EED_12D7);
        let zipf = Zipfian::new(self.records, self.theta);
        let gap_ns = 1_000_000_000.0 / self.rate_per_sec as f64;
        let mut clock_ns = 0.0f64;
        let mut out = Vec::with_capacity(self.ops as usize);
        for i in 0..self.ops {
            clock_ns += match self.arrival {
                ArrivalProcess::Fixed => gap_ns,
                ArrivalProcess::Poisson => {
                    // Exponential inter-arrival via inversion; clamp the
                    // uniform away from 0 so ln() stays finite.
                    let u = (arrivals.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    -gap_ns * (1.0 - u).max(1e-12).ln()
                }
            };
            let key = self.scrambled_key(zipf.sample(&mut keys));
            let kind = if keys.next_below(100) < self.read_pct as u64 {
                OpKind::Get { key }
            } else {
                OpKind::Put {
                    key,
                    value: mix64(key ^ i),
                }
            };
            out.push(ScheduledOp {
                at_ns: clock_ns as u64,
                kind,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(arrival: ArrivalProcess) -> OpenLoopConfig {
        OpenLoopConfig {
            rate_per_sec: 100_000,
            ops: 2_000,
            seed: 42,
            records: 400,
            theta: 0.99,
            read_pct: 50,
            arrival,
        }
    }

    #[test]
    fn schedules_are_deterministic_and_sorted() {
        for arrival in [ArrivalProcess::Fixed, ArrivalProcess::Poisson] {
            let a = cfg(arrival).schedule();
            let b = cfg(arrival).schedule();
            assert_eq!(a, b, "same config must give the same schedule");
            assert_eq!(a.len(), 2_000);
            assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        }
    }

    #[test]
    fn mean_rate_matches_the_configured_rate() {
        for arrival in [ArrivalProcess::Fixed, ArrivalProcess::Poisson] {
            let s = cfg(arrival).schedule();
            let span_s = s.last().unwrap().at_ns as f64 / 1e9;
            let rate = s.len() as f64 / span_s;
            let err = (rate - 100_000.0).abs() / 100_000.0;
            assert!(err < 0.1, "{arrival:?}: rate {rate} off by {err}");
        }
    }

    #[test]
    fn mix_respects_read_percentage() {
        let mut c = cfg(ArrivalProcess::Fixed);
        c.read_pct = 90;
        let s = c.schedule();
        let reads = s.iter().filter(|o| !o.kind.is_write()).count();
        let frac = reads as f64 / s.len() as f64;
        assert!((frac - 0.9).abs() < 0.05, "read fraction {frac}");
        c.read_pct = 0;
        assert!(c.schedule().iter().all(|o| o.kind.is_write()));
    }

    #[test]
    fn keys_stay_in_the_scrambled_domain() {
        let c = cfg(ArrivalProcess::Poisson);
        for op in c.schedule() {
            let key = match op.kind {
                OpKind::Get { key } => key,
                OpKind::Put { key, .. } => key,
            };
            assert!(key < c.records * 4);
        }
    }

    #[test]
    fn poisson_is_burstier_than_fixed() {
        // The variance of inter-arrival gaps distinguishes the processes:
        // fixed has (nearly) none, Poisson has mean².
        let gaps = |s: &[ScheduledOp]| -> Vec<f64> {
            s.windows(2)
                .map(|w| (w[1].at_ns - w[0].at_ns) as f64)
                .collect()
        };
        let var = |g: &[f64]| -> f64 {
            let mean = g.iter().sum::<f64>() / g.len() as f64;
            g.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / g.len() as f64
        };
        let fixed = var(&gaps(&cfg(ArrivalProcess::Fixed).schedule()));
        let poisson = var(&gaps(&cfg(ArrivalProcess::Poisson).schedule()));
        assert!(
            poisson > fixed * 10.0,
            "poisson variance {poisson} vs fixed {fixed}"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ArrivalProcess::Fixed.label(), "fixed");
        assert_eq!(ArrivalProcess::Poisson.label(), "poisson");
        assert!(OpKind::Put { key: 1, value: 2 }.is_write());
        assert!(!OpKind::Get { key: 1 }.is_write());
    }
}
