//! Constructors for every engine configuration the paper evaluates.
//!
//! The figure harness and the benches build engines by [`EngineKind`] so
//! that a benchmark run is fully described by (workload, engine, threads,
//! latency model).

use std::sync::Arc;

use crafty_baselines::{CowConfig, DudeTm, NonDurable, NvHtm};
use crafty_common::PersistentTm;
use crafty_core::{Crafty, CraftyConfig, CraftyVariant};
use crafty_pmem::MemorySpace;

/// The engine configurations evaluated in the paper's figures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// The non-durable HTM baseline (normalization reference).
    NonDurable,
    /// DudeTM (shadow paging + in-HTM global counter).
    DudeTm,
    /// NV-HTM (shadow paging + commit-time wait + background persist).
    NvHtm,
    /// Full Crafty (Log → Redo → Validate → SGL).
    Crafty,
    /// Crafty without the Validate phase.
    CraftyNoValidate,
    /// Crafty without the Redo phase.
    CraftyNoRedo,
}

impl EngineKind {
    /// The six configurations of every figure, in legend order.
    pub const ALL: [EngineKind; 6] = [
        EngineKind::NonDurable,
        EngineKind::DudeTm,
        EngineKind::NvHtm,
        EngineKind::Crafty,
        EngineKind::CraftyNoValidate,
        EngineKind::CraftyNoRedo,
    ];

    /// The legend label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::NonDurable => "Non-durable",
            EngineKind::DudeTm => "DudeTM",
            EngineKind::NvHtm => "NV-HTM",
            EngineKind::Crafty => "Crafty",
            EngineKind::CraftyNoValidate => "Crafty-NoValidate",
            EngineKind::CraftyNoRedo => "Crafty-NoRedo",
        }
    }
}

/// Builds an engine of the given kind over `mem`, sized for `max_threads`
/// worker threads.
pub fn build_engine(
    kind: EngineKind,
    mem: &Arc<MemorySpace>,
    max_threads: usize,
) -> Box<dyn PersistentTm> {
    // Size the engine's heap and logs proportionally to the space it runs
    // in, so the same constructor works for unit-test-sized and
    // benchmark-sized spaces.
    let heap_words = (mem.persistent_words() / 4).min(1 << 21);
    let per_thread_log_words =
        (mem.persistent_words() / (4 * max_threads as u64)).clamp(64, 1 << 16);
    match kind {
        EngineKind::NonDurable => Box::new(NonDurable::new(Arc::clone(mem), heap_words)),
        EngineKind::NvHtm => Box::new(NvHtm::new(
            Arc::clone(mem),
            CowConfig {
                max_threads,
                heap_words,
                redo_log_words: per_thread_log_words,
                ..CowConfig::benchmark(max_threads)
            },
        )),
        EngineKind::DudeTm => Box::new(DudeTm::new(
            Arc::clone(mem),
            CowConfig {
                max_threads,
                heap_words,
                redo_log_words: per_thread_log_words,
                ..CowConfig::benchmark(max_threads)
            },
        )),
        EngineKind::Crafty | EngineKind::CraftyNoValidate | EngineKind::CraftyNoRedo => {
            let variant = match kind {
                EngineKind::CraftyNoValidate => CraftyVariant::NoValidate,
                EngineKind::CraftyNoRedo => CraftyVariant::NoRedo,
                _ => CraftyVariant::Full,
            };
            let cfg = CraftyConfig::benchmark(max_threads)
                .with_variant(variant)
                .with_heap_words(heap_words)
                .with_undo_log_entries(per_thread_log_words / 2)
                .with_max_threads(max_threads);
            Box::new(Crafty::new(Arc::clone(mem), cfg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::PmemConfig;

    #[test]
    fn every_kind_builds_and_reports_its_legend_name() {
        for kind in EngineKind::ALL {
            let mem = Arc::new(MemorySpace::new(
                PmemConfig::small_for_tests().with_max_threads(8),
            ));
            let engine = build_engine(kind, &mem, 2);
            assert_eq!(engine.name(), kind.label());
            // Each engine must be able to run a trivial transaction.
            let cell = mem.reserve_persistent(1);
            let mut t = engine.register_thread(0);
            t.execute(&mut |ops| {
                let v = ops.read(cell)?;
                ops.write(cell, v + 1)?;
                Ok(())
            });
            engine.quiesce();
            assert_eq!(mem.read(cell), 1, "{}", kind.label());
        }
    }

    #[test]
    fn durability_flags_match_expectations() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        assert!(!build_engine(EngineKind::NonDurable, &mem, 1).is_durable());
        assert!(build_engine(EngineKind::Crafty, &mem, 1).is_durable());
    }
}
