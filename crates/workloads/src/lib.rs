//! Benchmark workloads for the Crafty reproduction.
//!
//! Everything the paper's evaluation runs, written once against the
//! engine-generic [`crafty_common::TxnOps`] interface:
//!
//! * [`bank`] — the bank microbenchmark at the paper's three contention
//!   levels (Figure 6).
//! * [`btree`] — the B+-tree microbenchmark, insert-only and mixed
//!   (Figure 7).
//! * [`stamp`] — STAMP-like kernels with transaction sizes and contention
//!   matched to Table 1 (Figure 8).
//! * [`ycsb`] — YCSB-style key-value mixes (A/B/C read-heavy, E scan) over
//!   the durable sharded [`crafty_kv::ShardedKv`] store, with zipfian key
//!   popularity.
//! * [`openloop`] — deterministic open-loop arrival schedules (fixed-rate
//!   and Poisson) for the service benchmarks, where latency is measured
//!   from intended send times so coordinated omission stays visible.
//! * [`driver`] — the engine-generic runner that measures wall-clock
//!   throughput and feeds the figure harness.
//! * [`engines`] — constructors for every engine configuration evaluated
//!   in the paper, by name.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod btree;
pub mod driver;
pub mod engines;
pub mod openloop;
pub mod stamp;
pub mod ycsb;

pub use bank::{BankWorkload, Contention};
pub use btree::{BtreeVariant, BtreeWorkload};
pub use driver::{measure, run_mix, TxnMix, Workload};
pub use engines::{build_engine, EngineKind};
pub use openloop::{ArrivalProcess, OpKind, OpenLoopConfig, ScheduledOp};
pub use stamp::{StampKernel, StampWorkload};
pub use ycsb::{YcsbKvMix, YcsbMix, YcsbWorkload, YCSB_BATCH_GROUP};
