//! Property-based tests of the undo-log entry encoding and the recovery
//! observer's sequence parser (Sections 5.1–5.2). These are the invariants
//! the crash tests rely on, exercised directly and exhaustively.

use crafty_common::{BreakdownRecorder, PAddr, Timestamp};
use crafty_core::recovery::parse_sequences;
use crafty_core::undo_log::{decode, Entry, LogGeometry, MarkerKind, UndoLog};
use crafty_htm::{HtmConfig, HtmRuntime};
use crafty_pmem::{MemorySpace, PmemConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn fixture(capacity: u64) -> (Arc<MemorySpace>, HtmRuntime, UndoLog) {
    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    let htm = HtmRuntime::new(
        Arc::clone(&mem),
        HtmConfig::skylake(),
        Arc::new(BreakdownRecorder::new()),
    );
    let start = mem.reserve_persistent(capacity * 2);
    let head = mem.reserve_volatile(1);
    let log = UndoLog::new(LogGeometry { start, capacity }, head);
    (mem, htm, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Torn entries (any single word failing to persist) are always
    /// detected: flipping either word of an encoded entry to a stale value
    /// with the other lap's parity never decodes as a valid entry of the
    /// current lap.
    #[test]
    fn stale_word_is_never_accepted(addr in 1u64..(1 << 40), value: u64, parity in 0u64..2) {
        let (mem, htm, log) = fixture(16);
        // Write one data entry with the chosen parity by preloading the
        // head so that the absolute index lands on the right lap.
        let head_preload = parity * 16;
        htm.nontx_write(log.head_addr(), head_preload);
        let info = log.append_sequence_nontx(
            &htm,
            &[(PAddr::new(addr % (1 << 20)), value)],
            MarkerKind::Logged,
            Timestamp::from_raw(7),
        );
        log.flush_entries(&mem, 0, info.first_abs, info.marker_abs);
        mem.drain(0);
        let slot = log.geometry().slot_addr(info.first_abs);
        let meta = mem.read(slot);
        let val = mem.read(slot.add(1));
        // Both words present: decodes as valid with the requested parity.
        match decode(meta, val) {
            crafty_core::SlotState::Valid { parity: p, entry } => {
                prop_assert_eq!(p, parity & 1);
                let is_data = matches!(entry, Entry::Data { .. });
                prop_assert!(is_data);
            }
            other => return Err(TestCaseError::fail(format!("expected valid, got {other:?}"))),
        }
        // Value word from the other lap (stale): must be torn or decode to
        // the other parity, never a current-lap entry with wrong contents.
        let stale_val = val ^ 1;
        match decode(meta, stale_val) {
            crafty_core::SlotState::Torn => {}
            crafty_core::SlotState::Absent => {}
            crafty_core::SlotState::Valid { parity: p, .. } => {
                prop_assert_ne!(p, parity & 1, "stale word accepted as current lap");
            }
        }
    }

    /// Appending N sequences and crashing after persisting them always
    /// yields exactly the sequences that fit in the log, in order, with
    /// their timestamps and entries intact — for any mix of sequence sizes.
    #[test]
    fn parser_recovers_persisted_sequences_exactly(
        sizes in prop::collection::vec(0usize..5, 1..6),
    ) {
        let capacity = 64;
        let (mem, htm, log) = fixture(capacity);
        let mut expected = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let entries: Vec<(PAddr, u64)> = (0..size)
                .map(|j| (PAddr::new(4096 + (i * 8 + j) as u64), (i * 100 + j) as u64))
                .collect();
            let ts = Timestamp::from_raw((i as u64 + 1) * 10);
            let info = log.append_sequence_nontx(&htm, &entries, MarkerKind::Committed, ts);
            log.flush_entries(&mem, 0, info.first_abs, info.marker_abs);
            mem.drain(0);
            expected.push((ts, entries));
        }
        let image = mem.crash();
        let sequences = parse_sequences(&image, &log.geometry());
        prop_assert_eq!(sequences.len(), expected.len());
        for (seq, (ts, entries)) in sequences.iter().zip(&expected) {
            prop_assert_eq!(seq.ts, *ts);
            prop_assert_eq!(&seq.entries, entries);
        }
    }

    /// A crash that loses the flush of the *last* sequence never corrupts
    /// the earlier, fully persisted ones.
    #[test]
    fn unflushed_tail_does_not_affect_persisted_prefix(tail_size in 1usize..6) {
        let (mem, htm, log) = fixture(64);
        let first = [(PAddr::new(4096), 1u64), (PAddr::new(4104), 2u64)];
        let info = log.append_sequence_nontx(&htm, &first, MarkerKind::Committed, Timestamp::from_raw(5));
        log.flush_entries(&mem, 0, info.first_abs, info.marker_abs);
        mem.drain(0);
        // Second sequence appended but never flushed.
        let tail: Vec<(PAddr, u64)> = (0..tail_size)
            .map(|j| (PAddr::new(8192 + j as u64), j as u64))
            .collect();
        log.append_sequence_nontx(&htm, &tail, MarkerKind::Logged, Timestamp::from_raw(9));
        let image = mem.crash();
        let sequences = parse_sequences(&image, &log.geometry());
        prop_assert!(!sequences.is_empty());
        prop_assert_eq!(sequences[0].ts, Timestamp::from_raw(5));
        prop_assert_eq!(sequences[0].entries.len(), 2);
        // The unflushed tail either vanished entirely or parsed as the
        // second sequence; it must never corrupt the first.
        prop_assert!(sequences.len() <= 2);
    }
}
