//! End-to-end allocation check for the Crafty engine: after warmup, a
//! committed persistent transaction on the bank-workload hot path (Log
//! phase → undo-log append → flush → Redo phase) performs **zero heap
//! allocations**. This is the acceptance bar for the reusable-descriptor /
//! scratch-buffer design across the HTM → core → pmem stack.
//!
//! This file intentionally holds a single `#[test]` so no concurrent test
//! thread can pollute the allocation counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use crafty_common::{PersistentTm, SplitMix64, TxAbort, TxnOps};
use crafty_core::{Crafty, CraftyConfig};
use crafty_pmem::{MemorySpace, PmemConfig};

std::thread_local! {
    /// Allocations made by the current thread. Per-thread because the
    /// libtest harness's main thread blocks on an event channel while the
    /// test thread runs and may allocate at any moment (mpmc waker
    /// registration) — a process-global count races against it on small
    /// machines. Const-initialized so the thread-local itself never
    /// allocates on first use.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn transfer(
    ops: &mut dyn TxnOps,
    from: crafty_common::PAddr,
    to: crafty_common::PAddr,
) -> Result<(), TxAbort> {
    let a = ops.read(from)?;
    ops.write(from, a.wrapping_sub(1))?;
    let b = ops.read(to)?;
    ops.write(to, b.wrapping_add(1))?;
    Ok(())
}

#[test]
fn steady_state_bank_transactions_do_not_allocate() {
    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    // A roomy undo log postpones half-crossing maintenance; the test spans
    // several crossings anyway, which must also be allocation-free.
    let crafty = Crafty::new(
        Arc::clone(&mem),
        CraftyConfig {
            undo_log_entries: 1024,
            ..CraftyConfig::small_for_tests().with_max_threads(1)
        },
    );
    let accounts_n = 64u64;
    let accounts = mem.reserve_persistent(accounts_n * 8);
    for i in 0..accounts_n {
        mem.write(accounts.add(i * 8), 1_000);
    }
    let mut thread = crafty.register_thread(0);
    let mut rng = SplitMix64::new(41);

    // Warmup: grows every reusable buffer (descriptor tables, undo/redo
    // buffers, flush queues) to the workload's steady-state footprint and
    // crosses the undo log's half boundary at least once.
    for _ in 0..2_000 {
        let from = accounts.add(rng.next_below(accounts_n) * 8);
        let to = accounts.add(rng.next_below(accounts_n) * 8);
        thread.execute(&mut |ops| transfer(ops, from, to));
    }

    let before = thread_allocations();
    for _ in 0..10_000 {
        let from = accounts.add(rng.next_below(accounts_n) * 8);
        let to = accounts.add(rng.next_below(accounts_n) * 8);
        thread.execute(&mut |ops| transfer(ops, from, to));
    }
    let after = thread_allocations();

    assert_eq!(
        after - before,
        0,
        "engine hot path allocated {} times over 10k steady-state transactions",
        after - before
    );

    crafty.quiesce();
    let total: u64 = (0..accounts_n).map(|i| mem.read(accounts.add(i * 8))).sum();
    assert_eq!(
        total,
        accounts_n * 1_000,
        "transfers must conserve the total"
    );
}
