//! Allocation check for the trace subsystem: with tracing armed — first
//! at `Counters` (phase timers + abort causes), then at `Events` (full
//! event-ring recording) — a committed steady-state transaction still
//! performs **zero heap allocations**. The rings are preallocated at
//! [`crafty_common::trace::configure`] time and pushes only store into
//! them; timers are two `Instant` reads and a relaxed `fetch_add`. This
//! test is the enforcement of that contract.
//!
//! This file intentionally holds a single `#[test]` so no concurrent test
//! thread can pollute the allocation counters, and lives in its own
//! binary so the process-global trace level cannot leak into the untraced
//! allocation test (`alloc_free_engine.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use crafty_common::trace::{self, TraceConfig, TraceLevel};
use crafty_common::{PersistentTm, SplitMix64, TraceEventKind, TxAbort, TxnOps};
use crafty_core::{Crafty, CraftyConfig};
use crafty_pmem::{MemorySpace, PmemConfig};

std::thread_local! {
    /// Allocations made by the current thread. Per-thread because the
    /// libtest harness's main thread blocks on an event channel while the
    /// test thread runs and may allocate at any moment (mpmc waker
    /// registration) — a process-global count races against it on small
    /// machines. Const-initialized so the thread-local itself never
    /// allocates on first use.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn transfer(
    ops: &mut dyn TxnOps,
    from: crafty_common::PAddr,
    to: crafty_common::PAddr,
) -> Result<(), TxAbort> {
    let a = ops.read(from)?;
    ops.write(from, a.wrapping_sub(1))?;
    let b = ops.read(to)?;
    ops.write(to, b.wrapping_add(1))?;
    Ok(())
}

#[test]
fn steady_state_traced_transactions_do_not_allocate() {
    // Arm the tracer before the engine exists: the rings are the only
    // allocation the subsystem ever makes, and they happen here.
    trace::configure(TraceConfig::events());

    let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
    let crafty = Crafty::new(
        Arc::clone(&mem),
        CraftyConfig {
            undo_log_entries: 1024,
            ..CraftyConfig::small_for_tests().with_max_threads(1)
        },
    );
    let accounts_n = 64u64;
    let accounts = mem.reserve_persistent(accounts_n * 8);
    for i in 0..accounts_n {
        mem.write(accounts.add(i * 8), 1_000);
    }
    let mut thread = crafty.register_thread(0);
    let mut rng = SplitMix64::new(41);

    // Warmup at full Events level: grows every reusable engine buffer to
    // its steady-state footprint while the rings wrap at least once.
    for i in 0..2_000 {
        trace::record(0, TraceEventKind::TxnBegin, i);
        let from = accounts.add(rng.next_below(accounts_n) * 8);
        let to = accounts.add(rng.next_below(accounts_n) * 8);
        thread.execute(&mut |ops| transfer(ops, from, to));
        trace::record(0, TraceEventKind::TxnEnd, i);
    }

    // Measure at each armed level; Off is covered by alloc_free_engine.rs.
    for level in [TraceLevel::Counters, TraceLevel::Events] {
        trace::set_level(level);
        let before = thread_allocations();
        for i in 0..10_000u64 {
            trace::record(0, TraceEventKind::TxnBegin, i);
            let from = accounts.add(rng.next_below(accounts_n) * 8);
            let to = accounts.add(rng.next_below(accounts_n) * 8);
            thread.execute(&mut |ops| transfer(ops, from, to));
            trace::record(0, TraceEventKind::TxnEnd, i);
        }
        let after = thread_allocations();
        assert_eq!(
            after - before,
            0,
            "traced hot path at {:?} allocated {} times over 10k transactions",
            level,
            after - before
        );
    }

    // The tracer actually observed the run: events were recorded (and the
    // flight recorder wrapped), phases accumulated cycles.
    assert!(
        trace::ring_dropped(0) > 0,
        "30k traced transactions must have wrapped a {}-event ring",
        trace::ring_snapshot(0).len()
    );
    assert!(
        crafty.breakdown().total_phase_cycles() > 0,
        "Counters-level run must have accumulated phase cycles"
    );

    crafty.quiesce();
    let total: u64 = (0..accounts_n).map(|i| mem.read(accounts.add(i * 8))).sum();
    assert_eq!(
        total,
        accounts_n * 1_000,
        "transfers must conserve the total"
    );
}
