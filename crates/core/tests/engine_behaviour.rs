//! End-to-end behaviour of the Crafty engine: phase selection, atomicity,
//! durability, ablation variants, and crash recovery.

use std::sync::Arc;

use crafty_common::{CompletionPath, PAddr, PersistentTm, TxAbort, TxnOps};
use crafty_core::{recover, Crafty, CraftyConfig, CraftyVariant, ThreadingMode};
use crafty_pmem::{CrashModel, MemorySpace, PmemConfig};

fn small_mem() -> Arc<MemorySpace> {
    Arc::new(MemorySpace::new(PmemConfig::small_for_tests()))
}

fn transfer(ops: &mut dyn TxnOps, from: PAddr, to: PAddr, amount: u64) -> Result<(), TxAbort> {
    // Sequential read-modify-write so that `from == to` is a harmless no-op.
    let a = ops.read(from)?;
    ops.write(from, a.wrapping_sub(amount))?;
    let b = ops.read(to)?;
    ops.write(to, b.wrapping_add(amount))?;
    Ok(())
}

#[test]
fn single_thread_updates_commit_via_redo() {
    let mem = small_mem();
    let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
    let cell = mem.reserve_persistent(1);
    let mut thread = crafty.register_thread(0);
    for _ in 0..100 {
        thread.execute(&mut |ops| {
            let v = ops.read(cell)?;
            ops.write(cell, v + 1)?;
            Ok(())
        });
    }
    assert_eq!(mem.read(cell), 100);
    let b = crafty.breakdown();
    assert_eq!(b.completions(CompletionPath::Redo), 100);
    assert_eq!(b.completions(CompletionPath::Validate), 0);
    assert_eq!(b.completions(CompletionPath::Sgl), 0);
    assert!((b.writes_per_txn() - 1.0).abs() < 1e-9);
}

#[test]
fn read_only_transactions_skip_redo_and_validate() {
    let mem = small_mem();
    let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
    let cell = mem.reserve_persistent(1);
    mem.write(cell, 42);
    let mut thread = crafty.register_thread(0);
    let mut seen = 0;
    let report = thread.execute(&mut |ops| {
        seen = ops.read(cell)?;
        Ok(())
    });
    assert_eq!(seen, 42);
    assert_eq!(report.path, CompletionPath::ReadOnly);
    assert_eq!(crafty.breakdown().completions(CompletionPath::ReadOnly), 1);
    assert_eq!(
        crafty.g_last_redo_ts(),
        0,
        "read-only transactions never advance gLastRedoTS"
    );
}

#[test]
fn concurrent_transfers_preserve_the_total_balance() {
    let mem = small_mem();
    let crafty = Arc::new(Crafty::new(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests(),
    ));
    let accounts = 16u64;
    let base = mem.reserve_persistent(accounts);
    for i in 0..accounts {
        mem.write(base.add(i), 1000);
    }
    let threads = 4;
    let txns_per_thread = 300;
    crossbeam::scope(|s| {
        for tid in 0..threads {
            let crafty = Arc::clone(&crafty);
            s.spawn(move |_| {
                let mut handle = crafty.register_thread(tid);
                let mut rng = crafty_common::SplitMix64::new(tid as u64 + 1);
                for _ in 0..txns_per_thread {
                    let from = base.add(rng.next_below(accounts));
                    let to = base.add(rng.next_below(accounts));
                    handle.execute(&mut |ops| transfer(ops, from, to, 1));
                }
            });
        }
    })
    .expect("worker threads");
    crafty.quiesce();
    let total: u64 = (0..accounts).map(|i| mem.read(base.add(i))).sum();
    assert_eq!(total, accounts * 1000, "transfers must conserve the total");
    let b = crafty.breakdown();
    assert_eq!(
        b.total_persistent(),
        (threads * txns_per_thread) as u64,
        "every transaction must complete exactly once"
    );
}

#[test]
fn contention_exercises_the_validate_path() {
    // A sizable drain latency keeps each thread spinning in the drain that
    // `begin` issues between its Log commit and its Redo phase — exactly the
    // window in which another thread's commit makes the conservative
    // gLastRedoTS check fail. Without it a single-core host almost never
    // preempts inside that window and every transaction commits via Redo.
    let mem = Arc::new(MemorySpace::new(
        PmemConfig::small_for_tests().with_latency(crafty_pmem::LatencyModel {
            drain_ns: 30_000,
            ..crafty_pmem::LatencyModel::instant()
        }),
    ));
    let crafty = Arc::new(Crafty::new(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests(),
    ));
    // Each thread hammers its own cell on its own cache line: no true data
    // conflicts (and no HTM line conflicts), but gLastRedoTS advances
    // constantly, so Redo's conservative check fails and Validate succeeds
    // (the scenario of Figure 6(c) in the paper).
    let threads = 4;
    let cells = mem.reserve_persistent(threads as u64 * crafty_common::WORDS_PER_LINE);
    crossbeam::scope(|s| {
        for tid in 0..threads {
            let crafty = Arc::clone(&crafty);
            s.spawn(move |_| {
                let mut handle = crafty.register_thread(tid);
                let cell = cells.add(tid as u64 * crafty_common::WORDS_PER_LINE);
                for _ in 0..200 {
                    handle.execute(&mut |ops| {
                        let v = ops.read(cell)?;
                        ops.write(cell, v + 1)?;
                        Ok(())
                    });
                }
            });
        }
    })
    .expect("worker threads");
    for tid in 0..threads {
        assert_eq!(
            mem.read(cells.add(tid as u64 * crafty_common::WORDS_PER_LINE)),
            200
        );
    }
    let b = crafty.breakdown();
    assert!(
        b.completions(CompletionPath::Validate) > 0,
        "expected some transactions to commit through Validate; breakdown: redo={} validate={} sgl={}",
        b.completions(CompletionPath::Redo),
        b.completions(CompletionPath::Validate),
        b.completions(CompletionPath::Sgl)
    );
}

#[test]
fn no_redo_variant_commits_through_validate() {
    let mem = small_mem();
    let cfg = CraftyConfig::small_for_tests().with_variant(CraftyVariant::NoRedo);
    let crafty = Crafty::new(Arc::clone(&mem), cfg);
    let cell = mem.reserve_persistent(1);
    let mut thread = crafty.register_thread(0);
    for _ in 0..50 {
        thread.execute(&mut |ops| {
            let v = ops.read(cell)?;
            ops.write(cell, v + 1)?;
            Ok(())
        });
    }
    assert_eq!(mem.read(cell), 50);
    let b = crafty.breakdown();
    assert_eq!(b.completions(CompletionPath::Redo), 0);
    assert_eq!(b.completions(CompletionPath::Validate), 50);
}

#[test]
fn no_validate_variant_still_completes_under_contention() {
    let mem = small_mem();
    let cfg = CraftyConfig::small_for_tests().with_variant(CraftyVariant::NoValidate);
    let crafty = Arc::new(Crafty::new(Arc::clone(&mem), cfg));
    let counter = mem.reserve_persistent(1);
    let threads = 3;
    let per_thread = 150;
    crossbeam::scope(|s| {
        for tid in 0..threads {
            let crafty = Arc::clone(&crafty);
            s.spawn(move |_| {
                let mut handle = crafty.register_thread(tid);
                for _ in 0..per_thread {
                    handle.execute(&mut |ops| {
                        let v = ops.read(counter)?;
                        ops.write(counter, v + 1)?;
                        Ok(())
                    });
                }
            });
        }
    })
    .expect("worker threads");
    assert_eq!(mem.read(counter), (threads * per_thread) as u64);
    assert_eq!(crafty.breakdown().completions(CompletionPath::Validate), 0);
}

#[test]
fn thread_unsafe_mode_provides_durability_under_external_locking() {
    let mem = small_mem();
    let cfg = CraftyConfig::small_for_tests().with_mode(ThreadingMode::ThreadUnsafe);
    let crafty = Arc::new(Crafty::new(Arc::clone(&mem), cfg));
    let counter = mem.reserve_persistent(1);
    let lock = Arc::new(parking_lot::Mutex::new(()));
    crossbeam::scope(|s| {
        for tid in 0..3 {
            let crafty = Arc::clone(&crafty);
            let lock = Arc::clone(&lock);
            s.spawn(move |_| {
                let mut handle = crafty.register_thread(tid);
                for _ in 0..100 {
                    // The program's own lock provides thread atomicity.
                    let _guard = lock.lock();
                    handle.execute(&mut |ops| {
                        let v = ops.read(counter)?;
                        ops.write(counter, v + 1)?;
                        Ok(())
                    });
                }
            });
        }
    })
    .expect("worker threads");
    assert_eq!(mem.read(counter), 300);
}

#[test]
fn transactional_allocation_builds_a_persistent_list() {
    let mem = small_mem();
    let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
    // head -> node(value, next) -> ...
    let head = mem.reserve_persistent(1);
    let mut thread = crafty.register_thread(0);
    for value in 1..=20u64 {
        thread.execute(&mut |ops| {
            let node = ops.alloc(2)?;
            ops.write(node, value)?;
            let old_head = ops.read(head)?;
            ops.write(node.add(1), old_head)?;
            ops.write(head, node.word())?;
            Ok(())
        });
    }
    // Walk the list non-transactionally.
    let mut seen = Vec::new();
    let mut cursor = mem.read(head);
    while cursor != 0 {
        seen.push(mem.read(PAddr::new(cursor)));
        cursor = mem.read(PAddr::new(cursor).add(1));
    }
    assert_eq!(seen, (1..=20u64).rev().collect::<Vec<_>>());
    assert_eq!(crafty.allocator().live_allocations(), 20);
    // Free them all in one transaction.
    thread.execute(&mut |ops| {
        let mut cursor = ops.read(head)?;
        while cursor != 0 {
            let node = PAddr::new(cursor);
            cursor = ops.read(node.add(1))?;
            ops.dealloc(node, 2)?;
        }
        ops.write(head, 0)?;
        Ok(())
    });
    assert_eq!(crafty.allocator().live_allocations(), 0);
}

#[test]
fn committed_and_quiesced_state_survives_a_strict_crash() {
    let mem = small_mem();
    let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
    let cell = mem.reserve_persistent(1);
    let mut thread = crafty.register_thread(0);
    for _ in 0..10 {
        thread.execute(&mut |ops| {
            let v = ops.read(cell)?;
            ops.write(cell, v + 1)?;
            Ok(())
        });
    }
    crafty.quiesce();
    let mut image = mem.crash();
    let report = recover(&mut image, crafty.directory_addr()).expect("recovery");
    assert_eq!(image.read(cell), 10, "quiesced state must survive in full");
    assert_eq!(
        report.entries_rolled_back, 0,
        "empty latest sequences roll back nothing"
    );
}

#[test]
fn crash_without_quiesce_recovers_a_consistent_prefix() {
    let mem = small_mem();
    let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
    let a = mem.reserve_persistent(1);
    let b = mem.reserve_persistent(1);
    mem.write(a, 500);
    mem.write(b, 500);
    mem.persist(0, a);
    mem.persist(0, b);
    let mut thread = crafty.register_thread(0);
    for _ in 0..50 {
        thread.execute(&mut |ops| transfer(ops, a, b, 1));
    }
    // No quiesce: crash in the middle of steady state.
    let mut image = mem.crash();
    recover(&mut image, crafty.directory_addr()).expect("recovery");
    let total = image.read(a) + image.read(b);
    assert_eq!(total, 1000, "recovered state must preserve the invariant");
    assert!(image.read(b) >= 500 && image.read(b) <= 550);
}

#[test]
fn persist_now_makes_preceding_transactions_durable() {
    let mem = small_mem();
    let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
    let cell = mem.reserve_persistent(1);
    let mut thread = crafty.register_thread(0);
    for _ in 0..7 {
        thread.execute(&mut |ops| {
            let v = ops.read(cell)?;
            ops.write(cell, v + 1)?;
            Ok(())
        });
    }
    crafty.persist_now(0);
    let mut image = mem.crash();
    recover(&mut image, crafty.directory_addr()).expect("recovery");
    assert_eq!(
        image.read(cell),
        7,
        "on-demand persistence must pin completed work"
    );
}

#[test]
fn adversarial_concurrent_crash_preserves_the_bank_invariant() {
    // Evictions may persist arbitrary dirty lines, and at the crash every
    // dirty word persists with probability one half. Recovery must still
    // produce a balanced bank.
    for seed in 0..5u64 {
        let cfg = PmemConfig::small_for_tests().with_crash(CrashModel {
            eviction_probability: 0.02,
            dirty_word_persist_probability: 0.5,
            seed,
        });
        let mem = Arc::new(MemorySpace::new(cfg));
        let crafty = Arc::new(Crafty::new(
            Arc::clone(&mem),
            CraftyConfig::small_for_tests(),
        ));
        let accounts = 8u64;
        let base = mem.reserve_persistent(accounts);
        for i in 0..accounts {
            mem.write(base.add(i), 100);
            mem.persist(0, base.add(i));
        }
        let threads = 3;
        crossbeam::scope(|s| {
            for tid in 0..threads {
                let crafty = Arc::clone(&crafty);
                s.spawn(move |_| {
                    let mut handle = crafty.register_thread(tid);
                    let mut rng = crafty_common::SplitMix64::new(seed * 31 + tid as u64);
                    for _ in 0..120 {
                        let from = base.add(rng.next_below(accounts));
                        let to = base.add(rng.next_below(accounts));
                        handle.execute(&mut |ops| transfer(ops, from, to, 1));
                    }
                });
            }
        })
        .expect("worker threads");
        // Crash *without* quiescing.
        let mut image = mem.crash();
        recover(&mut image, crafty.directory_addr()).expect("recovery");
        let total: u64 = (0..accounts).map(|i| image.read(base.add(i))).sum();
        assert_eq!(
            total,
            accounts * 100,
            "seed {seed}: recovered bank must be balanced"
        );
    }
}

#[test]
fn sgl_fallback_is_used_when_htm_capacity_is_exceeded() {
    use crafty_htm::HtmConfig;
    let mem = small_mem();
    let crafty = Crafty::with_htm_config(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests(),
        HtmConfig::tiny(),
    );
    let base = mem.reserve_persistent(1024);
    let mut thread = crafty.register_thread(0);
    // 200 writes far exceed the tiny HTM's 4-line write capacity, so the
    // transaction can only complete through the SGL fallback.
    let report = thread.execute(&mut |ops| {
        for i in 0..200u64 {
            ops.write(base.add(i), i)?;
        }
        Ok(())
    });
    assert_eq!(report.path, CompletionPath::Sgl);
    for i in 0..200u64 {
        assert_eq!(mem.read(base.add(i)), i);
    }
    assert_eq!(crafty.breakdown().completions(CompletionPath::Sgl), 1);
}
