//! The recovery observer (Section 5).
//!
//! After a crash, [`recover`] restores the persistent image to a state
//! corresponding to a prefix of the committed-transaction order:
//!
//! 1. Read the persistent log directory to find every thread's circular
//!    undo log.
//! 2. Parse each log into *fully persisted sequences* — runs of persisted
//!    `<addr, oldValue>` entries concluded by a persisted LOGGED/COMMITTED
//!    marker and preceded by a persisted marker (or the start of a
//!    never-wrapped log). Wraparound parity bits distinguish the current
//!    lap from stale entries, and per-word parity detects torn entries
//!    (Section 5.2).
//! 3. Roll back the *latest* sequence of every thread (its writes may have
//!    only partially persisted because Crafty flushes without draining),
//!    plus — to reach a globally consistent cut — every sequence whose
//!    timestamp is at or after the earliest timestamp being rolled back.
//!    Rollback applies old values in reverse timestamp order, entries in
//!    reverse order within a sequence (Section 5.1).
//! 4. Zero the log regions so the restarted program begins with clean logs.
//!
//! The paper's artifact implements the logging needed for recovery but not
//! recovery itself ("we have not implemented the actual recovery logic,
//! leaving it and its evaluation to future work", Section 6); this module
//! implements it so the crash-injection tests can close the loop.

use std::error::Error;
use std::fmt;

use crafty_common::{PAddr, Timestamp};
use crafty_pmem::PersistentImage;

use crate::undo_log::{decode, Entry, LogDirectory, LogGeometry, SlotState};

/// A fully persisted sequence reconstructed from a thread's log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sequence {
    /// The sequence timestamp (LOGGED time, overwritten by COMMITTED time).
    pub ts: Timestamp,
    /// Undo entries in append (program) order.
    pub entries: Vec<(PAddr, u64)>,
}

/// Statistics describing what recovery did.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RecoveryReport {
    /// Number of per-thread logs scanned.
    pub threads_scanned: usize,
    /// Fully persisted sequences found across all logs.
    pub sequences_found: usize,
    /// Sequences rolled back (per-thread latest plus the timestamp cut).
    pub sequences_rolled_back: usize,
    /// Individual `<addr, oldValue>` entries applied during rollback.
    pub entries_rolled_back: usize,
    /// The timestamp cut: every sequence at or after it was rolled back.
    pub cutoff_ts: Option<Timestamp>,
}

/// Why recovery could not run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RecoveryError {
    /// No log directory was found at the given address — either the crash
    /// predates engine construction or the address is wrong.
    MissingDirectory {
        /// The address that was probed.
        at: PAddr,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::MissingDirectory { at } => {
                write!(f, "no persisted log directory found at {at}")
            }
        }
    }
}

impl Error for RecoveryError {}

/// Parses one thread's circular log from a crashed image into its fully
/// persisted sequences, oldest first.
pub fn parse_sequences(image: &PersistentImage, geometry: &LogGeometry) -> Vec<Sequence> {
    let capacity = geometry.capacity;
    if capacity == 0 {
        return Vec::new();
    }
    let states: Vec<SlotState> = (0..capacity)
        .map(|s| geometry.read_slot(image, s))
        .collect();

    // Current-lap parity: the parity of the first fully persisted slot.
    let Some(current_parity) = states.iter().find_map(|s| match s {
        SlotState::Valid { parity, .. } => Some(*parity),
        _ => None,
    }) else {
        return Vec::new();
    };

    // The append head: the first slot that is absent or carries the other
    // lap's parity. Slots at and after it (wrapping) were appended before
    // the slots preceding it.
    let head = (0..capacity)
        .find(|&i| match states[i as usize] {
            SlotState::Absent => true,
            SlotState::Torn => false,
            SlotState::Valid { parity, .. } => parity != current_parity,
        })
        .unwrap_or(capacity);

    let order: Vec<u64> = (head..capacity).chain(0..head).collect();

    let mut sequences = Vec::new();
    let mut pending: Vec<(PAddr, u64)> = Vec::new();
    let mut group_broken = false;
    // Whether the entries accumulated so far are preceded by a persisted
    // marker (or by virgin log space). The oldest visible group after a
    // wraparound lost its predecessor, so it starts out unanchored.
    let mut anchored = false;
    for &slot in &order {
        match states[slot as usize] {
            SlotState::Absent => {
                pending.clear();
                group_broken = false;
                anchored = true;
            }
            SlotState::Torn => {
                group_broken = true;
            }
            SlotState::Valid { entry, .. } => match entry {
                Entry::Data { addr, old_value } => pending.push((addr, old_value)),
                Entry::Marker { ts, .. } => {
                    if anchored && !group_broken {
                        sequences.push(Sequence {
                            ts,
                            entries: std::mem::take(&mut pending),
                        });
                    } else {
                        pending.clear();
                    }
                    group_broken = false;
                    anchored = true;
                }
            },
        }
    }
    sequences
}

/// Runs the recovery observer over a crashed image. `directory_addr` is the
/// address the engine's [`crate::Crafty::directory_addr`] reported (the
/// first persistent allocation the engine made).
///
/// # Errors
///
/// Returns [`RecoveryError::MissingDirectory`] if no directory is persisted
/// at `directory_addr`.
pub fn recover(
    image: &mut PersistentImage,
    directory_addr: PAddr,
) -> Result<RecoveryReport, RecoveryError> {
    let directory = LogDirectory::load(image, directory_addr)
        .ok_or(RecoveryError::MissingDirectory { at: directory_addr })?;

    let per_thread: Vec<Vec<Sequence>> = directory
        .logs
        .iter()
        .map(|g| parse_sequences(image, g))
        .collect();
    let sequences_found = per_thread.iter().map(Vec::len).sum();

    // The timestamp cut: the earliest timestamp among each thread's latest
    // sequence. Everything at or after it is rolled back.
    let cutoff = per_thread
        .iter()
        .filter_map(|seqs| seqs.last().map(|s| s.ts))
        .min();

    let mut report = RecoveryReport {
        threads_scanned: directory.logs.len(),
        sequences_found,
        sequences_rolled_back: 0,
        entries_rolled_back: 0,
        cutoff_ts: cutoff,
    };

    if let Some(cutoff) = cutoff {
        let mut to_roll_back: Vec<&Sequence> = per_thread
            .iter()
            .flatten()
            .filter(|s| s.ts >= cutoff)
            .collect();
        // Reverse timestamp order: newest first (Section 5.1).
        to_roll_back.sort_by_key(|s| std::cmp::Reverse(s.ts));
        for seq in to_roll_back {
            for &(addr, old_value) in seq.entries.iter().rev() {
                image.write(addr, old_value);
                report.entries_rolled_back += 1;
            }
            report.sequences_rolled_back += 1;
        }
    }

    // Start the next run with clean logs so stale entries cannot be
    // confused with new ones after the clock restarts.
    for g in &directory.logs {
        for w in 0..g.words() {
            image.write(g.start.add(w), 0);
        }
    }

    Ok(report)
}

/// Convenience wrapper: checks whether the image still decodes every log
/// slot as absent (i.e. [`recover`] has zeroed the logs).
pub fn logs_are_clean(image: &PersistentImage, directory_addr: PAddr) -> bool {
    let Some(directory) = LogDirectory::load(image, directory_addr) else {
        return false;
    };
    directory
        .logs
        .iter()
        .all(|g| (0..g.capacity).all(|s| matches!(g.read_slot(image, s), SlotState::Absent)))
}

/// Decodes a raw slot (two words) — re-exported for diagnostic tools.
pub fn decode_slot(meta: u64, value: u64) -> SlotState {
    decode(meta, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::undo_log::{LogGeometry, MarkerKind, UndoLog};
    use crafty_common::BreakdownRecorder;
    use crafty_htm::{HtmConfig, HtmRuntime};
    use crafty_pmem::{MemorySpace, PmemConfig};
    use std::sync::Arc;

    struct Fixture {
        mem: Arc<MemorySpace>,
        htm: HtmRuntime,
        logs: Vec<UndoLog>,
        dir_addr: PAddr,
    }

    fn fixture(threads: usize, capacity: u64) -> Fixture {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let htm = HtmRuntime::new(
            Arc::clone(&mem),
            HtmConfig::skylake(),
            Arc::new(BreakdownRecorder::new()),
        );
        let dir_addr = mem.reserve_persistent(LogDirectory::words_needed(threads));
        let mut logs = Vec::new();
        for _ in 0..threads {
            let start = mem.reserve_persistent(capacity * 2);
            let head = mem.reserve_volatile(1);
            logs.push(UndoLog::new(LogGeometry { start, capacity }, head));
        }
        LogDirectory {
            logs: logs.iter().map(|l| l.geometry()).collect(),
        }
        .store(&mem, 0, dir_addr);
        Fixture {
            mem,
            htm,
            logs,
            dir_addr,
        }
    }

    /// Appends a fully persisted sequence non-transactionally and persists
    /// it, emulating a completed Log (+Redo) for the given writes.
    fn persist_sequence(f: &Fixture, tid: usize, entries: &[(PAddr, u64)], ts: u64) {
        let info = f.logs[tid].append_sequence_nontx(
            &f.htm,
            entries,
            MarkerKind::Committed,
            Timestamp::from_raw(ts),
        );
        f.logs[tid].flush_entries(&f.mem, 0, info.first_abs, info.marker_abs);
        f.mem.drain(0);
    }

    #[test]
    fn empty_logs_yield_no_sequences_and_no_rollback() {
        let f = fixture(2, 16);
        let mut image = f.mem.crash();
        let report = recover(&mut image, f.dir_addr).expect("recover");
        assert_eq!(report.threads_scanned, 2);
        assert_eq!(report.sequences_found, 0);
        assert_eq!(report.sequences_rolled_back, 0);
        assert_eq!(report.cutoff_ts, None);
    }

    #[test]
    fn missing_directory_is_an_error() {
        let f = fixture(1, 16);
        let mut image = f.mem.crash();
        let err = recover(&mut image, PAddr::new(4096)).unwrap_err();
        assert!(matches!(err, RecoveryError::MissingDirectory { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn parse_finds_sequences_in_append_order() {
        let f = fixture(1, 16);
        let a = PAddr::new(2048);
        persist_sequence(&f, 0, &[(a, 1), (a.add(1), 2)], 5);
        persist_sequence(&f, 0, &[(a, 3)], 9);
        let image = f.mem.crash();
        let seqs = parse_sequences(&image, &f.logs[0].geometry());
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].ts.raw(), 5);
        assert_eq!(seqs[0].entries, vec![(a, 1), (a.add(1), 2)]);
        assert_eq!(seqs[1].ts.raw(), 9);
    }

    #[test]
    fn latest_sequence_of_each_thread_is_rolled_back() {
        let f = fixture(1, 16);
        let x = PAddr::new(2048);
        // Transaction 1: x: 0 -> 10 (old value 0 logged), fully persisted.
        persist_sequence(&f, 0, &[(x, 0)], 3);
        f.mem.write(x, 10);
        f.mem.persist(0, x);
        // Transaction 2: x: 10 -> 20 (old value 10 logged); its data write
        // only partially persisted (never flushed).
        persist_sequence(&f, 0, &[(x, 10)], 7);
        f.mem.write(x, 20);
        // no flush of x — emulates the flush-without-drain window
        let mut image = f.mem.crash();
        assert_eq!(image.read(x), 10);
        let report = recover(&mut image, f.dir_addr).expect("recover");
        // The latest sequence (ts 7) is rolled back: x returns to 10, the
        // state after transaction 1 — a consistent prefix.
        assert_eq!(image.read(x), 10);
        assert_eq!(report.sequences_rolled_back, 1);
        assert_eq!(report.cutoff_ts, Some(Timestamp::from_raw(7)));
        assert!(logs_are_clean(&image, f.dir_addr));
    }

    #[test]
    fn timestamp_cut_rolls_back_other_threads_later_sequences() {
        let f = fixture(2, 16);
        let x = PAddr::new(2048);
        let y = PAddr::new(2056);
        // Thread 0 commits at ts 4 (x: 0 -> 1, persisted).
        persist_sequence(&f, 0, &[(x, 0)], 4);
        f.mem.write(x, 1);
        f.mem.persist(0, x);
        // Thread 1 commits at ts 6 (y: 0 -> 2, persisted).
        persist_sequence(&f, 1, &[(y, 0)], 6);
        f.mem.write(y, 2);
        f.mem.persist(0, y);
        let mut image = f.mem.crash();
        let report = recover(&mut image, f.dir_addr).expect("recover");
        // Cut = min(4, 6) = 4: both sequences are rolled back.
        assert_eq!(report.cutoff_ts, Some(Timestamp::from_raw(4)));
        assert_eq!(report.sequences_rolled_back, 2);
        assert_eq!(image.read(x), 0);
        assert_eq!(image.read(y), 0);
    }

    #[test]
    fn earlier_sequences_below_the_cut_survive() {
        let f = fixture(2, 16);
        let x = PAddr::new(2048);
        let y = PAddr::new(2056);
        // Thread 0: two committed transactions on x.
        persist_sequence(&f, 0, &[(x, 0)], 2);
        f.mem.write(x, 1);
        f.mem.persist(0, x);
        persist_sequence(&f, 0, &[(x, 1)], 8);
        f.mem.write(x, 2);
        f.mem.persist(0, x);
        // Thread 1: one committed transaction on y at ts 5.
        persist_sequence(&f, 1, &[(y, 0)], 5);
        f.mem.write(y, 7);
        f.mem.persist(0, y);
        let mut image = f.mem.crash();
        let report = recover(&mut image, f.dir_addr).expect("recover");
        // Cut = min(8, 5) = 5: thread 0's ts-8 and thread 1's ts-5 roll
        // back; thread 0's ts-2 survives.
        assert_eq!(report.cutoff_ts, Some(Timestamp::from_raw(5)));
        assert_eq!(report.sequences_rolled_back, 2);
        assert_eq!(image.read(x), 1, "transaction at ts 2 must survive");
        assert_eq!(image.read(y), 0);
    }

    #[test]
    fn torn_marker_invalidates_only_its_own_sequence() {
        let f = fixture(1, 16);
        let x = PAddr::new(2048);
        persist_sequence(&f, 0, &[(x, 0)], 3);
        f.mem.write(x, 1);
        f.mem.persist(0, x);
        // Handcraft a second sequence whose marker is torn: write the data
        // entry and only the meta word of the marker.
        let g = f.logs[0].geometry();
        let data_slot = g.slot_addr(2);
        let marker_slot = g.slot_addr(3);
        // Data entry for x with old value 1, parity 0, encoded by the crate.
        let info = f.logs[0].append_sequence_nontx(
            &f.htm,
            &[(x, 1)],
            MarkerKind::Logged,
            Timestamp::from_raw(9),
        );
        assert_eq!(info.marker_abs, 3);
        f.logs[0].flush_entries(&f.mem, 0, info.first_abs, info.marker_abs);
        f.mem.drain(0);
        let mut image = f.mem.crash();
        // Tear the marker: flip its value word's parity bit so the two
        // words disagree.
        let torn_value = image.read(marker_slot.add(1)) ^ 1;
        image.write(marker_slot.add(1), torn_value);
        assert!(matches!(
            decode_slot(image.read(marker_slot), image.read(marker_slot.add(1))),
            SlotState::Torn
        ));
        assert!(matches!(
            decode_slot(image.read(data_slot), image.read(data_slot.add(1))),
            SlotState::Valid { .. }
        ));
        let report = recover(&mut image, f.dir_addr).expect("recover");
        // Only the first (intact) sequence exists; it is the latest, so it
        // is rolled back. The torn sequence's data entry must NOT have been
        // applied on its own.
        assert_eq!(report.sequences_found, 1);
        assert_eq!(report.sequences_rolled_back, 1);
        assert_eq!(image.read(x), 0);
    }

    #[test]
    fn wrapped_log_discards_the_unanchored_oldest_group() {
        let f = fixture(1, 8); // tiny log: 8 entries
        let x = PAddr::new(2048);
        // Each sequence takes 3 slots (2 data + marker); three sequences
        // wrap the 8-entry log.
        persist_sequence(&f, 0, &[(x, 0), (x.add(1), 0)], 2);
        persist_sequence(&f, 0, &[(x, 1), (x.add(1), 1)], 4);
        persist_sequence(&f, 0, &[(x, 2), (x.add(1), 2)], 6);
        let image = f.mem.crash();
        let seqs = parse_sequences(&image, &f.logs[0].geometry());
        // The first sequence was partially overwritten by the third; only
        // fully intact, anchored sequences may be reported.
        assert!(seqs.iter().all(|s| s.entries.len() == 2));
        assert!(seqs.iter().any(|s| s.ts.raw() == 6));
        assert!(
            !seqs.iter().any(|s| s.ts.raw() == 2),
            "the overwritten oldest sequence must not reappear"
        );
    }

    #[test]
    fn recovery_zeroes_logs_for_the_next_run() {
        let f = fixture(1, 16);
        let x = PAddr::new(2048);
        persist_sequence(&f, 0, &[(x, 0)], 2);
        let mut image = f.mem.crash();
        recover(&mut image, f.dir_addr).expect("recover");
        assert!(logs_are_clean(&image, f.dir_addr));
        // A second recovery over the cleaned image is a no-op.
        let report = recover(&mut image, f.dir_addr).expect("recover");
        assert_eq!(report.sequences_found, 0);
    }
}
