//! The recovery observer (Section 5).
//!
//! After a crash, [`recover`] restores the persistent image to a state
//! corresponding to a prefix of the committed-transaction order:
//!
//! 1. Read the persistent log directory to find every thread's circular
//!    undo log.
//! 2. Parse each log into *fully persisted sequences*: every
//!    LOGGED/COMMITTED marker records its sequence's entry count, and a
//!    sequence is accepted only when all of those slots hold current-lap
//!    `<addr, oldValue>` entries. Wraparound parity codes distinguish the
//!    current lap from stale or torn slots (Section 5.2), and the count
//!    rejects sequences that lost entries to the crash — those were never
//!    drained, so their in-place writes never started (see
//!    [`parse_sequences`]).
//! 3. Roll back the *latest* sequence of every thread (its writes may have
//!    only partially persisted because Crafty flushes without draining),
//!    plus — to reach a globally consistent cut — every sequence whose
//!    timestamp is at or after the earliest timestamp being rolled back.
//!    Rollback applies old values in reverse timestamp order, entries in
//!    reverse order within a sequence (Section 5.1).
//! 4. Zero the log regions so the restarted program begins with clean
//!    logs, bracketed by a persistent phase word so that a crash *during*
//!    recovery itself converges on re-run (see [`recover_interrupted`]).
//!
//! The paper's artifact implements the logging needed for recovery but not
//! recovery itself ("we have not implemented the actual recovery logic,
//! leaving it and its evaluation to future work", Section 6); this module
//! implements it so the crash-injection tests can close the loop.

use std::error::Error;
use std::fmt;

use crafty_common::{PAddr, Timestamp};
use crafty_pmem::PersistentImage;

use crate::undo_log::{decode, Entry, LogDirectory, LogGeometry, SlotState, RECOVERY_FLAG_WORD};

/// Value of the directory's recovery phase word while log zeroing is in
/// flight. Set only after a recovery pass has applied its *entire*
/// rollback, cleared again once every log slot is zeroed.
const FLAG_ZEROING: u64 = 1;

/// A fully persisted sequence reconstructed from a thread's log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sequence {
    /// The sequence timestamp (LOGGED time, overwritten by COMMITTED time).
    pub ts: Timestamp,
    /// Undo entries in append (program) order.
    pub entries: Vec<(PAddr, u64)>,
}

/// Statistics describing what recovery did.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RecoveryReport {
    /// Number of per-thread logs scanned.
    pub threads_scanned: usize,
    /// Fully persisted sequences found across all logs.
    pub sequences_found: usize,
    /// Sequences rolled back (per-thread latest plus the timestamp cut).
    pub sequences_rolled_back: usize,
    /// Individual `<addr, oldValue>` entries applied during rollback.
    pub entries_rolled_back: usize,
    /// The timestamp cut: every sequence at or after it was rolled back.
    pub cutoff_ts: Option<Timestamp>,
}

/// Why recovery could not run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RecoveryError {
    /// No log directory was found at the given address — either the crash
    /// predates engine construction or the address is wrong.
    MissingDirectory {
        /// The address that was probed.
        at: PAddr,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::MissingDirectory { at } => {
                write!(f, "no persisted log directory found at {at}")
            }
        }
    }
}

impl Error for RecoveryError {}

/// Decodes every slot of one log from the image.
fn slot_states(image: &PersistentImage, geometry: &LogGeometry) -> Vec<SlotState> {
    (0..geometry.capacity)
        .map(|s| geometry.read_slot(image, s))
        .collect()
}

/// Parses one thread's circular log from a crashed image into its fully
/// persisted sequences, oldest first.
///
/// Every marker records the number of data entries its sequence appended,
/// so each sequence is checked independently: anchor at the marker and
/// walk backward exactly that many slots (flipping the expected lap parity
/// when the walk wraps past slot 0). The sequence is accepted only if
/// every one of those slots holds a current-lap data entry. Any hole
/// (dropped line), torn word, or stale-lap slot means the append never
/// fully persisted — Crafty drains a sequence's undo entries before
/// performing any of its in-place writes, so such a transaction never
/// modified program data and discarding it is the correct recovery. This
/// also covers circular-wraparound truncation: a partially overwritten old
/// sequence fails its count check because its leading slots now carry the
/// newer lap.
///
/// Per-thread timestamps are strictly increasing in append order, so the
/// accepted sequences are returned sorted by timestamp and the last one is
/// the thread's latest.
pub fn parse_sequences(image: &PersistentImage, geometry: &LogGeometry) -> Vec<Sequence> {
    let capacity = geometry.capacity;
    if capacity == 0 {
        return Vec::new();
    }
    let states = slot_states(image, geometry);
    let mut sequences: Vec<Sequence> = Vec::new();
    for (slot, state) in states.iter().enumerate() {
        let SlotState::Valid {
            parity,
            entry: Entry::Marker {
                ts, data_entries, ..
            },
        } = *state
        else {
            continue;
        };
        if data_entries >= capacity {
            // Cannot fit in this log at all: a corrupt count.
            continue;
        }
        let mut entries: Vec<(PAddr, u64)> = Vec::with_capacity(data_entries as usize);
        let mut expected_parity = parity;
        let mut at = slot as u64;
        let complete = (0..data_entries).all(|_| {
            if at == 0 {
                at = capacity - 1;
                expected_parity ^= 1;
            } else {
                at -= 1;
            }
            match states[at as usize] {
                SlotState::Valid {
                    parity: p,
                    entry: Entry::Data { addr, old_value },
                } if p == expected_parity => {
                    entries.push((addr, old_value));
                    true
                }
                _ => false,
            }
        });
        if complete {
            entries.reverse();
            sequences.push(Sequence { ts, entries });
        }
    }
    sequences.sort_by_key(|s| s.ts);
    sequences
}

/// Outcome of a budget-limited recovery pass (see [`recover_interrupted`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InterruptedRecovery {
    /// What the pass did within its budget. `entries_rolled_back` counts
    /// only undo entries actually applied; `sequences_rolled_back` counts
    /// sequences whose entries were *all* applied.
    pub report: RecoveryReport,
    /// Total image writes performed (rollback entries plus log-zeroing
    /// words).
    pub writes_applied: u64,
    /// True when the pass finished without exhausting its budget — i.e.
    /// this was a complete recovery.
    pub completed: bool,
}

/// An image writer that stops after a fixed number of writes, emulating a
/// power failure partway through recovery itself. Writes past the budget
/// are silently skipped (after a real crash they simply never happened).
struct BudgetedWriter<'a> {
    image: &'a mut PersistentImage,
    remaining: u64,
    applied: u64,
    skipped: bool,
}

impl BudgetedWriter<'_> {
    /// Performs the write if budget remains; returns whether it happened.
    fn write(&mut self, addr: PAddr, value: u64) -> bool {
        if self.remaining == 0 {
            self.skipped = true;
            return false;
        }
        self.remaining -= 1;
        self.applied += 1;
        self.image.write(addr, value);
        true
    }
}

/// Runs the recovery observer over a crashed image. `directory_addr` is the
/// address the engine's [`crate::Crafty::directory_addr`] reported (the
/// first persistent allocation the engine made).
///
/// # Errors
///
/// Returns [`RecoveryError::MissingDirectory`] if no directory is persisted
/// at `directory_addr`.
pub fn recover(
    image: &mut PersistentImage,
    directory_addr: PAddr,
) -> Result<RecoveryReport, RecoveryError> {
    let run = recover_interrupted(image, directory_addr, u64::MAX)?;
    debug_assert!(run.completed, "an unbounded recovery always completes");
    Ok(run.report)
}

/// Like [`recover`], but performs at most `write_budget` image writes and
/// then stops — emulating a crash *during recovery*. Re-running recovery
/// on the resulting image always converges to the image an uninterrupted
/// recovery produces, via a two-phase protocol around the directory's
/// persistent recovery phase word:
///
/// * **Rollback phase** (phase word clear): while any rollback write is
///   still outstanding the logs are untouched, so a re-run re-parses the
///   *same* sequences and re-applies the *same* rollback from the top —
///   old-value writes are idempotent and applied newest-first, so the
///   final value of every address is the oldest logged old value either
///   way.
/// * **Zeroing phase** (phase word set): the phase word is set only once
///   the rollback is fully applied, and cleared only after every log slot
///   is zeroed. A pass that finds it set does *not* re-parse the logs —
///   a half-zeroed log can present a rolled-back sequence stripped of the
///   older sequence that shared its addresses, and re-applying it would
///   clobber the completed rollback. Instead the pass only finishes the
///   zeroing and clears the phase word.
///
/// The re-run's timestamp cut therefore never moves below the interrupted
/// run's cut, and no sequence that survived the first cut is ever rolled
/// back by a later pass.
///
/// # Errors
///
/// Returns [`RecoveryError::MissingDirectory`] if no directory is persisted
/// at `directory_addr`.
pub fn recover_interrupted(
    image: &mut PersistentImage,
    directory_addr: PAddr,
    write_budget: u64,
) -> Result<InterruptedRecovery, RecoveryError> {
    let directory = LogDirectory::load(image, directory_addr)
        .ok_or(RecoveryError::MissingDirectory { at: directory_addr })?;
    let flag_addr = directory_addr.add(RECOVERY_FLAG_WORD);
    let resuming = image.read(flag_addr) == FLAG_ZEROING;

    // With the phase word set, a previous pass already applied its whole
    // rollback and died zeroing the logs; the half-zeroed content must not
    // be parsed (let alone rolled back) again.
    let per_thread: Vec<Vec<Sequence>> = if resuming {
        Vec::new()
    } else {
        directory
            .logs
            .iter()
            .map(|g| parse_sequences(image, g))
            .collect()
    };
    let sequences_found = per_thread.iter().map(Vec::len).sum();

    // The timestamp cut: the earliest timestamp among each thread's latest
    // sequence. Everything at or after it is rolled back.
    let cutoff = per_thread
        .iter()
        .filter_map(|seqs| seqs.last().map(|s| s.ts))
        .min();

    let mut report = RecoveryReport {
        threads_scanned: directory.logs.len(),
        sequences_found,
        sequences_rolled_back: 0,
        entries_rolled_back: 0,
        cutoff_ts: cutoff,
    };
    let mut writer = BudgetedWriter {
        image,
        remaining: write_budget,
        applied: 0,
        skipped: false,
    };

    if let Some(cutoff) = cutoff {
        let mut to_roll_back: Vec<&Sequence> = per_thread
            .iter()
            .flatten()
            .filter(|s| s.ts >= cutoff)
            .collect();
        // Reverse timestamp order: newest first (Section 5.1).
        to_roll_back.sort_by_key(|s| std::cmp::Reverse(s.ts));
        for seq in to_roll_back {
            let mut whole_sequence = true;
            for &(addr, old_value) in seq.entries.iter().rev() {
                if writer.write(addr, old_value) {
                    report.entries_rolled_back += 1;
                } else {
                    whole_sequence = false;
                }
            }
            if whole_sequence {
                report.sequences_rolled_back += 1;
            }
        }
    }

    // Enter the zeroing phase. The budgeted writer skips this (and every
    // later write) if the budget died mid-rollback, so a set phase word
    // always means the rollback above landed completely.
    if !resuming {
        writer.write(flag_addr, FLAG_ZEROING);
    }

    // Start the next run with clean logs so stale entries cannot be
    // confused with new ones after the clock restarts. Each slot's meta
    // word is cleared before its value word: a slot with a zero meta word
    // already decodes as absent, so no intermediate state ever presents a
    // torn slot.
    for g in &directory.logs {
        for slot in 0..g.capacity {
            let a = g.slot_addr(slot);
            writer.write(a, 0);
            writer.write(a.add(1), 0);
        }
    }

    // Leave the zeroing phase: from here a fresh pass may parse (the now
    // empty) logs again.
    writer.write(flag_addr, 0);

    let completed = !writer.skipped;
    let writes_applied = writer.applied;
    Ok(InterruptedRecovery {
        report,
        writes_applied,
        completed,
    })
}

/// Convenience wrapper: checks whether the image still decodes every log
/// slot as absent (i.e. [`recover`] has zeroed the logs).
pub fn logs_are_clean(image: &PersistentImage, directory_addr: PAddr) -> bool {
    let Some(directory) = LogDirectory::load(image, directory_addr) else {
        return false;
    };
    directory
        .logs
        .iter()
        .all(|g| (0..g.capacity).all(|s| matches!(g.read_slot(image, s), SlotState::Absent)))
}

/// Decodes a raw slot (two words) — re-exported for diagnostic tools.
pub fn decode_slot(meta: u64, value: u64) -> SlotState {
    decode(meta, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::undo_log::{LogGeometry, MarkerKind, UndoLog};
    use crafty_common::BreakdownRecorder;
    use crafty_htm::{HtmConfig, HtmRuntime};
    use crafty_pmem::{MemorySpace, PmemConfig};
    use std::sync::Arc;

    struct Fixture {
        mem: Arc<MemorySpace>,
        htm: HtmRuntime,
        logs: Vec<UndoLog>,
        dir_addr: PAddr,
    }

    fn fixture(threads: usize, capacity: u64) -> Fixture {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let htm = HtmRuntime::new(
            Arc::clone(&mem),
            HtmConfig::skylake(),
            Arc::new(BreakdownRecorder::new()),
        );
        let dir_addr = mem.reserve_persistent(LogDirectory::words_needed(threads));
        let mut logs = Vec::new();
        for _ in 0..threads {
            let start = mem.reserve_persistent(capacity * 2);
            let head = mem.reserve_volatile(1);
            logs.push(UndoLog::new(LogGeometry { start, capacity }, head));
        }
        LogDirectory {
            logs: logs.iter().map(|l| l.geometry()).collect(),
        }
        .store(&mem, 0, dir_addr);
        Fixture {
            mem,
            htm,
            logs,
            dir_addr,
        }
    }

    /// Appends a fully persisted sequence non-transactionally and persists
    /// it, emulating a completed Log (+Redo) for the given writes.
    fn persist_sequence(f: &Fixture, tid: usize, entries: &[(PAddr, u64)], ts: u64) {
        let info = f.logs[tid].append_sequence_nontx(
            &f.htm,
            entries,
            MarkerKind::Committed,
            Timestamp::from_raw(ts),
        );
        f.logs[tid].flush_entries(&f.mem, 0, info.first_abs, info.marker_abs);
        f.mem.drain(0);
    }

    #[test]
    fn empty_logs_yield_no_sequences_and_no_rollback() {
        let f = fixture(2, 16);
        let mut image = f.mem.crash();
        let report = recover(&mut image, f.dir_addr).expect("recover");
        assert_eq!(report.threads_scanned, 2);
        assert_eq!(report.sequences_found, 0);
        assert_eq!(report.sequences_rolled_back, 0);
        assert_eq!(report.cutoff_ts, None);
    }

    #[test]
    fn missing_directory_is_an_error() {
        let f = fixture(1, 16);
        let mut image = f.mem.crash();
        let err = recover(&mut image, PAddr::new(4096)).unwrap_err();
        assert!(matches!(err, RecoveryError::MissingDirectory { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn parse_finds_sequences_in_append_order() {
        let f = fixture(1, 16);
        let a = PAddr::new(2048);
        persist_sequence(&f, 0, &[(a, 1), (a.add(1), 2)], 5);
        persist_sequence(&f, 0, &[(a, 3)], 9);
        let image = f.mem.crash();
        let seqs = parse_sequences(&image, &f.logs[0].geometry());
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].ts.raw(), 5);
        assert_eq!(seqs[0].entries, vec![(a, 1), (a.add(1), 2)]);
        assert_eq!(seqs[1].ts.raw(), 9);
    }

    #[test]
    fn latest_sequence_of_each_thread_is_rolled_back() {
        let f = fixture(1, 16);
        let x = PAddr::new(2048);
        // Transaction 1: x: 0 -> 10 (old value 0 logged), fully persisted.
        persist_sequence(&f, 0, &[(x, 0)], 3);
        f.mem.write(x, 10);
        f.mem.persist(0, x);
        // Transaction 2: x: 10 -> 20 (old value 10 logged); its data write
        // only partially persisted (never flushed).
        persist_sequence(&f, 0, &[(x, 10)], 7);
        f.mem.write(x, 20);
        // no flush of x — emulates the flush-without-drain window
        let mut image = f.mem.crash();
        assert_eq!(image.read(x), 10);
        let report = recover(&mut image, f.dir_addr).expect("recover");
        // The latest sequence (ts 7) is rolled back: x returns to 10, the
        // state after transaction 1 — a consistent prefix.
        assert_eq!(image.read(x), 10);
        assert_eq!(report.sequences_rolled_back, 1);
        assert_eq!(report.cutoff_ts, Some(Timestamp::from_raw(7)));
        assert!(logs_are_clean(&image, f.dir_addr));
    }

    #[test]
    fn timestamp_cut_rolls_back_other_threads_later_sequences() {
        let f = fixture(2, 16);
        let x = PAddr::new(2048);
        let y = PAddr::new(2056);
        // Thread 0 commits at ts 4 (x: 0 -> 1, persisted).
        persist_sequence(&f, 0, &[(x, 0)], 4);
        f.mem.write(x, 1);
        f.mem.persist(0, x);
        // Thread 1 commits at ts 6 (y: 0 -> 2, persisted).
        persist_sequence(&f, 1, &[(y, 0)], 6);
        f.mem.write(y, 2);
        f.mem.persist(0, y);
        let mut image = f.mem.crash();
        let report = recover(&mut image, f.dir_addr).expect("recover");
        // Cut = min(4, 6) = 4: both sequences are rolled back.
        assert_eq!(report.cutoff_ts, Some(Timestamp::from_raw(4)));
        assert_eq!(report.sequences_rolled_back, 2);
        assert_eq!(image.read(x), 0);
        assert_eq!(image.read(y), 0);
    }

    #[test]
    fn earlier_sequences_below_the_cut_survive() {
        let f = fixture(2, 16);
        let x = PAddr::new(2048);
        let y = PAddr::new(2056);
        // Thread 0: two committed transactions on x.
        persist_sequence(&f, 0, &[(x, 0)], 2);
        f.mem.write(x, 1);
        f.mem.persist(0, x);
        persist_sequence(&f, 0, &[(x, 1)], 8);
        f.mem.write(x, 2);
        f.mem.persist(0, x);
        // Thread 1: one committed transaction on y at ts 5.
        persist_sequence(&f, 1, &[(y, 0)], 5);
        f.mem.write(y, 7);
        f.mem.persist(0, y);
        let mut image = f.mem.crash();
        let report = recover(&mut image, f.dir_addr).expect("recover");
        // Cut = min(8, 5) = 5: thread 0's ts-8 and thread 1's ts-5 roll
        // back; thread 0's ts-2 survives.
        assert_eq!(report.cutoff_ts, Some(Timestamp::from_raw(5)));
        assert_eq!(report.sequences_rolled_back, 2);
        assert_eq!(image.read(x), 1, "transaction at ts 2 must survive");
        assert_eq!(image.read(y), 0);
    }

    #[test]
    fn torn_marker_invalidates_only_its_own_sequence() {
        let f = fixture(1, 16);
        let x = PAddr::new(2048);
        persist_sequence(&f, 0, &[(x, 0)], 3);
        f.mem.write(x, 1);
        f.mem.persist(0, x);
        // Handcraft a second sequence whose marker is torn: write the data
        // entry and only the meta word of the marker.
        let g = f.logs[0].geometry();
        let data_slot = g.slot_addr(2);
        let marker_slot = g.slot_addr(3);
        // Data entry for x with old value 1, parity 0, encoded by the crate.
        let info = f.logs[0].append_sequence_nontx(
            &f.htm,
            &[(x, 1)],
            MarkerKind::Logged,
            Timestamp::from_raw(9),
        );
        assert_eq!(info.marker_abs, 3);
        f.logs[0].flush_entries(&f.mem, 0, info.first_abs, info.marker_abs);
        f.mem.drain(0);
        let mut image = f.mem.crash();
        // Tear the marker: flip its value word's parity bit so the two
        // words disagree.
        let torn_value = image.read(marker_slot.add(1)) ^ 1;
        image.write(marker_slot.add(1), torn_value);
        assert!(matches!(
            decode_slot(image.read(marker_slot), image.read(marker_slot.add(1))),
            SlotState::Torn
        ));
        assert!(matches!(
            decode_slot(image.read(data_slot), image.read(data_slot.add(1))),
            SlotState::Valid { .. }
        ));
        let report = recover(&mut image, f.dir_addr).expect("recover");
        // Only the first (intact) sequence exists; it is the latest, so it
        // is rolled back. The torn sequence's data entry must NOT have been
        // applied on its own.
        assert_eq!(report.sequences_found, 1);
        assert_eq!(report.sequences_rolled_back, 1);
        assert_eq!(image.read(x), 0);
    }

    #[test]
    fn wrapped_log_discards_the_unanchored_oldest_group() {
        let f = fixture(1, 8); // tiny log: 8 entries
        let x = PAddr::new(2048);
        // Each sequence takes 3 slots (2 data + marker); three sequences
        // wrap the 8-entry log.
        persist_sequence(&f, 0, &[(x, 0), (x.add(1), 0)], 2);
        persist_sequence(&f, 0, &[(x, 1), (x.add(1), 1)], 4);
        persist_sequence(&f, 0, &[(x, 2), (x.add(1), 2)], 6);
        let image = f.mem.crash();
        let seqs = parse_sequences(&image, &f.logs[0].geometry());
        // The first sequence was partially overwritten by the third; only
        // fully intact, anchored sequences may be reported.
        assert!(seqs.iter().all(|s| s.entries.len() == 2));
        assert!(seqs.iter().any(|s| s.ts.raw() == 6));
        assert!(
            !seqs.iter().any(|s| s.ts.raw() == 2),
            "the overwritten oldest sequence must not reappear"
        );
    }

    #[test]
    fn recovery_zeroes_logs_for_the_next_run() {
        let f = fixture(1, 16);
        let x = PAddr::new(2048);
        persist_sequence(&f, 0, &[(x, 0)], 2);
        let mut image = f.mem.crash();
        recover(&mut image, f.dir_addr).expect("recover");
        assert!(logs_are_clean(&image, f.dir_addr));
        // A second recovery over the cleaned image is a no-op.
        let report = recover(&mut image, f.dir_addr).expect("recover");
        assert_eq!(report.sequences_found, 0);
    }

    /// Builds a two-thread fixture with committed-and-persisted work plus a
    /// partially persisted latest transaction, crashes, and returns the
    /// fixture and the two data addresses.
    fn interrupted_setup() -> (Fixture, PAddr, PAddr, PersistentImage) {
        let f = fixture(2, 16);
        let x = PAddr::new(2048);
        let y = PAddr::new(2056);
        // Thread 0: x: 0 -> 1 at ts 2 (persisted), then x: 1 -> 2 at ts 8
        // (data write never flushed).
        persist_sequence(&f, 0, &[(x, 0)], 2);
        f.mem.write(x, 1);
        f.mem.persist(0, x);
        persist_sequence(&f, 0, &[(x, 1)], 8);
        f.mem.write(x, 2);
        // Thread 1: y: 0 -> 7 at ts 5 (persisted).
        persist_sequence(&f, 1, &[(y, 0)], 5);
        f.mem.write(y, 7);
        f.mem.persist(0, y);
        let image = f.mem.crash();
        (f, x, y, image)
    }

    /// Satellite: recovery is idempotent — a second `recover` over an
    /// already-recovered image is a complete no-op (no sequences, no
    /// rollback, same bytes).
    #[test]
    fn recovery_is_idempotent() {
        let (f, _, _, mut image) = interrupted_setup();
        let first = recover(&mut image, f.dir_addr).expect("first recovery");
        assert!(first.sequences_rolled_back > 0, "fixture must roll back");
        let once = image.clone();
        let second = recover(&mut image, f.dir_addr).expect("second recovery");
        assert_eq!(second.sequences_found, 0);
        assert_eq!(second.sequences_rolled_back, 0);
        assert_eq!(second.entries_rolled_back, 0);
        assert_eq!(second.cutoff_ts, None);
        assert_eq!(image, once, "second recovery must not change the image");
    }

    /// Crash *during* recovery at every possible write count: re-running
    /// recovery on the interrupted image always converges to the image a
    /// single uninterrupted recovery produces.
    #[test]
    fn interrupted_recovery_converges_from_every_budget() {
        let (f, x, y, pristine) = interrupted_setup();
        // Reference: what a full recovery produces.
        let mut reference = pristine.clone();
        let full = recover_interrupted(&mut reference, f.dir_addr, u64::MAX).expect("full");
        assert!(full.completed);
        assert_eq!(reference.read(x), 1, "ts-2 survives, ts-8/ts-5 roll back");
        assert_eq!(reference.read(y), 0);
        for budget in 0..full.writes_applied + 2 {
            let mut image = pristine.clone();
            let run = recover_interrupted(&mut image, f.dir_addr, budget).expect("bounded");
            assert_eq!(run.writes_applied, budget.min(full.writes_applied));
            assert_eq!(run.completed, budget >= full.writes_applied);
            // Second (uninterrupted) recovery over the partial image.
            let rerun = recover(&mut image, f.dir_addr).expect("re-recovery");
            assert_eq!(
                image, reference,
                "budget {budget}: re-recovery must converge to the full-recovery image"
            );
            // The re-run's cut never drops below the first run's cut: no
            // transaction that survived the first cut is rolled back later.
            if let (Some(a), Some(b)) = (rerun.cutoff_ts, full.report.cutoff_ts) {
                assert!(a >= b, "budget {budget}: cutoff regressed");
            }
            assert!(logs_are_clean(&image, f.dir_addr));
            // And a third pass is a no-op.
            let third = recover(&mut image, f.dir_addr).expect("third");
            assert_eq!(third.sequences_found, 0);
        }
    }

    /// A budget that covers only part of the rollback applies exactly that
    /// many entry writes and reports the truncation.
    #[test]
    fn interrupted_recovery_reports_partial_rollback() {
        let (f, _, _, pristine) = interrupted_setup();
        let mut image = pristine.clone();
        let run = recover_interrupted(&mut image, f.dir_addr, 1).expect("bounded");
        assert!(!run.completed);
        assert_eq!(run.writes_applied, 1);
        assert_eq!(run.report.entries_rolled_back, 1);
        assert!(run.report.sequences_rolled_back <= 1);
        assert!(
            !logs_are_clean(&image, f.dir_addr),
            "zeroing cannot have finished on a 1-write budget"
        );
    }
}
