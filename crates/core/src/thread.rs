//! Per-thread execution of persistent transactions: the Log, Redo, and
//! Validate phases, the SGL fallback, and the thread-unsafe mode.
//!
//! The control flow follows Figures 3 and 4 of the paper:
//!
//! * **Thread-safe mode** — run the Log phase (nondestructive undo logging)
//!   in a hardware transaction, flush the undo entries, then try to commit
//!   the program's writes with the Redo phase; if its conservative
//!   timestamp check fails, re-execute the body under the Validate phase;
//!   after repeated failures fall back to the single global lock (SGL).
//! * **Thread-unsafe mode** — the program already provides atomicity, so
//!   the Redo phase runs unconditionally and Validate is never needed.
//!
//! One deliberate implementation difference from the paper is documented on
//! [`CraftyThread`]: inside SGL sections this implementation buffers the
//! body's writes instead of re-running chunked hardware transactions. The
//! guarantee (undo log persisted before any program write reaches
//! persistent memory) and the cost profile (a single drain per transaction)
//! are the same; only the mechanism differs, because closure-based bodies
//! cannot be resumed from a mid-transaction point the way the paper's
//! compiler-instrumented transactions can.

use crafty_common::trace::{self, AbortCause, TraceEventKind, TxnPhase};
use crafty_common::{CompletionPath, PAddr, TmThread, TxAbort, TxnBody, TxnOps, TxnReport};
use crafty_htm::{FallbackTxn, GenMap, HwTxn};
use crafty_pmem::{MemorySpace, PmemAllocator};

use crate::alloc_log::AllocLog;
use crate::config::{CraftyVariant, FallbackPolicy, ThreadingMode};
use crate::engine::{Crafty, ABORT_REDO_TS_CHECK, ABORT_SGL_HELD, ABORT_VALIDATE_MISMATCH};
use crate::undo_log::MarkerKind;

/// One program write captured by the Log phase.
#[derive(Clone, Copy, Debug)]
struct UndoRecord {
    addr: PAddr,
    old_value: u64,
    persistent: bool,
}

/// Metadata the Redo/Validate phases need about a logged transaction. The
/// bulk data — the undo records, the redo log, and the persistent entries —
/// lives in [`CraftyThread`]'s reusable buffers (`undo_buf`, `redo_buf`,
/// `entries_buf`), filled by the Log phase and read by the later phases, so
/// no per-transaction `Vec`s are allocated.
#[derive(Clone, Copy, Debug)]
struct LoggedSeq {
    marker_abs: u64,
    /// The Log phase's hardware-transaction commit version: the point in
    /// the global commit order at which the undo log entries (and the
    /// values they captured) became current. The Redo phase's `gLastRedoTS`
    /// check compares against this (see `redo_phase`).
    log_commit_version: u64,
    persistent_writes: u64,
}

enum LogOutcome {
    ReadOnly,
    Aborted,
    Logged(LoggedSeq),
}

enum CommitOutcome {
    Committed,
    Failed,
}

/// A worker thread's handle onto a [`Crafty`] engine.
///
/// Obtained from [`crafty_common::PersistentTm::register_thread`]; executes
/// persistent transactions via [`TmThread::execute`].
pub struct CraftyThread<'c> {
    engine: &'c Crafty,
    tid: usize,
    /// True while executing a durability-deferred transaction
    /// ([`TmThread::execute_deferred`]): the begin/commit SFENCE drains
    /// that would make the *previous* transaction's commit durable are
    /// skipped, so a group of transactions shares one drain barrier. The
    /// mandatory drains — undo entries durable before any in-place write —
    /// are unaffected.
    deferred_mode: bool,
    alloc_log: AllocLog,
    /// All writes of the current transaction in program order (persistent
    /// and volatile), captured by the Log phase. Reused across
    /// transactions; cleared (capacity-preserving) at each Log attempt.
    undo_buf: Vec<UndoRecord>,
    /// Redo log built while rolling back (reverse program order); the Redo
    /// phase applies it back-to-front. Reused across transactions.
    redo_buf: Vec<(PAddr, u64)>,
    /// The persistent subset of `undo_buf` as `<addr, oldValue>` pairs:
    /// what the Log phase appends to the undo log and what the Validate
    /// phase checks re-executed writes against. Reused across transactions.
    entries_buf: Vec<(PAddr, u64)>,
    /// Buffered write values for SGL / thread-unsafe fallback execution
    /// (word → value), with O(1) generation clear.
    buffered_vals: GenMap,
    /// First-write order of the buffered execution's distinct words.
    buffered_order: Vec<PAddr>,
    /// Persistent addresses written by the buffered execution.
    persistent_addrs_buf: Vec<PAddr>,
}

impl std::fmt::Debug for CraftyThread<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CraftyThread")
            .field("tid", &self.tid)
            .finish()
    }
}

impl<'c> CraftyThread<'c> {
    pub(crate) fn new(engine: &'c Crafty, tid: usize) -> Self {
        CraftyThread {
            engine,
            tid,
            deferred_mode: false,
            alloc_log: AllocLog::new(),
            undo_buf: Vec::new(),
            redo_buf: Vec::new(),
            entries_buf: Vec::new(),
            buffered_vals: GenMap::new(),
            buffered_order: Vec::new(),
            persistent_addrs_buf: Vec::new(),
        }
    }

    /// The worker thread id this handle belongs to.
    pub fn tid(&self) -> usize {
        self.tid
    }

    // ------------------------------------------------------------------
    // Thread-safe mode (Figure 3)
    // ------------------------------------------------------------------

    fn execute_thread_safe(&mut self, body: &mut TxnBody<'_>) -> TxnReport {
        let engine = self.engine;
        let mut hw_attempts = 0u32;
        let mut restarts = 0u32;
        if engine.cfg.force_fallback {
            return self.execute_fallback(body, &mut hw_attempts);
        }
        loop {
            if restarts > engine.cfg.max_phase_restarts {
                return self.execute_fallback(body, &mut hw_attempts);
            }
            if engine.cfg.fallback == FallbackPolicy::Sgl {
                self.wait_for_sgl_free();
            }
            let log_t0 = trace::phase_start();
            let logged = self.log_phase(body, &mut hw_attempts);
            if let Some(t0) = log_t0 {
                engine
                    .recorder
                    .record_phase_cycles(TxnPhase::Log, trace::phase_elapsed(t0));
            }
            let seq = match logged {
                LogOutcome::ReadOnly => {
                    self.alloc_log.clear();
                    engine.recorder.record_completion(CompletionPath::ReadOnly);
                    return TxnReport::new(CompletionPath::ReadOnly, hw_attempts);
                }
                LogOutcome::Aborted => {
                    restarts += 1;
                    continue;
                }
                LogOutcome::Logged(seq) => seq,
            };

            if engine.cfg.variant != CraftyVariant::NoRedo {
                let redo_t0 = trace::phase_start();
                let redo = self.redo_phase(&seq, &mut hw_attempts);
                if let Some(t0) = redo_t0 {
                    engine
                        .recorder
                        .record_phase_cycles(TxnPhase::Redo, trace::phase_elapsed(t0));
                }
                if let CommitOutcome::Committed = redo {
                    return self.finish(CompletionPath::Redo, &seq, hw_attempts);
                }
                if engine.cfg.variant == CraftyVariant::NoValidate {
                    restarts += 1;
                    continue;
                }
            }
            let validate_t0 = trace::phase_start();
            let validated = self.validate_phase(body, &seq, &mut hw_attempts);
            if let Some(t0) = validate_t0 {
                engine
                    .recorder
                    .record_phase_cycles(TxnPhase::Validate, trace::phase_elapsed(t0));
            }
            match validated {
                CommitOutcome::Committed => {
                    return self.finish(CompletionPath::Validate, &seq, hw_attempts);
                }
                CommitOutcome::Failed => {
                    restarts += 1;
                    continue;
                }
            }
        }
    }

    fn finish(&mut self, path: CompletionPath, seq: &LoggedSeq, hw_attempts: u32) -> TxnReport {
        let engine = self.engine;
        self.alloc_log.apply_frees(&engine.allocator);
        engine
            .recorder
            .record_persistent_writes(seq.persistent_writes);
        engine.recorder.record_completion(path);
        TxnReport::new(path, hw_attempts)
    }

    fn wait_for_sgl_free(&self) {
        let engine = self.engine;
        while engine.htm.nontx_read(engine.sgl_addr) != 0 {
            std::thread::yield_now();
        }
    }

    /// The Log phase (Algorithm 1): execute the body in a hardware
    /// transaction, recording each write's old value; roll every write back
    /// (building the redo log) before committing; append the undo entries
    /// plus a LOGGED marker to the persistent undo log; after the hardware
    /// transaction commits, flush the entries (no drain — the next hardware
    /// transaction's fence semantics complete the persist).
    fn log_phase(&mut self, body: &mut TxnBody<'_>, hw_attempts: &mut u32) -> LogOutcome {
        let engine = self.engine;
        let undo_log = engine.threads[self.tid].undo_log;
        for _ in 0..=engine.cfg.htm_retries_per_phase {
            *hw_attempts += 1;
            // Allocations recorded by a previous failed attempt would leak;
            // hand them back before re-executing the body.
            self.alloc_log.release_allocations(&engine.allocator);
            // Deferred mode: the previous transaction's commit write-backs
            // stay pending here and ride this transaction's pre-Redo drain
            // (or the group's flush_deferred barrier) instead of paying
            // their own fence at begin. The Log phase publishes no new
            // in-place values (its writes are rolled back before commit),
            // so nothing that needs a durable undo entry can persist early.
            let mut txn = if self.deferred_mode {
                engine.htm.begin_deferred(self.tid)
            } else {
                engine.htm.begin(self.tid)
            };
            // Under the SGL policy every hardware phase subscribes to the
            // global lock word. The per-line policy drops this global
            // subscription entirely: fallback transactions announce
            // themselves through the lock words of exactly the lines they
            // write, and the per-line reads above already watch those.
            if engine.cfg.fallback == FallbackPolicy::Sgl {
                match txn.read(engine.sgl_addr) {
                    Ok(0) => {}
                    Ok(_) => {
                        txn.abort_explicit(ABORT_SGL_HELD);
                        drop(txn);
                        self.wait_for_sgl_free();
                        continue;
                    }
                    Err(_) => continue,
                }
            }

            self.undo_buf.clear();
            {
                let mut ctx = LogCtx {
                    txn: &mut txn,
                    mem: &engine.mem,
                    allocator: &engine.allocator,
                    alloc_log: &mut self.alloc_log,
                    undo: &mut self.undo_buf,
                };
                if body(&mut ctx).is_err() {
                    continue;
                }
            }

            if self.undo_buf.is_empty()
                && self.alloc_log.allocations() == 0
                && self.alloc_log.deferred_frees() == 0
            {
                // Read-only transactions skip logging, persisting, and the
                // Redo/Validate phases entirely (Section 4.1).
                match txn.commit() {
                    Ok(_) => return LogOutcome::ReadOnly,
                    Err(_) => continue,
                }
            }

            // Roll back the writes in reverse order, building the redo log
            // from the values visible just before each rollback step.
            self.redo_buf.clear();
            let mut rolled_back = true;
            for idx in (0..self.undo_buf.len()).rev() {
                let rec = self.undo_buf[idx];
                let current = match txn.read(rec.addr) {
                    Ok(v) => v,
                    Err(_) => {
                        rolled_back = false;
                        break;
                    }
                };
                self.redo_buf.push((rec.addr, current));
                if txn.write(rec.addr, rec.old_value).is_err() {
                    rolled_back = false;
                    break;
                }
            }
            if !rolled_back {
                continue;
            }

            self.entries_buf.clear();
            self.entries_buf.extend(
                self.undo_buf
                    .iter()
                    .filter(|r| r.persistent)
                    .map(|r| (r.addr, r.old_value)),
            );
            let log_ts = engine.timestamp();
            let info = match undo_log.append_sequence(&mut txn, &self.entries_buf, log_ts) {
                Ok(info) => info,
                Err(_) => continue,
            };
            // `commit` consumes the transaction: by the time it returns,
            // the HwTxn has been dropped and the thread's descriptor is
            // back in the runtime pool, so the maintenance below (which
            // begins refresh transactions on this tid) reuses it rather
            // than taking the nested-begin allocation path.
            let log_commit_version = match txn.commit() {
                Ok(wv) => wv,
                Err(_) => continue,
            };

            let flushed_lines =
                undo_log.flush_entries(&engine.mem, self.tid, info.first_abs, info.marker_abs);
            engine.recorder.record_flushed_lines(flushed_lines);
            engine.note_sequence(self.tid, log_ts);
            trace::record(
                self.tid,
                TraceEventKind::UndoAppend,
                self.entries_buf.len() as u64,
            );

            // Section 5.2 housekeeping: this append crossed into the other
            // half of the circular log, so the thread is about to start
            // overwriting previous-lap entries. Every other thread must log
            // a sequence at least as recent as this one before that happens,
            // so that the recovery cutoff can never fall back onto entries
            // that get discarded. The MAX_LAG bound is re-established at the
            // same point.
            let crossed = undo_log.crosses_half(info.first_abs, self.entries_buf.len() as u64 + 1);
            let lag_exceeded = engine.clock.current().raw()
                >= engine
                    .ts_lower_bound
                    .load(std::sync::atomic::Ordering::Acquire)
                    .saturating_add(engine.cfg.max_lag);
            if crossed || lag_exceeded {
                engine.maintain_ts_lower_bound(self.tid, log_ts.raw());
            }

            return LogOutcome::Logged(LoggedSeq {
                persistent_writes: self.entries_buf.len() as u64,
                marker_abs: info.marker_abs,
                log_commit_version,
            });
        }
        LogOutcome::Aborted
    }

    /// The Redo phase (Algorithm 2, thread-safe variant): check that no
    /// other thread committed writes since this transaction's Log phase,
    /// then perform the logged writes, advance `gLastRedoTS`, and turn the
    /// LOGGED marker into COMMITTED — all inside one hardware transaction.
    ///
    /// The paper's check compares RDTSC values: `gLastRedoTS` holds the
    /// timestamp of the last committed writer and must still be below this
    /// transaction's LOGGED timestamp. That is sound on real RTM, where
    /// conflicting transactions cannot overlap. Under the simulated
    /// (commit-time-validated) HTM a transaction can publish *after*
    /// another transaction's Log phase committed while carrying an earlier
    /// pre-drawn timestamp, so the same comparison is performed on
    /// hardware-transaction *commit versions* instead, which are assigned
    /// at the commit point and therefore ordered consistently with
    /// visibility.
    fn redo_phase(&mut self, seq: &LoggedSeq, hw_attempts: &mut u32) -> CommitOutcome {
        let engine = self.engine;
        let undo_log = engine.threads[self.tid].undo_log;
        for _ in 0..=engine.cfg.htm_retries_per_phase {
            *hw_attempts += 1;
            let mut txn = engine.htm.begin(self.tid);
            if engine.cfg.fallback == FallbackPolicy::Sgl {
                match txn.read(engine.sgl_addr) {
                    Ok(0) => {}
                    Ok(_) => {
                        txn.abort_explicit(ABORT_SGL_HELD);
                        return CommitOutcome::Failed;
                    }
                    Err(_) => continue,
                }
            }
            let g_last = match txn.read(engine.g_last_redo_ts_addr) {
                Ok(v) => v,
                Err(_) => continue,
            };
            if g_last >= seq.log_commit_version {
                // Conservative conflict check failed: some thread committed
                // writes after our Log phase. Necessary but not sufficient
                // for a real conflict — the Validate phase decides.
                txn.abort_explicit(ABORT_REDO_TS_CHECK);
                return CommitOutcome::Failed;
            }
            let foreign_append = match self.touch_log_head(&mut txn, seq) {
                Ok(v) => v,
                Err(()) => continue,
            };
            let commit_ts = engine.timestamp();
            let mut ok = true;
            for &(addr, value) in self.redo_buf.iter().rev() {
                if txn.write(addr, value).is_err() {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            if txn
                .publish_commit_version(engine.g_last_redo_ts_addr)
                .is_err()
            {
                continue;
            }
            if undo_log
                .commit_marker_txn(&mut txn, seq.marker_abs, seq.persistent_writes, commit_ts)
                .is_err()
            {
                continue;
            }
            if self.flush_writes_on_commit(&mut txn, seq).is_err() {
                continue;
            }
            if txn.commit().is_err() {
                continue;
            }
            self.after_commit(foreign_append);
            engine.note_sequence(self.tid, commit_ts);
            trace::record(
                self.tid,
                TraceEventKind::RedoApply,
                self.redo_buf.len() as u64,
            );
            return CommitOutcome::Committed;
        }
        CommitOutcome::Failed
    }

    /// The Validate phase (Algorithm 3): re-execute the body, checking each
    /// persistent write against the undo log entry persisted by the Log
    /// phase; any mismatch means another thread committed conflicting
    /// writes in between, so the whole transaction restarts from the Log
    /// phase.
    fn validate_phase(
        &mut self,
        body: &mut TxnBody<'_>,
        seq: &LoggedSeq,
        hw_attempts: &mut u32,
    ) -> CommitOutcome {
        let engine = self.engine;
        let undo_log = engine.threads[self.tid].undo_log;
        // The expected `<addr, oldValue>` pairs are exactly the persistent
        // entries the Log phase left in `entries_buf` (untouched since).
        for _ in 0..=engine.cfg.htm_retries_per_phase {
            *hw_attempts += 1;
            let mut txn = engine.htm.begin(self.tid);
            if engine.cfg.fallback == FallbackPolicy::Sgl {
                match txn.read(engine.sgl_addr) {
                    Ok(0) => {}
                    Ok(_) => {
                        txn.abort_explicit(ABORT_SGL_HELD);
                        return CommitOutcome::Failed;
                    }
                    Err(_) => continue,
                }
            }
            self.alloc_log.start_replay();
            let (body_result, consumed, mismatch) = {
                let mut ctx = ValidateCtx {
                    txn: &mut txn,
                    mem: &engine.mem,
                    expected: &self.entries_buf,
                    next: 0,
                    mismatch: false,
                    alloc_log: &mut self.alloc_log,
                };
                let r = body(&mut ctx);
                (r, ctx.next, ctx.mismatch)
            };
            if mismatch {
                return CommitOutcome::Failed;
            }
            if body_result.is_err() {
                continue;
            }
            if consumed != self.entries_buf.len() {
                // Fewer writes than log entries: the control flow diverged,
                // so the persisted undo log no longer matches (Algorithm 3
                // line 8 checks the next entry is the LOGGED marker).
                txn.abort_explicit(ABORT_VALIDATE_MISMATCH);
                return CommitOutcome::Failed;
            }
            let foreign_append = match self.touch_log_head(&mut txn, seq) {
                Ok(v) => v,
                Err(()) => continue,
            };
            let commit_ts = engine.timestamp();
            if txn
                .publish_commit_version(engine.g_last_redo_ts_addr)
                .is_err()
            {
                continue;
            }
            if undo_log
                .commit_marker_txn(&mut txn, seq.marker_abs, seq.persistent_writes, commit_ts)
                .is_err()
            {
                continue;
            }
            if self.flush_writes_on_commit(&mut txn, seq).is_err() {
                continue;
            }
            if txn.commit().is_err() {
                continue;
            }
            self.after_commit(foreign_append);
            engine.note_sequence(self.tid, commit_ts);
            return CommitOutcome::Committed;
        }
        CommitOutcome::Failed
    }

    /// Reads the thread's own log head inside the committing transaction
    /// and writes it back unchanged. This (a) detects whether another
    /// thread appended a refresh sequence to this log since the Log phase
    /// (Section 5.2 forcing), which means this sequence will no longer be
    /// the log's latest and its writes must be drained eagerly, and (b)
    /// orders such refresh appends with this commit so the forcing thread's
    /// subsequent drain covers the flushes enqueued here.
    fn touch_log_head(&self, txn: &mut crafty_htm::HwTxn<'_>, seq: &LoggedSeq) -> Result<bool, ()> {
        let engine = self.engine;
        let head_addr = engine.threads[self.tid].undo_log.head_addr();
        let head = txn.read(head_addr).map_err(|_| ())?;
        txn.write(head_addr, head).map_err(|_| ())?;
        Ok(head != seq.marker_abs + 1)
    }

    /// Requests CLWBs (no drain) for every persistent address the
    /// transaction wrote plus its marker entry, enqueued atomically with
    /// the commit. The next hardware transaction this thread starts
    /// completes the persist, and recovery always rolls back the thread's
    /// latest sequence in case these write-backs had not finished
    /// (Section 4.2).
    fn flush_writes_on_commit(
        &self,
        txn: &mut crafty_htm::HwTxn<'_>,
        seq: &LoggedSeq,
    ) -> Result<(), ()> {
        let engine = self.engine;
        for rec in &self.undo_buf {
            if rec.persistent {
                txn.flush_on_commit(rec.addr).map_err(|_| ())?;
            }
        }
        let marker_addr = engine.threads[self.tid]
            .undo_log
            .geometry()
            .slot_addr(seq.marker_abs);
        txn.flush_on_commit(marker_addr).map_err(|_| ())?;
        Ok(())
    }

    /// Post-commit handling: if another thread appended to this thread's
    /// log while the transaction was in flight, this sequence is no longer
    /// the latest one (the one recovery rolls back), so its writes must be
    /// made durable immediately.
    fn after_commit(&self, foreign_append: bool) {
        if foreign_append {
            self.engine.mem.drain(self.tid);
            self.engine.recorder.record_drain();
        }
    }

    // ------------------------------------------------------------------
    // Software fallbacks and thread-unsafe mode (Figure 4)
    // ------------------------------------------------------------------

    /// Dispatches to the configured software fallback once the hardware
    /// phases have exhausted their restart budget (or immediately, under
    /// `force_fallback`).
    fn execute_fallback(&mut self, body: &mut TxnBody<'_>, hw_attempts: &mut u32) -> TxnReport {
        match self.engine.cfg.fallback {
            FallbackPolicy::Sgl => self.execute_sgl(body, hw_attempts),
            FallbackPolicy::PerLine => self.execute_per_line(body, hw_attempts),
        }
    }

    /// Per-line locking fallback: run the body against a snapshot with
    /// versioned reads and buffered writes, lock exactly the write-set
    /// lines (sorted order), bump `gLastRedoTS`, validate the read set,
    /// persist the undo log, publish, and release at a fresh commit
    /// version. No global lock is taken and nothing system-wide is
    /// serialized: two fallbacks with disjoint footprints run fully in
    /// parallel, and hardware transactions abort only if they actually
    /// touched one of the locked lines.
    ///
    /// The `gLastRedoTS` bump sits *after* lock acquisition and *before*
    /// read validation, and this ordering is load-bearing. A concurrent
    /// Redo phase never re-reads its body's lines — the `gLastRedoTS`
    /// check is its only conflict test — so the fallback must guarantee:
    /// any Log phase that committed before the fallback's locks were all
    /// held has a commit version below the bump (its Redo then fails the
    /// check), and any Log phase committing after sees the fallback's
    /// lock bits on every line it shares (its commit-time validation
    /// aborts). A Redo that read `gLastRedoTS` before the bump and
    /// commits after is aborted by its subscription to the bumped line.
    ///
    /// Durability ordering is the same as every other path: undo entries
    /// appended, flushed, and **drained** strictly before the first
    /// in-place write — here the whole sequence happens inside the
    /// lock-hold window, which is why the fault clock ticks at each lock
    /// transition (crash points land inside the window).
    fn execute_per_line(&mut self, body: &mut TxnBody<'_>, hw_attempts: &mut u32) -> TxnReport {
        let engine = self.engine;
        let undo_log = engine.threads[self.tid].undo_log;
        // Entering the fallback is a taxonomy event regardless of which
        // fallback it is: the phase machinery gave up.
        engine.recorder.record_abort_cause(AbortCause::SglFallback);
        trace::record(
            self.tid,
            TraceEventKind::Abort,
            AbortCause::SglFallback.index() as u64,
        );
        let fb_t0 = trace::phase_start();
        let mut body_failures = 0u32;
        let report = loop {
            self.alloc_log.release_allocations(&engine.allocator);
            let mut fb = engine.htm.begin_fallback(self.tid);
            let conflicted = {
                let mut ctx = FallbackCtx {
                    fb: &mut fb,
                    allocator: &engine.allocator,
                    alloc_log: &mut self.alloc_log,
                    conflicted: false,
                };
                match body(&mut ctx) {
                    Ok(()) => None,
                    Err(_) => Some(ctx.conflicted),
                }
            };
            if let Some(conflicted) = conflicted {
                drop(fb);
                if !conflicted {
                    // A body failure that was not a snapshot conflict is the
                    // program refusing to commit; mirror the SGL path's
                    // bounded patience instead of spinning forever.
                    body_failures += 1;
                    assert!(
                        body_failures < 16,
                        "transaction body kept aborting in the per-line fallback; bodies must eventually succeed when run in isolation"
                    );
                }
                // Conflicts mean another transaction committed or holds a
                // lock — system-wide progress exists; yield and retry with
                // a fresh snapshot.
                std::thread::yield_now();
                continue;
            }
            if !fb.has_writes()
                && self.alloc_log.allocations() == 0
                && self.alloc_log.deferred_frees() == 0
            {
                // Read-only: every value handed to the body was consistent
                // at the begin snapshot; nothing to lock or persist.
                self.alloc_log.clear();
                engine.recorder.record_completion(CompletionPath::ReadOnly);
                break TxnReport::new(CompletionPath::ReadOnly, *hw_attempts);
            }

            fb.lock_write_set();
            engine
                .htm
                .nontx_bump_commit_version(engine.g_last_redo_ts_addr);
            if fb.validate_reads().is_err() {
                drop(fb);
                std::thread::yield_now();
                continue;
            }

            // Undo entries: the pre-publish values of the persistent
            // write-set words, read under the held locks.
            self.persistent_addrs_buf.clear();
            self.persistent_addrs_buf.extend(
                fb.write_order()
                    .iter()
                    .copied()
                    .filter(|a| engine.mem.is_persistent(*a)),
            );
            self.entries_buf.clear();
            self.entries_buf.extend(
                self.persistent_addrs_buf
                    .iter()
                    .map(|a| (*a, fb.read_locked(*a))),
            );
            let log_ts = engine.timestamp();
            let info = undo_log.append_sequence_nontx(
                &engine.htm,
                &self.entries_buf,
                MarkerKind::Logged,
                log_ts,
            );
            undo_log.flush_entries(&engine.mem, self.tid, info.first_abs, info.marker_abs);
            engine.mem.drain(self.tid);
            engine.recorder.record_drain();
            trace::record(
                self.tid,
                TraceEventKind::UndoAppend,
                self.entries_buf.len() as u64,
            );
            if undo_log.crosses_half(info.first_abs, self.entries_buf.len() as u64 + 1) {
                engine.maintain_ts_lower_bound(self.tid, log_ts.raw());
            }

            fb.publish();
            for addr in &self.persistent_addrs_buf {
                engine.mem.clwb(self.tid, *addr);
            }
            let commit_ts = engine.timestamp();
            undo_log.commit_marker_nontx(
                &engine.htm,
                info.marker_abs,
                info.data_entries,
                commit_ts,
            );
            undo_log.flush_marker(&engine.mem, self.tid, info.marker_abs);
            if !self.deferred_mode {
                engine.mem.drain(self.tid);
                engine.recorder.record_drain();
            }
            fb.commit_release();
            drop(fb);
            engine.note_sequence(self.tid, commit_ts);

            self.alloc_log.apply_frees(&engine.allocator);
            engine
                .recorder
                .record_persistent_writes(self.entries_buf.len() as u64);
            engine.recorder.record_completion(CompletionPath::Sgl);
            break TxnReport::new(CompletionPath::Sgl, *hw_attempts);
        };
        if let Some(t0) = fb_t0 {
            engine
                .recorder
                .record_phase_cycles(TxnPhase::Sgl, trace::phase_elapsed(t0));
        }
        report
    }

    fn execute_sgl(&mut self, body: &mut TxnBody<'_>, hw_attempts: &mut u32) -> TxnReport {
        let engine = self.engine;
        // Entering the fallback is itself a taxonomy entry: the phase
        // machinery gave up, which is the signal an adaptive mode switcher
        // would act on.
        engine.recorder.record_abort_cause(AbortCause::SglFallback);
        trace::record(
            self.tid,
            TraceEventKind::Abort,
            AbortCause::SglFallback.index() as u64,
        );
        let sgl_t0 = trace::phase_start();
        let sgl = engine.acquire_sgl();
        let report = self.run_buffered_durable(body, CompletionPath::Sgl, hw_attempts, true);
        drop(sgl);
        if let Some(t0) = sgl_t0 {
            engine
                .recorder
                .record_phase_cycles(TxnPhase::Sgl, trace::phase_elapsed(t0));
        }
        report
    }

    fn execute_thread_unsafe(&mut self, body: &mut TxnBody<'_>) -> TxnReport {
        let engine = self.engine;
        let mut hw_attempts = 0u32;
        match self.log_phase(body, &mut hw_attempts) {
            LogOutcome::ReadOnly => {
                self.alloc_log.clear();
                engine.recorder.record_completion(CompletionPath::ReadOnly);
                TxnReport::new(CompletionPath::ReadOnly, hw_attempts)
            }
            LogOutcome::Logged(seq) => {
                // Thread-unsafe Redo: no other thread can move gLastRedoTS,
                // so the phase always succeeds and needs no hardware
                // transaction (Section 4.4). Ensure the undo entries are
                // durable before performing the in-place writes.
                engine.mem.drain(self.tid);
                engine.recorder.record_drain();
                let undo_log = engine.threads[self.tid].undo_log;
                for &(addr, value) in self.redo_buf.iter().rev() {
                    engine.htm.nontx_write(addr, value);
                }
                for rec in &self.undo_buf {
                    if rec.persistent {
                        engine.mem.clwb(self.tid, rec.addr);
                    }
                }
                let commit_ts = engine.timestamp();
                undo_log.commit_marker_nontx(
                    &engine.htm,
                    seq.marker_abs,
                    seq.persistent_writes,
                    commit_ts,
                );
                undo_log.flush_marker(&engine.mem, self.tid, seq.marker_abs);
                // Outside hardware transactions there is no later fence to
                // piggyback on, so complete the write-backs here — unless
                // the transaction is durability-deferred, in which case the
                // group's shared drain barrier covers them.
                if !self.deferred_mode {
                    engine.mem.drain(self.tid);
                    engine.recorder.record_drain();
                }
                engine.note_sequence(self.tid, commit_ts);
                trace::record(
                    self.tid,
                    TraceEventKind::RedoApply,
                    self.redo_buf.len() as u64,
                );
                self.finish(CompletionPath::Redo, &seq, hw_attempts)
            }
            LogOutcome::Aborted => {
                // HTM keeps failing (capacity, spurious aborts): fall back
                // to the non-speculative durable path.
                self.run_buffered_durable(body, CompletionPath::Sgl, &mut hw_attempts, false)
            }
        }
    }

    /// Durable execution without hardware transactions: buffer the body's
    /// writes, persist the undo log (old values) with a single drain, then
    /// perform and flush the writes. Used inside SGL sections and as the
    /// final fallback of thread-unsafe mode, where atomicity is already
    /// guaranteed by the lock / the program.
    fn run_buffered_durable(
        &mut self,
        body: &mut TxnBody<'_>,
        path: CompletionPath,
        hw_attempts: &mut u32,
        bump_global_ts: bool,
    ) -> TxnReport {
        let engine = self.engine;
        let undo_log = engine.threads[self.tid].undo_log;
        for _ in 0..16 {
            self.alloc_log.release_allocations(&engine.allocator);
            self.buffered_vals.clear();
            self.buffered_order.clear();
            {
                let mut ctx = BufferedCtx {
                    htm: &engine.htm,
                    mem: &engine.mem,
                    allocator: &engine.allocator,
                    alloc_log: &mut self.alloc_log,
                    buffer: &mut self.buffered_vals,
                    order: &mut self.buffered_order,
                };
                if body(&mut ctx).is_err() {
                    continue;
                }
            }
            if self.buffered_order.is_empty()
                && self.alloc_log.allocations() == 0
                && self.alloc_log.deferred_frees() == 0
            {
                engine.recorder.record_completion(CompletionPath::ReadOnly);
                return TxnReport::new(CompletionPath::ReadOnly, *hw_attempts);
            }

            self.persistent_addrs_buf.clear();
            self.persistent_addrs_buf.extend(
                self.buffered_order
                    .iter()
                    .copied()
                    .filter(|a| engine.mem.is_persistent(*a)),
            );
            self.entries_buf.clear();
            self.entries_buf.extend(
                self.persistent_addrs_buf
                    .iter()
                    .map(|a| (*a, engine.htm.nontx_read(*a))),
            );
            let log_ts = engine.timestamp();
            let info = undo_log.append_sequence_nontx(
                &engine.htm,
                &self.entries_buf,
                MarkerKind::Logged,
                log_ts,
            );
            undo_log.flush_entries(&engine.mem, self.tid, info.first_abs, info.marker_abs);
            engine.mem.drain(self.tid);
            engine.recorder.record_drain();
            trace::record(
                self.tid,
                TraceEventKind::UndoAppend,
                self.entries_buf.len() as u64,
            );
            if undo_log.crosses_half(info.first_abs, self.entries_buf.len() as u64 + 1) {
                engine.maintain_ts_lower_bound(self.tid, log_ts.raw());
            }

            for addr in &self.buffered_order {
                let value = self
                    .buffered_vals
                    .get(addr.word())
                    .expect("buffered write present");
                engine.htm.nontx_write(*addr, value);
            }
            for addr in &self.persistent_addrs_buf {
                engine.mem.clwb(self.tid, *addr);
            }
            let commit_ts = engine.timestamp();
            if bump_global_ts {
                // Publish a fresh commit-order version so that concurrent
                // threads' Redo checks observe that writes were committed
                // while the lock was held.
                let version = engine.htm.nontx_commit_version();
                engine.htm.nontx_write(engine.g_last_redo_ts_addr, version);
            }
            undo_log.commit_marker_nontx(
                &engine.htm,
                info.marker_abs,
                info.data_entries,
                commit_ts,
            );
            undo_log.flush_marker(&engine.mem, self.tid, info.marker_abs);
            // Outside hardware transactions there is no later fence to
            // piggyback on, so complete the write-backs before returning —
            // unless durability is deferred to the group's shared drain.
            if !self.deferred_mode {
                engine.mem.drain(self.tid);
                engine.recorder.record_drain();
            }
            engine.note_sequence(self.tid, commit_ts);

            self.alloc_log.apply_frees(&engine.allocator);
            engine
                .recorder
                .record_persistent_writes(self.entries_buf.len() as u64);
            engine.recorder.record_completion(path);
            return TxnReport::new(path, *hw_attempts);
        }
        panic!("transaction body kept aborting outside hardware transactions; bodies must eventually succeed when run in isolation");
    }
}

impl TmThread for CraftyThread<'_> {
    fn execute(&mut self, body: &mut TxnBody<'_>) -> TxnReport {
        match self.engine.cfg.mode {
            ThreadingMode::ThreadSafe => self.execute_thread_safe(body),
            ThreadingMode::ThreadUnsafe => self.execute_thread_unsafe(body),
        }
    }

    fn execute_deferred(&mut self, body: &mut TxnBody<'_>) -> TxnReport {
        // Group commit: run the transaction with the begin/commit SFENCE
        // drains relaxed. The transaction still logs, persists its undo
        // entries before any in-place write (the pre-Redo drain is
        // unconditional), and marks COMMITTED; only the drain that would
        // ack *durability* is left to the shared barrier. The flag must
        // not survive a panicking body (a caller catching the unwind and
        // reusing the handle would silently keep deferring), so the reset
        // sits on the unwind path too.
        self.deferred_mode = true;
        let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute(body)));
        self.deferred_mode = false;
        match report {
            Ok(report) => report,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    fn flush_deferred(&mut self) {
        // The shared drain barrier: one drain of this thread's queue covers
        // every deferred transaction's data write-backs and COMMITTED
        // markers — all were enqueued atomically with their commits.
        if self.engine.mem.pending_flushes(self.tid) > 0 {
            let t0 = trace::phase_start();
            self.engine.mem.drain(self.tid);
            self.engine.recorder.record_drain();
            if let Some(t0) = t0 {
                self.engine
                    .recorder
                    .record_phase_cycles(TxnPhase::Drain, trace::phase_elapsed(t0));
            }
        }
    }
}

// ----------------------------------------------------------------------
// TxnOps contexts for the three execution flavours
// ----------------------------------------------------------------------

/// Log-phase context: performs writes in place (inside the hardware
/// transaction) while recording old values for the undo log.
struct LogCtx<'a, 'rt> {
    txn: &'a mut HwTxn<'rt>,
    mem: &'a MemorySpace,
    allocator: &'a PmemAllocator,
    alloc_log: &'a mut AllocLog,
    /// Borrowed from [`CraftyThread::undo_buf`] so the record storage is
    /// reused across transactions.
    undo: &'a mut Vec<UndoRecord>,
}

impl TxnOps for LogCtx<'_, '_> {
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
        self.txn.read(addr).map_err(|_| TxAbort::hardware())
    }

    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
        let old_value = self.txn.read(addr).map_err(|_| TxAbort::hardware())?;
        self.undo.push(UndoRecord {
            addr,
            old_value,
            persistent: self.mem.is_persistent(addr),
        });
        self.txn.write(addr, value).map_err(|_| TxAbort::hardware())
    }

    fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort> {
        let addr = self
            .allocator
            .alloc(words)
            .expect("persistent heap exhausted; increase CraftyConfig::heap_words");
        self.alloc_log.record_alloc(addr, words);
        Ok(addr)
    }

    fn dealloc(&mut self, addr: PAddr, words: u64) -> Result<(), TxAbort> {
        self.alloc_log.record_free(addr, words);
        Ok(())
    }
}

/// Validate-phase context: re-executes the body, checking each persistent
/// write against the corresponding persisted undo entry (address and old
/// value) before performing it.
struct ValidateCtx<'a, 'rt> {
    txn: &'a mut HwTxn<'rt>,
    mem: &'a MemorySpace,
    expected: &'a [(PAddr, u64)],
    next: usize,
    mismatch: bool,
    alloc_log: &'a mut AllocLog,
}

impl ValidateCtx<'_, '_> {
    fn fail_validation(&mut self) -> TxAbort {
        self.mismatch = true;
        self.txn.abort_explicit(ABORT_VALIDATE_MISMATCH);
        TxAbort::inconsistent()
    }
}

impl TxnOps for ValidateCtx<'_, '_> {
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
        self.txn.read(addr).map_err(|_| TxAbort::hardware())
    }

    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
        if self.mem.is_persistent(addr) {
            let Some(&(expected_addr, expected_value)) = self.expected.get(self.next) else {
                return Err(self.fail_validation());
            };
            let current = self.txn.read(addr).map_err(|_| TxAbort::hardware())?;
            if addr != expected_addr || current != expected_value {
                return Err(self.fail_validation());
            }
            self.next += 1;
        }
        self.txn.write(addr, value).map_err(|_| TxAbort::hardware())
    }

    fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort> {
        match self.alloc_log.replay_alloc(words) {
            Some(addr) => Ok(addr),
            None => Err(self.fail_validation()),
        }
    }

    fn dealloc(&mut self, _addr: PAddr, _words: u64) -> Result<(), TxAbort> {
        // The frees were already recorded during the Log phase; performing
        // them is deferred to commit either way (Section 6).
        Ok(())
    }
}

/// Per-line fallback context: reads are snapshot-consistent versioned
/// reads through the [`FallbackTxn`], writes stay buffered in the fallback
/// descriptor until the undo log has been persisted under the held line
/// locks.
struct FallbackCtx<'a, 'rt> {
    fb: &'a mut FallbackTxn<'rt>,
    allocator: &'a PmemAllocator,
    alloc_log: &'a mut AllocLog,
    /// Set when a read lost a version race: the body's failure is then a
    /// snapshot conflict (retried without limit — some other transaction
    /// made progress), not a program abort (bounded patience).
    conflicted: bool,
}

impl TxnOps for FallbackCtx<'_, '_> {
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
        match self.fb.read(addr) {
            Ok(v) => Ok(v),
            Err(_) => {
                self.conflicted = true;
                Err(TxAbort::hardware())
            }
        }
    }

    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
        self.fb.write(addr, value);
        Ok(())
    }

    fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort> {
        let addr = self
            .allocator
            .alloc(words)
            .expect("persistent heap exhausted; increase CraftyConfig::heap_words");
        self.alloc_log.record_alloc(addr, words);
        Ok(addr)
    }

    fn dealloc(&mut self, addr: PAddr, words: u64) -> Result<(), TxAbort> {
        self.alloc_log.record_free(addr, words);
        Ok(())
    }
}

/// Buffered durable context (SGL sections and the thread-unsafe fallback):
/// reads come from the buffer or memory, writes stay in the buffer until
/// the undo log has been persisted.
struct BufferedCtx<'a> {
    htm: &'a crafty_htm::HtmRuntime,
    mem: &'a MemorySpace,
    allocator: &'a PmemAllocator,
    alloc_log: &'a mut AllocLog,
    /// Borrowed from [`CraftyThread::buffered_vals`] /
    /// [`CraftyThread::buffered_order`] so the buffers are reused across
    /// transactions.
    buffer: &'a mut GenMap,
    order: &'a mut Vec<PAddr>,
}

impl TxnOps for BufferedCtx<'_> {
    fn read(&mut self, addr: PAddr) -> Result<u64, TxAbort> {
        if let Some(v) = self.buffer.get(addr.word()) {
            return Ok(v);
        }
        Ok(self.htm.nontx_read(addr))
    }

    fn write(&mut self, addr: PAddr, value: u64) -> Result<(), TxAbort> {
        if self.buffer.insert(addr.word(), value).is_none() {
            self.order.push(addr);
        }
        let _ = self.mem; // the buffer is volatile; nothing touches memory here
        Ok(())
    }

    fn alloc(&mut self, words: u64) -> Result<PAddr, TxAbort> {
        let addr = self
            .allocator
            .alloc(words)
            .expect("persistent heap exhausted; increase CraftyConfig::heap_words");
        self.alloc_log.record_alloc(addr, words);
        Ok(addr)
    }

    fn dealloc(&mut self, addr: PAddr, words: u64) -> Result<(), TxAbort> {
        self.alloc_log.record_free(addr, words);
        Ok(())
    }
}
