//! The Crafty engine: shared state, layout, and thread registration.
//!
//! A [`Crafty`] instance owns the simulated HTM runtime, the per-thread
//! circular undo logs, the global variables of the algorithm
//! (`gLastRedoTS`, the single global lock, `tsLowerBound`), and the
//! persistent log directory that the recovery observer starts from. Worker
//! threads obtain a [`crate::thread::CraftyThread`] via
//! [`PersistentTm::register_thread`] and run persistent transactions
//! through it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crafty_common::{
    BreakdownRecorder, BreakdownSnapshot, Clock, PAddr, PersistentTm, Timestamp, TmThread,
};
use crafty_htm::{HtmConfig, HtmRuntime};
use crafty_pmem::{MemorySpace, PmemAllocator};

use crate::config::CraftyConfig;
use crate::thread::CraftyThread;
use crate::undo_log::{LogDirectory, LogGeometry, MarkerKind, UndoLog};

// The explicit abort codes live in `crafty_common::trace` so the HTM layer
// can classify them into the abort-cause taxonomy (failed Redo/Validate
// checks are `persistent-doomed`, not plain explicit aborts).
pub(crate) use crafty_common::trace::{
    ABORT_REDO_TS_CHECK, ABORT_SGL_HELD, ABORT_VALIDATE_MISMATCH,
};

/// Per-thread state shared between the owning worker and other threads
/// (other threads read the undo log handle and the last sequence timestamp
/// for the Section 5.2 lag maintenance, and may force a refresh entry).
pub(crate) struct ThreadShared {
    /// The thread's circular persistent undo log.
    pub(crate) undo_log: UndoLog,
    /// Timestamp of the thread's most recent LOGGED/COMMITTED sequence.
    pub(crate) last_seq_ts: AtomicU64,
}

/// The Crafty persistent-transaction engine (the paper's contribution).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use crafty_common::{PersistentTm, PAddr};
/// use crafty_pmem::{MemorySpace, PmemConfig};
/// use crafty_core::{Crafty, CraftyConfig};
///
/// let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
/// let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
/// let cell = mem.reserve_persistent(1);
///
/// let mut thread = crafty.register_thread(0);
/// thread.execute(&mut |ops| {
///     let v = ops.read(cell)?;
///     ops.write(cell, v + 1)?;
///     Ok(())
/// });
/// assert_eq!(mem.read(cell), 1);
/// ```
pub struct Crafty {
    pub(crate) mem: Arc<MemorySpace>,
    pub(crate) htm: HtmRuntime,
    pub(crate) clock: Clock,
    pub(crate) cfg: CraftyConfig,
    pub(crate) recorder: Arc<BreakdownRecorder>,
    pub(crate) allocator: PmemAllocator,
    /// Volatile simulated word: the single global lock (0 = free, 1 = held).
    pub(crate) sgl_addr: PAddr,
    /// Volatile simulated word: `gLastRedoTS`, the timestamp of the last
    /// writes committed by any thread (Section 4.2).
    pub(crate) g_last_redo_ts_addr: PAddr,
    /// Persistent address of the log directory (recovery's root object).
    directory_addr: PAddr,
    /// `tsLowerBound` (Section 5.2): a lazily maintained lower bound on the
    /// earliest timestamp recovery might need to roll back to.
    pub(crate) ts_lower_bound: AtomicU64,
    pub(crate) threads: Vec<ThreadShared>,
}

impl std::fmt::Debug for Crafty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Crafty")
            .field("variant", &self.cfg.variant)
            .field("mode", &self.cfg.mode)
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl Crafty {
    /// Creates a Crafty engine over `mem`, reserving its logs, global
    /// variables, and persistent heap, and persisting the log directory.
    ///
    /// Uses a Skylake-like HTM configuration; see
    /// [`Crafty::with_htm_config`] to override it.
    pub fn new(mem: Arc<MemorySpace>, cfg: CraftyConfig) -> Self {
        Crafty::with_htm_config(mem, cfg, HtmConfig::skylake())
    }

    /// Creates a Crafty engine with an explicit HTM configuration.
    ///
    /// # Panics
    ///
    /// Panics if the persistent or volatile region is too small for the
    /// requested logs, heap, and directory.
    pub fn with_htm_config(mem: Arc<MemorySpace>, cfg: CraftyConfig, htm_cfg: HtmConfig) -> Self {
        assert!(cfg.max_threads >= 1, "need at least one worker thread");
        assert!(
            cfg.undo_log_entries >= 8,
            "undo log must hold at least a few entries"
        );
        let recorder = Arc::new(BreakdownRecorder::new());
        let htm = HtmRuntime::new(Arc::clone(&mem), htm_cfg, Arc::clone(&recorder));

        // Persistent layout: directory, per-thread logs, heap.
        let directory_addr = mem.reserve_persistent(LogDirectory::words_needed(cfg.max_threads));
        let mut geometries = Vec::with_capacity(cfg.max_threads);
        for _ in 0..cfg.max_threads {
            let start = mem.reserve_persistent(cfg.undo_log_entries * 2);
            geometries.push(LogGeometry {
                start,
                capacity: cfg.undo_log_entries,
            });
        }
        let heap_start = mem.reserve_persistent(cfg.heap_words);
        let allocator = PmemAllocator::new(heap_start, cfg.heap_words);

        // Volatile layout: SGL, gLastRedoTS, one log-head word per thread.
        let sgl_addr = mem.reserve_volatile(1);
        let g_last_redo_ts_addr = mem.reserve_volatile(1);
        let threads: Vec<ThreadShared> = geometries
            .iter()
            .map(|&geometry| {
                let head_addr = mem.reserve_volatile(1);
                ThreadShared {
                    undo_log: UndoLog::new(geometry, head_addr),
                    last_seq_ts: AtomicU64::new(0),
                }
            })
            .collect();

        let directory = LogDirectory { logs: geometries };
        directory.store(&mem, 0, directory_addr);

        Crafty {
            mem,
            htm,
            clock: Clock::new(),
            cfg,
            recorder,
            allocator,
            sgl_addr,
            g_last_redo_ts_addr,
            directory_addr,
            ts_lower_bound: AtomicU64::new(0),
            threads,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &CraftyConfig {
        &self.cfg
    }

    /// The memory space the engine operates on.
    pub fn mem(&self) -> &Arc<MemorySpace> {
        &self.mem
    }

    /// The persistent address of the log directory — pass this to
    /// [`crate::recovery::recover`] after a crash.
    pub fn directory_addr(&self) -> PAddr {
        self.directory_addr
    }

    /// The transactional allocator serving [`crafty_common::TxnOps::alloc`].
    pub fn allocator(&self) -> &PmemAllocator {
        &self.allocator
    }

    /// Issues a fresh timestamp (`getTimestamp()`).
    pub(crate) fn timestamp(&self) -> Timestamp {
        self.clock.now()
    }

    /// Reads `gLastRedoTS` non-transactionally (diagnostics and tests).
    pub fn g_last_redo_ts(&self) -> u64 {
        self.mem.read(self.g_last_redo_ts_addr)
    }

    /// True while some thread holds the single global lock.
    pub fn sgl_held(&self) -> bool {
        self.mem.read(self.sgl_addr) != 0
    }

    /// Acquires the single global lock by CASing the simulated SGL word
    /// through the HTM's versioned-lock machinery. There is no host-level
    /// mutex behind the SGL any more: the word itself is the lock, mutual
    /// exclusion comes from [`HtmRuntime::nontx_acquire_lock_word`], and
    /// running hardware transactions that subscribed to the word abort the
    /// moment it is taken (speculative lock elision), exactly as before.
    /// The guard releases the word on drop, panic-safe.
    pub(crate) fn acquire_sgl(&self) -> crafty_htm::LockWordGuard<'_> {
        self.htm.nontx_acquire_lock_word(self.sgl_addr)
    }

    /// Records that thread `tid`'s latest sequence carries `ts`. Uses a
    /// max so that a concurrent forced refresh (Section 5.2) can never move
    /// the recorded timestamp backwards.
    pub(crate) fn note_sequence(&self, tid: usize, ts: Timestamp) {
        self.threads[tid]
            .last_seq_ts
            .fetch_max(ts.raw(), Ordering::AcqRel);
    }

    /// Section 5.2 lag maintenance. Called by a thread after appending a
    /// sequence that crossed into the other half of its circular log (it is
    /// about to start overwriting entries from the previous lap), or whose
    /// timestamp raced too far ahead of `tsLowerBound`.
    ///
    /// Every other thread whose latest sequence is older than
    /// `threshold_ts` is forced to append an empty, committed sequence
    /// (using a hardware transaction to synchronize with the owner). This
    /// guarantees that the recovery cutoff — the minimum over threads of
    /// their latest sequence timestamp — can never drop below the
    /// timestamps of entries that are about to be overwritten, so recovery
    /// never needs a discarded entry.
    pub(crate) fn maintain_ts_lower_bound(&self, calling_tid: usize, threshold_ts: u64) {
        for (tid, shared) in self.threads.iter().enumerate() {
            if tid == calling_tid {
                continue;
            }
            if shared.last_seq_ts.load(Ordering::Acquire) >= threshold_ts {
                continue;
            }
            // Retry until either our forced sequence lands or the owner
            // itself commits something newer than the threshold.
            for _ in 0..64 {
                if shared.last_seq_ts.load(Ordering::Acquire) >= threshold_ts {
                    break;
                }
                let ts = self.clock.now();
                let mut txn = self.htm.begin(calling_tid);
                let appended =
                    shared
                        .undo_log
                        .append_sequence(&mut txn, &[], ts)
                        .and_then(|info| {
                            shared
                                .undo_log
                                .commit_marker_txn(&mut txn, info.marker_abs, 0, ts)?;
                            Ok(info)
                        });
                let info = match appended {
                    Ok(info) => info,
                    Err(_) => continue,
                };
                if txn.commit().is_ok() {
                    shared
                        .undo_log
                        .flush_marker(&self.mem, calling_tid, info.marker_abs);
                    self.mem.drain(calling_tid);
                    // The refresh is now the target's latest sequence, so
                    // recovery stops rolling back the target's own earlier
                    // sequences. Every commit that precedes the refresh in
                    // the target's log enqueued its write-backs atomically
                    // with its commit, so completing the target's flush
                    // queue here makes all of them durable.
                    self.mem.drain(tid);
                    shared.last_seq_ts.fetch_max(ts.raw(), Ordering::AcqRel);
                    break;
                }
            }
        }
        // Threads that have never logged a sequence have nothing recovery
        // could roll back, so they do not constrain the bound.
        let min_ts = self
            .threads
            .iter()
            .map(|t| t.last_seq_ts.load(Ordering::Acquire))
            .filter(|&ts| ts > 0)
            .min()
            .unwrap_or(0);
        self.ts_lower_bound.fetch_max(min_ts, Ordering::AcqRel);
    }

    /// On-demand immediate persistence (Section 5.2): appends an empty,
    /// committed sequence to *every* thread's log (using hardware
    /// transactions to synchronize with the owners) and drains the calling
    /// thread's flushes. After it returns, every persistent transaction
    /// that had completed before the call is guaranteed to survive a crash:
    /// each thread's latest sequence is now empty, so the rollback recovery
    /// performs cannot undo any completed transaction. Invoke this before
    /// externally visible, irrevocable actions (system calls).
    pub fn persist_now(&self, calling_tid: usize) {
        for tid in 0..self.threads.len() {
            self.force_empty_sequence(tid, calling_tid);
        }
    }

    /// Appends an empty committed sequence to `target_tid`'s log, executing
    /// the append on `via_tid`'s hardware-transaction context. Loops until
    /// the hardware transaction commits.
    fn force_empty_sequence(&self, target_tid: usize, via_tid: usize) {
        let shared = &self.threads[target_tid];
        loop {
            let ts = self.clock.now();
            let mut txn = self.htm.begin(via_tid);
            let appended = shared
                .undo_log
                .append_sequence(&mut txn, &[], ts)
                .and_then(|info| {
                    shared
                        .undo_log
                        .commit_marker_txn(&mut txn, info.marker_abs, 0, ts)?;
                    Ok(info)
                });
            let info = match appended {
                Ok(info) => info,
                Err(_) => continue,
            };
            if txn.commit().is_ok() {
                shared
                    .undo_log
                    .flush_marker(&self.mem, via_tid, info.marker_abs);
                self.mem.drain(via_tid);
                // Make everything the target committed before this refresh
                // durable (see `maintain_ts_lower_bound`).
                self.mem.drain(target_tid);
                shared.last_seq_ts.fetch_max(ts.raw(), Ordering::AcqRel);
                return;
            }
        }
    }

    /// Appends an empty committed sequence non-transactionally. Used during
    /// quiesce, when no other thread is running.
    fn persist_now_quiesced(&self, tid: usize) {
        let shared = &self.threads[tid];
        let ts = self.clock.now();
        let info = shared
            .undo_log
            .append_sequence_nontx(&self.htm, &[], MarkerKind::Committed, ts);
        shared
            .undo_log
            .flush_marker(&self.mem, tid, info.marker_abs);
        self.mem.drain(tid);
        shared.last_seq_ts.fetch_max(ts.raw(), Ordering::AcqRel);
    }
}

impl PersistentTm for Crafty {
    fn name(&self) -> &str {
        self.cfg.variant.engine_name()
    }

    fn register_thread(&self, tid: usize) -> Box<dyn TmThread + '_> {
        assert!(
            tid < self.cfg.max_threads,
            "thread id {tid} exceeds configured max_threads {}",
            self.cfg.max_threads
        );
        Box::new(CraftyThread::new(self, tid))
    }

    fn breakdown(&self) -> BreakdownSnapshot {
        self.recorder.snapshot()
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn quiesce(&self) {
        // Complete every thread's outstanding flushes and pin each thread's
        // latest sequence to an empty one, so that all work finished before
        // quiesce survives a subsequent crash (the evaluation measures
        // steady-state throughput; quiesce marks the end of a run).
        for tid in 0..self.cfg.max_threads {
            self.mem.drain(tid);
            self.persist_now_quiesced(tid);
        }
    }

    fn persist_fence(&self, calling_tid: usize) {
        let t0 = crafty_common::trace::phase_start();
        self.persist_now(calling_tid);
        if let Some(t0) = t0 {
            self.recorder.record_phase_cycles(
                crafty_common::TxnPhase::Fence,
                crafty_common::trace::phase_elapsed(t0),
            );
        }
        crafty_common::trace::record(calling_tid, crafty_common::TraceEventKind::PersistFence, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::PmemConfig;

    fn engine() -> (Arc<MemorySpace>, Crafty) {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
        (mem, crafty)
    }

    #[test]
    fn layout_reserves_disjoint_logs_per_thread() {
        let (_, crafty) = engine();
        let mut starts: Vec<u64> = crafty
            .threads
            .iter()
            .map(|t| t.undo_log.geometry().start.word())
            .collect();
        let n = starts.len();
        starts.sort();
        starts.dedup();
        assert_eq!(starts.len(), n);
        assert_eq!(n, crafty.config().max_threads);
    }

    #[test]
    fn directory_is_persisted_at_construction() {
        let (mem, crafty) = engine();
        let image = mem.crash();
        let dir = LogDirectory::load(&image, crafty.directory_addr()).expect("directory persisted");
        assert_eq!(dir.logs.len(), crafty.config().max_threads);
        assert_eq!(dir.logs[0], crafty.threads[0].undo_log.geometry());
    }

    #[test]
    fn engine_name_follows_variant() {
        let (mem, _) = engine();
        let crafty = Crafty::new(
            Arc::clone(&mem),
            CraftyConfig::small_for_tests().with_variant(crate::CraftyVariant::NoRedo),
        );
        assert_eq!(crafty.name(), "Crafty-NoRedo");
        assert!(crafty.is_durable());
    }

    #[test]
    fn sgl_starts_free_and_glastredots_starts_zero() {
        let (_, crafty) = engine();
        assert!(!crafty.sgl_held());
        assert_eq!(crafty.g_last_redo_ts(), 0);
    }

    #[test]
    fn persist_now_appends_an_empty_committed_sequence() {
        let (mem, crafty) = engine();
        let before = crafty.threads[0].undo_log.head(&mem);
        crafty.persist_now(0);
        let after = crafty.threads[0].undo_log.head(&mem);
        assert_eq!(after, before + 1);
        assert!(crafty.threads[0].last_seq_ts.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn maintain_ts_lower_bound_refreshes_idle_threads() {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let cfg = CraftyConfig::small_for_tests().with_max_threads(2);
        let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig { max_lag: 4, ..cfg });
        // Advance the clock well past MAX_LAG with thread 1 idle.
        for _ in 0..32 {
            crafty.clock.now();
        }
        let threshold = crafty.clock.current().raw();
        crafty.maintain_ts_lower_bound(0, threshold);
        assert!(
            crafty.threads[1].last_seq_ts.load(Ordering::Relaxed) > 0,
            "idle thread must have been forced to commit an empty sequence"
        );
        assert!(crafty.ts_lower_bound.load(Ordering::Relaxed) > 0);
    }

    #[test]
    #[should_panic(expected = "exceeds configured max_threads")]
    fn registering_out_of_range_thread_panics() {
        let (_, crafty) = engine();
        let _ = crafty.register_thread(crafty.config().max_threads);
    }
}
